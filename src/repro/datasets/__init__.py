"""Synthetic benchmark datasets.

Schema-faithful generators for the 12 datasets the paper evaluates
(originally from the ``fm_data_tasks`` benchmark of Narayan et al.):

========================  ====  =======================================
Dataset                   Task  Generator module
========================  ====  =======================================
adult                     ED    :mod:`repro.datasets.adult`
hospital                  ED    :mod:`repro.datasets.hospital`
buy                       DI    :mod:`repro.datasets.buy`
restaurant                DI    :mod:`repro.datasets.restaurant`
synthea                   SM    :mod:`repro.datasets.synthea`
amazon_google             EM    :mod:`repro.datasets.products`
walmart_amazon            EM    :mod:`repro.datasets.products`
beer                      EM    :mod:`repro.datasets.beer`
dblp_acm                  EM    :mod:`repro.datasets.citations`
dblp_scholar              EM    :mod:`repro.datasets.citations`
fodors_zagat              EM    :mod:`repro.datasets.venues`
itunes_amazon             EM    :mod:`repro.datasets.music`
========================  ====  =======================================

The real datasets are public but unavailable offline; the generators
reproduce their schemas, sizes, error models, and match hardness so the
relative difficulty ordering is preserved (see DESIGN.md).
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    SCHEMA_PREFIX,
    dataset_info,
    load_dataset,
    register_dataset,
)

__all__ = [
    "load_dataset",
    "register_dataset",
    "dataset_info",
    "DATASET_NAMES",
    "SCHEMA_PREFIX",
]
