"""The Beer entity-matching benchmark.

Small (91 test pairs in the original) and easy when the right attributes
are used: beer name + brewery decide the match.  The schema carries an
extra free-text ``description`` column that is noisy — retail blurbs are
near-identical across *different* beers and often differ between views of
the *same* beer.  This is the attribute whose removal drives the paper's
feature-selection result (GPT-4 zero-shot: 74.1 -> 90.3 F1).
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, Task
from repro.data.schema import Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.empairs import EMPairGenerator, PairProfile

BEER_SCHEMA = Schema.from_names(
    "beer",
    ["beer_name", "brew_factory_name", "style", "abv", "description"],
)

#: the informative subset — what feature selection keeps
BEER_SELECTED_FEATURES = ("beer_name", "brew_factory_name", "style", "abv")

_BLURBS = (
    "a well balanced craft beer with a smooth finish",
    "brewed in small batches from premium hops and malt",
    "a crisp refreshing ale perfect for any occasion",
    "award winning flavor with notes of citrus and pine",
    "a rich full bodied brew with a creamy head",
)


def _beer_entity(rng: random.Random, index: int) -> dict[str, str]:
    adjective = rng.choice(vocab.BEER_NAME_ADJECTIVES)
    noun = rng.choice(vocab.BEER_NAME_NOUNS)
    style = rng.choice(vocab.BEER_STYLES)
    return {
        "beer_name": f"{adjective} {noun} {style.split()[-1]}",
        "brew_factory_name": rng.choice(vocab.BREWERIES),
        "style": style,
        "abv": f"{rng.randint(4, 12)}.{rng.randint(0, 9)}%",
        # The noisy column: drawn from a tiny blurb pool, so different
        # beers frequently share it verbatim.
        "description": rng.choice(_BLURBS),
    }


def _beer_hard_negative(
    entity: dict[str, str], rng: random.Random
) -> dict[str, str]:
    """Same brewery and style, different beer name."""
    other = _beer_entity(rng, 0)
    for __ in range(10):
        if other["beer_name"] != entity["beer_name"]:
            break
        other = _beer_entity(rng, 0)
    return {
        "beer_name": other["beer_name"],
        "brew_factory_name": entity["brew_factory_name"],
        "style": entity["style"],
        "abv": other["abv"],
        "description": rng.choice(_BLURBS),
    }


class BeerGenerator(DatasetGenerator):
    """Beer EM: easy on informative columns, fooled by the blurb column."""

    name = "beer"
    task = Task.ENTITY_MATCHING
    default_size = 91
    fewshot_pool_size = 14
    description = (
        "Craft beers across two rating sites; name + brewery decide the "
        "match, while the free-text description column is noise (the "
        "feature-selection experiment's target)."
    )

    _profile = PairProfile(
        divergence=0.35,
        drop_rate=0.10,
        positive_rate=0.35,
        hard_negative_rate=0.5,
        # Each rating site writes its own blurb, so even a matching pair's
        # descriptions are unrelated — the column is pure noise, which is
        # what the feature-selection experiment removes.
        reroll_values={"description": _BLURBS},
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=BEER_SCHEMA,
            make_entity=_beer_entity,
            make_hard_negative=_beer_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)
