"""The Fodors-Zagats entity-matching benchmark.

Restaurant listings across two guides.  The easiest EM dataset in the
paper — every evaluated method reaches 100 F1 — because name, address, and
phone jointly identify a restaurant and both guides are clean.
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, Task
from repro.data.schema import Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.empairs import EMPairGenerator, PairProfile

FODORS_ZAGAT_SCHEMA = Schema.from_names(
    "fodors_zagat",
    ["name", "addr", "city", "phone", "type"],
)


def _restaurant_entity(rng: random.Random, index: int) -> dict[str, str]:
    city = rng.choice(vocab.US_CITIES)
    area = rng.choice(city.area_codes)
    return {
        "name": rng.choice(vocab.RESTAURANT_NAME_PARTS),
        "addr": f"{rng.randint(100, 9999)} {rng.choice(vocab.STREET_NAMES)}",
        "city": city.name,
        "phone": f"{area}-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}",
        "type": rng.choice(vocab.RESTAURANT_TYPES),
    }


def _restaurant_hard_negative(
    entity: dict[str, str], rng: random.Random
) -> dict[str, str]:
    """A different restaurant in the same city (same city/type, new identity).

    Even the hard negatives differ in name, address, and phone at once,
    which is why this benchmark sits at the F1 ceiling.
    """
    other = _restaurant_entity(rng, 0)
    for __ in range(10):
        if other["name"] != entity["name"]:
            break
        other = _restaurant_entity(rng, 0)
    return {
        "name": other["name"],
        "addr": other["addr"],
        "city": entity["city"],
        "phone": other["phone"],
        "type": entity["type"],
    }


class FodorsZagatGenerator(DatasetGenerator):
    """Fodors-Zagats EM: clean guides, jointly identifying attributes."""

    name = "fodors_zagat"
    task = Task.ENTITY_MATCHING
    default_size = 189
    fewshot_pool_size = 14
    description = (
        "Restaurants across the Fodor's and Zagat guides; name, address, "
        "and phone jointly identify each restaurant."
    )

    _profile = PairProfile(
        divergence=0.3,
        drop_rate=0.05,
        positive_rate=0.25,
        hard_negative_rate=0.3,
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=FODORS_ZAGAT_SCHEMA,
            make_entity=_restaurant_entity,
            make_hard_negative=_restaurant_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)
