"""The Adult (census income) error-detection benchmark.

Schema follows the UCI Adult dataset used by HoloClean/HoloDetect and the
``fm_data_tasks`` benchmark.  Each instance is a record plus one target
attribute; the label says whether the target cell is erroneous.  Errors are
a mix of the families real Adult corruptions contain:

- categorical typos (``privxate``) and domain violations (an occupation
  appearing in the ``workclass`` column),
- numeric outliers (``age: 412``, ``hoursperweek: 3``→``120``),
- consistency violations (``education`` / ``educationnum`` mismatch).
"""

from __future__ import annotations

import random

from repro.data.instances import EDInstance, Instance, Task
from repro.data.records import Record
from repro.data.schema import AttrType, Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.corruption import CellCorruptor, numeric_outlier

ADULT_SCHEMA = Schema.from_names(
    "adult",
    [
        "age", "workclass", "education", "educationnum", "maritalstatus",
        "occupation", "relationship", "race", "sex", "hoursperweek",
        "country", "income",
    ],
    types={
        "age": AttrType.NUMERIC,
        "educationnum": AttrType.NUMERIC,
        "hoursperweek": AttrType.NUMERIC,
        "workclass": AttrType.CATEGORICAL,
        "education": AttrType.CATEGORICAL,
        "maritalstatus": AttrType.CATEGORICAL,
        "occupation": AttrType.CATEGORICAL,
        "relationship": AttrType.CATEGORICAL,
        "race": AttrType.CATEGORICAL,
        "sex": AttrType.CATEGORICAL,
        "country": AttrType.CATEGORICAL,
        "income": AttrType.CATEGORICAL,
    },
)

#: attributes errors get injected into (mirrors the benchmark's targets)
_TARGETS = (
    "age", "workclass", "education", "educationnum", "maritalstatus",
    "occupation", "relationship", "race", "sex", "hoursperweek", "country",
)

_ERROR_RATE = 0.25


class AdultGenerator(DatasetGenerator):
    """Generate Adult ED instances with a ~25% cell error rate."""

    name = "adult"
    task = Task.ERROR_DETECTION
    default_size = 10000
    description = (
        "UCI Adult census records; detect errors in one attribute per "
        "instance (typos, domain violations, numeric outliers, "
        "education/educationnum inconsistencies)."
    )

    def _clean_record(self, rng: random.Random, index: int) -> Record:
        education, educationnum = rng.choice(vocab.EDUCATION_LEVELS)
        values = {
            "age": rng.randint(17, 90),
            "workclass": rng.choice(vocab.WORKCLASSES),
            "education": education,
            "educationnum": educationnum,
            "maritalstatus": rng.choice(vocab.MARITAL_STATUSES),
            "occupation": rng.choice(vocab.OCCUPATIONS),
            "relationship": rng.choice(vocab.RELATIONSHIPS),
            "race": rng.choice(vocab.RACES),
            "sex": rng.choice(vocab.SEXES),
            "hoursperweek": rng.choice([20, 25, 30, 35, 40, 40, 40, 45, 50, 55, 60]),
            "country": rng.choice(vocab.COUNTRIES),
            "income": rng.choice(["<=50k", ">50k"]),
        }
        return Record(schema=ADULT_SCHEMA, values=values, record_id=f"adult-{index}")

    def _foreign_domain(self, attribute: str, rng: random.Random) -> list[str]:
        """A value domain from a *different* categorical attribute."""
        domains = {
            "workclass": list(vocab.OCCUPATIONS),
            "education": list(vocab.MARITAL_STATUSES),
            "maritalstatus": [e for e, __ in vocab.EDUCATION_LEVELS],
            "occupation": list(vocab.WORKCLASSES),
            "relationship": list(vocab.RACES),
            "race": list(vocab.RELATIONSHIPS),
            "sex": list(vocab.COUNTRIES),
            "country": list(vocab.SEXES),
        }
        return domains.get(attribute, list(vocab.OCCUPATIONS))

    def _inject_error(
        self, record: Record, attribute: str, rng: random.Random
    ) -> str:
        """Corrupt ``record[attribute]`` in place; returns the clean value."""
        clean = str(record[attribute])
        attr_type = ADULT_SCHEMA[attribute].type
        if attribute == "educationnum" and rng.random() < 0.5:
            # Consistency violation: number no longer matches education.
            current = int(record[attribute])
            others = [n for __, n in vocab.EDUCATION_LEVELS if n != current]
            record[attribute] = rng.choice(others)
            return clean
        if attr_type.is_numeric:
            corruption = numeric_outlier(float(record[attribute]), rng)
            record[attribute] = corruption.corrupted
            return clean
        corruptor = CellCorruptor(rng)
        corruption = corruptor.corrupt_text(
            clean, foreign_domain=self._foreign_domain(attribute, rng)
        )
        record[attribute] = corruption.corrupted
        return clean

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        instances: list[Instance] = []
        for i in range(count):
            record = self._clean_record(rng, i)
            target = rng.choice(_TARGETS)
            has_error = rng.random() < _ERROR_RATE
            clean_value: str | None = None
            if has_error:
                clean_value = self._inject_error(record, target, rng)
            elif rng.random() < 0.3:
                # A *distractor* error in a non-target attribute: the model
                # must confirm the target attribute (paper Section 3.1) and
                # not flag this one.
                other_targets = [t for t in _TARGETS if t != target]
                self._inject_error(record, rng.choice(other_targets), rng)
            instances.append(
                EDInstance(
                    record=record,
                    target_attribute=target,
                    label=has_error,
                    clean_value=clean_value,
                )
            )
        return instances
