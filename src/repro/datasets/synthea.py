"""The Synthea schema-matching benchmark.

Clinical schemas (the Synthea → OMOP mapping universe): each instance is a
pair of attributes, each given as ``(name, description)``, and the label
says whether they denote the same clinical concept.  The published task is
hard — the best baseline (SMAT) reaches only 38.5 F1 and even GPT-4 stops
at 66.7 — because negatives share heavy surface vocabulary
(``visit_start_date`` vs ``visit_end_date``) while positives can be
lexically disjoint (``dob`` vs ``birth_date``).
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, SMInstance, Task
from repro.data.records import AttributePair
from repro.data.schema import Attribute, AttrType
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator

_POSITIVE_RATE = 0.18

#: pairs of group indices whose members are confusable (hard negatives)
_CONFUSABLE_GROUPS = (
    (3, 4),    # encounter start vs stop
    (5, 8),    # condition codes vs procedure codes
    (6, 7),    # medication name vs dose
    (0, 9),    # patient id vs provider id
    (10, 12),  # observation value vs systolic bp
    (12, 13),  # systolic vs diastolic
    (14, 15),  # insurance plan vs claim amount
    (16, 17),  # allergy vs immunization
    (21, 22),  # address line vs zip code
)


def _attribute(entry: tuple[str, str]) -> Attribute:
    name, description = entry
    return Attribute(name=name, type=AttrType.TEXT, description=description)


class SyntheaGenerator(DatasetGenerator):
    """Generate Synthea SM instances with confusable hard negatives."""

    name = "synthea"
    task = Task.SCHEMA_MATCHING
    default_size = 500
    fewshot_pool_size = 10
    description = (
        "Clinical attribute pairs (Synthea/OMOP style); decide whether two "
        "(name, description) attributes denote the same concept."
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        groups = vocab.CLINICAL_ATTRIBUTE_GROUPS
        instances: list[Instance] = []
        for __ in range(count):
            if rng.random() < _POSITIVE_RATE:
                # Positive: two distinct members of the same group.
                eligible = [g for g in groups if len(g) >= 2]
                group = rng.choice(eligible)
                left, right = rng.sample(list(group), 2)
                label = True
            else:
                if rng.random() < 0.55:
                    # Hard negative: members of confusable groups.
                    gi, gj = rng.choice(_CONFUSABLE_GROUPS)
                    left = rng.choice(list(groups[gi]))
                    right = rng.choice(list(groups[gj]))
                else:
                    # Easy negative: two unrelated groups.
                    gi, gj = rng.sample(range(len(groups)), 2)
                    left = rng.choice(list(groups[gi]))
                    right = rng.choice(list(groups[gj]))
                label = False
            instances.append(
                SMInstance(
                    pair=AttributePair(_attribute(left), _attribute(right)),
                    label=label,
                )
            )
        return instances
