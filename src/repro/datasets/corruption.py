"""Error injection for the error-detection benchmarks.

Reproduces the corruption families of the published ED datasets:

- **Typos** — character insertion/deletion/substitution/transposition in a
  textual cell (the Hospital benchmark famously contains ``x`` insertions;
  HoloDetect's data augmentation is built around these).
- **Domain violations** — a categorical cell replaced with a value from a
  *different* attribute's domain.
- **Numeric outliers** — a numeric cell scaled far outside its plausible
  range (unit errors, dropped decimal points).
- **Value swaps** — two cells of the same record exchanged.

Every corruptor returns the corrupted value together with the original so
ground truth can be recorded, and every corruptor is deterministic under a
caller-provided :class:`random.Random`.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.errors import DatasetError

_LETTERS = string.ascii_lowercase


@dataclass(frozen=True)
class Corruption:
    """The outcome of corrupting one cell."""

    original: str
    corrupted: str
    kind: str

    def __post_init__(self) -> None:
        if self.original == self.corrupted:
            raise DatasetError(
                f"corruption of kind {self.kind!r} left value "
                f"{self.original!r} unchanged"
            )


def typo(value: str, rng: random.Random, kind: str = "any") -> Corruption:
    """Inject a single-character typo into ``value``.

    ``kind`` selects a specific edit (``insert``, ``delete``, ``substitute``,
    ``transpose``, ``x_insert``) or ``any`` to pick one at random.
    ``x_insert`` is the Hospital-style corruption: the letter ``x`` inserted
    at a random position.
    """
    value = str(value)
    if not value:
        raise DatasetError("cannot inject a typo into an empty value")
    kinds = ["insert", "delete", "substitute", "transpose", "x_insert"]
    if kind == "any":
        kind = rng.choice(kinds)
    if kind not in kinds:
        raise DatasetError(f"unknown typo kind {kind!r}")

    for __ in range(20):  # retry: some edits can no-op on short strings
        if kind == "insert":
            pos = rng.randrange(len(value) + 1)
            ch = rng.choice(_LETTERS)
            corrupted = value[:pos] + ch + value[pos:]
        elif kind == "x_insert":
            pos = rng.randrange(len(value) + 1)
            corrupted = value[:pos] + "x" + value[pos:]
        elif kind == "delete":
            if len(value) == 1:
                corrupted = value  # deleting would empty the cell; retry others
                kind = "insert"
                continue
            pos = rng.randrange(len(value))
            corrupted = value[:pos] + value[pos + 1 :]
        elif kind == "substitute":
            pos = rng.randrange(len(value))
            ch = rng.choice(_LETTERS)
            corrupted = value[:pos] + ch + value[pos + 1 :]
        else:  # transpose
            if len(value) < 2:
                kind = "insert"
                continue
            pos = rng.randrange(len(value) - 1)
            corrupted = (
                value[:pos] + value[pos + 1] + value[pos] + value[pos + 2 :]
            )
        if corrupted != value:
            return Corruption(original=value, corrupted=corrupted, kind=f"typo_{kind}")
        # Some edits no-op on degenerate strings (transposing "ww");
        # insertion always changes the value, so fall back to it.
        kind = "insert"
    raise DatasetError(f"failed to corrupt {value!r} after 20 attempts")


def domain_violation(
    value: str, foreign_domain: list[str], rng: random.Random
) -> Corruption:
    """Replace a categorical value with one from another attribute's domain."""
    candidates = [v for v in foreign_domain if str(v) != str(value)]
    if not candidates:
        raise DatasetError("foreign domain offers no distinct replacement")
    corrupted = str(rng.choice(candidates))
    return Corruption(original=str(value), corrupted=corrupted, kind="domain_violation")


def numeric_outlier(
    value: float | int, rng: random.Random, scale_range: tuple[float, float] = (8.0, 40.0)
) -> Corruption:
    """Scale a numeric value far outside its plausible range.

    Models unit errors (kg vs g) and dropped decimal points.  The sign of
    the scaling (blow up vs collapse) is random.
    """
    low, high = scale_range
    if low <= 1.0 or high <= low:
        raise DatasetError("scale_range must satisfy 1 < low < high")
    factor = rng.uniform(low, high)
    if rng.random() < 0.5 and float(value) != 0.0:
        corrupted_value = float(value) / factor
    else:
        corrupted_value = float(value) * factor
    if float(value) == 0.0:
        corrupted_value = factor  # zero scales to zero; shift instead
    corrupted = _format_number(corrupted_value)
    original = _format_number(float(value))
    if corrupted == original:
        corrupted = _format_number(corrupted_value + 1.0)
    return Corruption(original=original, corrupted=corrupted, kind="numeric_outlier")


def value_swap(a: str, b: str) -> tuple[Corruption, Corruption]:
    """Exchange two distinct cell values within a record."""
    a, b = str(a), str(b)
    if a == b:
        raise DatasetError("cannot swap two equal values")
    return (
        Corruption(original=a, corrupted=b, kind="value_swap"),
        Corruption(original=b, corrupted=a, kind="value_swap"),
    )


def _format_number(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.2f}"


class CellCorruptor:
    """Applies a configurable mix of corruption kinds to cells.

    Parameters
    ----------
    rng:
        Source of randomness (caller-seeded for determinism).
    typo_kind:
        Typo family to use (``"any"`` or a specific edit).
    """

    def __init__(self, rng: random.Random, typo_kind: str = "any"):
        self._rng = rng
        self._typo_kind = typo_kind

    def corrupt_text(
        self, value: str, foreign_domain: list[str] | None = None
    ) -> Corruption:
        """Corrupt a textual cell: typo, or domain violation when a foreign
        domain is supplied (50/50)."""
        if foreign_domain and self._rng.random() < 0.5:
            try:
                return domain_violation(value, foreign_domain, self._rng)
            except DatasetError:
                pass  # fall through to a typo
        return typo(value, self._rng, kind=self._typo_kind)

    def corrupt_numeric(self, value: float | int) -> Corruption:
        return numeric_outlier(value, self._rng)
