"""Shared vocabularies: the synthetic "real world".

These tables play two roles:

1. Dataset generators draw values from them, so records carry genuine
   internal signal (e.g. a restaurant's phone area code really does
   determine its city).
2. The simulated LLM's knowledge base (:mod:`repro.llm.knowledge`) exposes a
   *model-dependent subset* of the same tables — GPT-4 "knows" more area
   codes and brands than Vicuna — which is what makes knowledge-bound tasks
   like data imputation separate the models, exactly as in the paper.

Ground truth lives here; the LLM only ever sees its own (possibly
incomplete) copy.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class City:
    """A city with the facts generators and the knowledge base share."""

    name: str
    state: str
    area_codes: tuple[str, ...]
    zip_prefix: str


# Sixty US cities with their real primary area codes and ZIP prefixes.
US_CITIES: tuple[City, ...] = (
    City("new york", "ny", ("212", "718", "917"), "100"),
    City("los angeles", "ca", ("213", "310", "323"), "900"),
    City("chicago", "il", ("312", "773"), "606"),
    City("houston", "tx", ("713", "281"), "770"),
    City("phoenix", "az", ("602", "623"), "850"),
    City("philadelphia", "pa", ("215", "267"), "191"),
    City("san antonio", "tx", ("210",), "782"),
    City("san diego", "ca", ("619", "858"), "921"),
    City("dallas", "tx", ("214", "972"), "752"),
    City("san jose", "ca", ("408",), "951"),
    City("austin", "tx", ("512",), "787"),
    City("jacksonville", "fl", ("904",), "322"),
    City("fort worth", "tx", ("817",), "761"),
    City("columbus", "oh", ("614",), "432"),
    City("charlotte", "nc", ("704",), "282"),
    City("san francisco", "ca", ("415",), "941"),
    City("indianapolis", "in", ("317",), "462"),
    City("seattle", "wa", ("206",), "981"),
    City("denver", "co", ("303",), "802"),
    City("washington", "dc", ("202",), "200"),
    City("boston", "ma", ("617", "857"), "021"),
    City("el paso", "tx", ("915",), "799"),
    City("nashville", "tn", ("615",), "372"),
    City("detroit", "mi", ("313",), "482"),
    City("oklahoma city", "ok", ("405",), "731"),
    City("portland", "or", ("503", "971"), "972"),
    City("las vegas", "nv", ("702",), "891"),
    City("memphis", "tn", ("901",), "381"),
    City("louisville", "ky", ("502",), "402"),
    City("baltimore", "md", ("410", "443"), "212"),
    City("milwaukee", "wi", ("414",), "532"),
    City("albuquerque", "nm", ("505",), "871"),
    City("tucson", "az", ("520",), "857"),
    City("fresno", "ca", ("559",), "937"),
    City("sacramento", "ca", ("916",), "958"),
    City("kansas city", "mo", ("816",), "641"),
    City("mesa", "az", ("480",), "852"),
    City("atlanta", "ga", ("404", "678"), "303"),
    City("omaha", "ne", ("402",), "681"),
    City("colorado springs", "co", ("719",), "809"),
    City("raleigh", "nc", ("919",), "276"),
    City("miami", "fl", ("305", "786"), "331"),
    City("long beach", "ca", ("562",), "908"),
    City("virginia beach", "va", ("757",), "234"),
    City("oakland", "ca", ("510",), "946"),
    City("minneapolis", "mn", ("612",), "554"),
    City("tulsa", "ok", ("918",), "741"),
    City("tampa", "fl", ("813",), "336"),
    City("arlington", "tx", ("682",), "760"),
    City("new orleans", "la", ("504",), "701"),
    City("wichita", "ks", ("316",), "672"),
    City("cleveland", "oh", ("216",), "441"),
    City("bakersfield", "ca", ("661",), "933"),
    City("aurora", "co", ("720",), "800"),
    City("anaheim", "ca", ("714",), "928"),
    City("honolulu", "hi", ("808",), "968"),
    City("santa ana", "ca", ("657",), "927"),
    City("riverside", "ca", ("951",), "925"),
    City("marietta", "ga", ("770",), "300"),
    City("pasadena", "ca", ("626",), "911"),
)

CITY_BY_NAME: dict[str, City] = {c.name: c for c in US_CITIES}

#: area code -> city name; generators use this as the ground truth.
AREA_CODE_TO_CITY: dict[str, str] = {
    code: city.name for city in US_CITIES for code in city.area_codes
}

STREET_NAMES: tuple[str, ...] = (
    "main st.", "oak ave.", "maple dr.", "powers ferry rd.", "elm st.",
    "washington blvd.", "lincoln ave.", "park ave.", "2nd st.", "3rd ave.",
    "cedar ln.", "sunset blvd.", "broadway", "market st.", "church st.",
    "highland ave.", "river rd.", "lake shore dr.", "mission st.",
    "peachtree st.", "ventura blvd.", "colorado blvd.", "wilshire blvd.",
    "state st.", "pine st.", "walnut st.", "chestnut st.", "spring st.",
    "franklin ave.", "jefferson st.", "madison ave.", "monroe st.",
    "jackson blvd.", "harrison st.", "van buren st.", "5th ave.",
    "lexington ave.", "columbus ave.", "amsterdam ave.", "melrose ave.",
)

RESTAURANT_TYPES: tuple[str, ...] = (
    "american", "italian", "french", "chinese", "japanese", "mexican",
    "thai", "indian", "steakhouses", "seafood", "pizza", "delis",
    "hamburgers", "coffee shops", "bbq", "cajun", "greek", "vietnamese",
    "mediterranean", "vegetarian", "sushi", "noodle shops", "diners",
    "bakeries", "fast food", "continental", "californian", "southern",
)

RESTAURANT_NAME_PARTS: tuple[str, ...] = (
    "carey's corner", "golden dragon", "la petite maison", "blue plate",
    "the rusty anchor", "mama rosa's", "el charro", "lotus garden",
    "the grill house", "sunset bistro", "harbor view", "copper kettle",
    "the daily grind", "bella notte", "sakura house", "spice route",
    "the green olive", "stonewood tavern", "river cafe", "magnolia kitchen",
    "the velvet fork", "old mill diner", "city lights cafe", "fog harbor",
    "the brass lantern", "cypress grove", "red maple grill", "ocean pearl",
    "king's table", "the tin roof", "prairie fire", "silver spoon",
    "the wandering goat", "hilltop house", "ivy garden", "noble pig",
    "the crooked spoon", "lucky star", "twin oaks", "stone bridge inn",
)

OCCUPATIONS: tuple[str, ...] = (
    "tech-support", "craft-repair", "other-service", "sales",
    "exec-managerial", "prof-specialty", "handlers-cleaners",
    "machine-op-inspct", "adm-clerical", "farming-fishing",
    "transport-moving", "priv-house-serv", "protective-serv",
    "armed-forces",
)

WORKCLASSES: tuple[str, ...] = (
    "private", "self-emp-not-inc", "self-emp-inc", "federal-gov",
    "local-gov", "state-gov", "without-pay", "never-worked",
)

EDUCATION_LEVELS: tuple[tuple[str, int], ...] = (
    ("preschool", 1), ("1st-4th", 2), ("5th-6th", 3), ("7th-8th", 4),
    ("9th", 5), ("10th", 6), ("11th", 7), ("12th", 8), ("hs-grad", 9),
    ("some-college", 10), ("assoc-voc", 11), ("assoc-acdm", 12),
    ("bachelors", 13), ("masters", 14), ("prof-school", 15),
    ("doctorate", 16),
)

MARITAL_STATUSES: tuple[str, ...] = (
    "married-civ-spouse", "divorced", "never-married", "separated",
    "widowed", "married-spouse-absent", "married-af-spouse",
)

RELATIONSHIPS: tuple[str, ...] = (
    "wife", "own-child", "husband", "not-in-family", "other-relative",
    "unmarried",
)

RACES: tuple[str, ...] = (
    "white", "asian-pac-islander", "amer-indian-eskimo", "other", "black",
)

SEXES: tuple[str, ...] = ("male", "female")

COUNTRIES: tuple[str, ...] = (
    "united-states", "cambodia", "england", "puerto-rico", "canada",
    "germany", "india", "japan", "greece", "china", "cuba", "iran",
    "honduras", "philippines", "italy", "poland", "jamaica", "vietnam",
    "mexico", "portugal", "ireland", "france", "thailand", "ecuador",
    "taiwan", "haiti", "columbia", "hungary", "guatemala", "nicaragua",
    "scotland", "el-salvador",
)

HOSPITAL_CONDITIONS: tuple[str, ...] = (
    "heart attack", "heart failure", "pneumonia",
    "surgical infection prevention", "children's asthma care",
)

HOSPITAL_MEASURES: tuple[tuple[str, str], ...] = (
    ("ami-1", "aspirin at arrival"),
    ("ami-2", "aspirin prescribed at discharge"),
    ("ami-3", "ace inhibitor or arb for lvsd"),
    ("ami-4", "adult smoking cessation advice"),
    ("ami-5", "beta blocker prescribed at discharge"),
    ("hf-1", "discharge instructions"),
    ("hf-2", "evaluation of lvs function"),
    ("hf-3", "ace inhibitor or arb for lvsd"),
    ("hf-4", "adult smoking cessation advice"),
    ("pn-2", "pneumococcal vaccination"),
    ("pn-3b", "blood culture before first antibiotic"),
    ("pn-4", "adult smoking cessation advice"),
    ("pn-5c", "initial antibiotic within 6 hours"),
    ("pn-6", "appropriate initial antibiotic selection"),
    ("pn-7", "influenza vaccination"),
    ("scip-card-2", "beta blocker therapy perioperative"),
    ("scip-inf-1", "prophylactic antibiotic within one hour"),
    ("scip-inf-2", "prophylactic antibiotic selection"),
    ("scip-inf-3", "antibiotics discontinued within 24 hours"),
    ("scip-vte-1", "venous thromboembolism prophylaxis ordered"),
)

HOSPITAL_NAME_PARTS: tuple[str, ...] = (
    "callahan eye foundation hospital", "marshall medical center south",
    "eliza coffee memorial hospital", "mizell memorial hospital",
    "crenshaw community hospital", "st vincent's east",
    "dekalb regional medical center", "shelby baptist medical center",
    "helen keller memorial hospital", "hartselle medical center",
    "andalusia regional hospital", "providence alaska medical center",
    "mat-su regional medical center", "north colorado medical center",
    "banner good samaritan medical center", "mercy gilbert medical center",
    "flagstaff medical center", "yuma regional medical center",
    "sparks regional medical center", "baptist health medical center",
    "st bernards medical center", "washington regional medical center",
    "white river medical center", "mercy medical center",
    "university of california davis medical center", "scripps mercy hospital",
    "sharp memorial hospital", "cedars-sinai medical center",
    "hoag memorial hospital presbyterian", "stanford hospital",
)

US_STATE_CODES: tuple[str, ...] = (
    "al", "ak", "az", "ar", "ca", "co", "ct", "de", "fl", "ga", "hi", "id",
    "il", "in", "ia", "ks", "ky", "la", "me", "md", "ma", "mi", "mn", "ms",
    "mo", "mt", "ne", "nv", "nh", "nj", "nm", "ny", "nc", "nd", "oh", "ok",
    "or", "pa", "ri", "sc", "sd", "tn", "tx", "ut", "vt", "va", "wa", "wv",
    "wi", "wy", "dc",
)

#: Software/electronics brands with the product lines they actually make —
#: the Buy dataset's DI target (manufacturer) is recoverable from the name.
PRODUCT_BRANDS: dict[str, tuple[str, ...]] = {
    "sony": ("bravia tv", "cybershot camera", "walkman player", "vaio laptop",
             "handycam camcorder", "blu-ray player"),
    "samsung": ("galaxy phone", "led monitor", "soundbar", "smart tv",
                "portable ssd", "laser printer"),
    "apple": ("ipod nano", "macbook pro", "iphone", "ipad", "airport extreme",
              "mac mini"),
    "microsoft": ("office suite", "xbox console", "zune player",
                  "wireless keyboard", "lifecam webcam", "arc mouse"),
    "canon": ("powershot camera", "eos camera", "pixma printer",
              "imageclass printer", "ef lens", "selphy printer"),
    "nikon": ("coolpix camera", "d-series dslr", "nikkor lens", "binoculars"),
    "hp": ("pavilion laptop", "deskjet printer", "officejet printer",
           "photosmart printer", "compaq desktop", "scanjet scanner"),
    "dell": ("inspiron laptop", "xps desktop", "ultrasharp monitor",
             "latitude laptop", "poweredge server"),
    "panasonic": ("lumix camera", "viera tv", "cordless phone",
                  "microwave oven", "camcorder"),
    "lg": ("flatron monitor", "blu-ray drive", "home theater system",
           "washing machine", "air conditioner"),
    "toshiba": ("satellite laptop", "portege laptop", "external hard drive",
                "dvd recorder"),
    "logitech": ("wireless mouse", "webcam", "gaming keyboard",
                 "speaker system", "harmony remote"),
    "belkin": ("wireless router", "surge protector", "usb hub",
               "laptop cooling pad"),
    "netgear": ("wireless router", "network switch", "range extender",
                "powerline adapter"),
    "linksys": ("wireless router", "network adapter", "vpn router"),
    "garmin": ("nuvi gps", "forerunner watch", "fishfinder", "etrex gps"),
    "tomtom": ("go gps", "one gps", "rider gps"),
    "nintendo": ("wii console", "ds lite", "game boy", "wii remote"),
    "bose": ("wave radio", "quietcomfort headphones", "companion speakers",
             "soundlink speaker"),
    "sennheiser": ("hd headphones", "wireless microphone", "earbuds"),
    "kodak": ("easyshare camera", "photo printer", "zi8 camcorder"),
    "olympus": ("stylus camera", "digital voice recorder", "pen camera"),
    "casio": ("exilim camera", "g-shock watch", "label printer",
              "graphing calculator"),
    "epson": ("stylus printer", "workforce printer", "perfection scanner",
              "powerlite projector"),
    "brother": ("laser printer", "label maker", "sewing machine",
                "fax machine"),
    "lexmark": ("inkjet printer", "laser printer", "all-in-one printer"),
    "motorola": ("razr phone", "bluetooth headset", "two-way radio",
                 "cable modem"),
    "nokia": ("candybar phone", "smartphone", "bluetooth headset"),
    "blackberry": ("curve phone", "bold phone", "pearl phone"),
    "sandisk": ("sansa player", "sd card", "cruzer flash drive",
                "compactflash card"),
    "kingston": ("datatraveler flash drive", "memory module", "ssd drive"),
    "seagate": ("barracuda hard drive", "freeagent external drive",
                "momentus laptop drive"),
    "western digital": ("caviar hard drive", "my book external drive",
                        "my passport portable drive"),
    "intel": ("core processor", "motherboard", "ssd drive",
              "network adapter"),
    "amd": ("athlon processor", "phenom processor", "radeon graphics card"),
    "nvidia": ("geforce graphics card", "quadro graphics card"),
    "asus": ("eee pc netbook", "motherboard", "graphics card",
             "lcd monitor"),
    "acer": ("aspire laptop", "lcd monitor", "netbook", "projector"),
    "lenovo": ("thinkpad laptop", "ideapad laptop", "thinkcentre desktop"),
    "vtech": ("cordless phone", "learning laptop", "baby monitor"),
}

SOFTWARE_TITLES: tuple[str, ...] = (
    "photo editing studio", "antivirus security suite", "office productivity",
    "tax preparation deluxe", "video converter ultimate", "pc tune-up utility",
    "language learning spanish", "typing instructor", "genealogy research",
    "home design architect", "accounting small business", "web design studio",
    "music production suite", "dvd burning toolkit", "pdf editor pro",
    "backup and recovery", "internet security premium", "drawing and painting",
    "chess master challenge", "flight simulator gold",
)

SOFTWARE_PUBLISHERS: tuple[str, ...] = (
    "adobe", "symantec", "intuit", "mcafee", "corel", "roxio", "nero",
    "broderbund", "encore", "topics entertainment", "nova development",
    "individual software", "avanquest", "kaspersky", "trend micro",
    "cyberlink", "magix", "sage", "autodesk", "serif",
)

BEER_STYLES: tuple[str, ...] = (
    "american ipa", "american pale ale", "imperial stout", "porter",
    "hefeweizen", "pilsner", "amber ale", "brown ale", "saison",
    "witbier", "barleywine", "scotch ale", "kolsch", "oatmeal stout",
    "double ipa", "red ale", "cream ale", "tripel", "dubbel", "lager",
)

BEER_NAME_ADJECTIVES: tuple[str, ...] = (
    "hoppy", "golden", "midnight", "rusty", "wild", "lazy", "grumpy",
    "dancing", "crooked", "velvet", "smoky", "frosty", "raging", "quiet",
    "lucky", "broken", "electric", "drifting", "howling", "iron",
)

BEER_NAME_NOUNS: tuple[str, ...] = (
    "trail", "moose", "anchor", "barrel", "raven", "coyote", "summit",
    "harvest", "canyon", "lantern", "otter", "prairie", "thunder",
    "meadow", "compass", "griffin", "orchard", "bison", "ember", "tide",
)

BREWERIES: tuple[str, ...] = (
    "stone brewing co.", "sierra nevada brewing co.", "dogfish head brewery",
    "bell's brewery", "founders brewing co.", "lagunitas brewing company",
    "deschutes brewery", "new belgium brewing", "oskar blues brewery",
    "great divide brewing co.", "victory brewing company",
    "brooklyn brewery", "anchor brewing company", "harpoon brewery",
    "odell brewing co.", "green flash brewing co.", "ballast point brewing",
    "russian river brewing", "three floyds brewing", "cigar city brewing",
)

CS_TOPIC_TERMS: tuple[str, ...] = (
    "query optimization", "data integration", "entity resolution",
    "schema matching", "stream processing", "transaction management",
    "index structures", "approximate query answering", "data cleaning",
    "view maintenance", "spatial databases", "graph mining",
    "semi-structured data", "information extraction", "data warehousing",
    "privacy preservation", "skyline queries", "top-k retrieval",
    "duplicate detection", "similarity joins", "keyword search",
    "distributed databases", "sensor networks", "workflow systems",
    "xml processing", "record linkage", "data provenance",
    "uncertain data", "crowdsourcing", "columnar storage",
)

CS_TITLE_PATTERNS: tuple[str, ...] = (
    "efficient {topic} in large-scale systems",
    "a survey of {topic}",
    "scalable {topic} with probabilistic guarantees",
    "on the complexity of {topic}",
    "adaptive {topic} for dynamic workloads",
    "{topic}: models and algorithms",
    "towards practical {topic}",
    "optimizing {topic} in the cloud",
    "learning-based {topic}",
    "incremental {topic} over evolving data",
    "parallel {topic} on modern hardware",
    "a framework for {topic}",
)

ACADEMIC_VENUES: tuple[tuple[str, str], ...] = (
    ("sigmod", "acm sigmod international conference on management of data"),
    ("vldb", "international conference on very large data bases"),
    ("icde", "ieee international conference on data engineering"),
    ("kdd", "acm sigkdd conference on knowledge discovery and data mining"),
    ("cikm", "acm conference on information and knowledge management"),
    ("edbt", "international conference on extending database technology"),
    ("pods", "acm symposium on principles of database systems"),
    ("www", "the web conference"),
    ("icdm", "ieee international conference on data mining"),
    ("tods", "acm transactions on database systems"),
)

AUTHOR_FIRST_NAMES: tuple[str, ...] = (
    "james", "mary", "wei", "hiroshi", "anna", "david", "elena", "rajesh",
    "li", "sofia", "michael", "yuki", "carlos", "fatima", "peter", "chen",
    "laura", "ahmed", "nina", "thomas", "priya", "jan", "maria", "kenji",
    "olga", "daniel", "ingrid", "omar", "grace", "victor", "lucas",
    "amelia", "takeshi", "svetlana", "diego", "amara", "felix", "mei",
    "stefan", "leila", "ravi", "hannah", "mateo", "yasmin", "viktor",
    "chiara", "arjun", "freya", "tomas", "zara",
)

AUTHOR_LAST_NAMES: tuple[str, ...] = (
    "smith", "zhang", "tanaka", "garcia", "mueller", "patel", "kim",
    "johnson", "wang", "rossi", "ivanov", "nakamura", "lopez", "silva",
    "brown", "chen", "kumar", "schmidt", "sato", "jones", "lee", "nguyen",
    "martin", "kowalski", "ali", "hansen", "dubois", "yamamoto", "costa",
    "novak", "fernandez", "okafor", "lindqvist", "petrov", "moreau",
    "castillo", "haddad", "bergstrom", "romano", "fischer", "oliveira",
    "kovacs", "jensen", "takahashi", "varga", "medina", "keller",
    "andersson", "moretti", "singh",
)

MUSIC_GENRES: tuple[str, ...] = (
    "rock", "pop", "country", "hip-hop/rap", "r&b/soul", "electronic",
    "jazz", "alternative", "folk", "blues", "reggae", "latin", "metal",
    "indie rock", "dance", "singer/songwriter",
)

ARTIST_NAME_PARTS: tuple[tuple[str, ...], tuple[str, ...]] = (
    ("the midnight", "silver", "crimson", "electric", "neon", "golden",
     "wandering", "hollow", "paper", "velvet", "lunar", "scarlet",
     "northern", "broken", "wild"),
    ("foxes", "horizon", "parade", "echoes", "rivers", "pilots", "saints",
     "arrows", "harbors", "satellites", "wolves", "gardens", "avenues",
     "lanterns", "tides"),
)

SONG_TITLE_PATTERNS: tuple[str, ...] = (
    "dancing in the {noun}", "{adj} hearts", "when the {noun} falls",
    "never let {noun} go", "{adj} summer nights", "under the {noun}",
    "chasing {noun}", "{adj} lights", "back to the {noun}",
    "whispers of the {noun}", "one more {noun}", "{adj} road home",
)

SONG_WORDS_ADJ: tuple[str, ...] = (
    "broken", "golden", "lonely", "wild", "silent", "burning", "faded",
    "electric", "restless", "hollow", "midnight", "crimson",
)

SONG_WORDS_NOUN: tuple[str, ...] = (
    "rain", "fire", "stars", "city", "ocean", "shadows", "wind",
    "summer", "thunder", "embers", "sunrise", "gravity",
)

#: Synthea / OMAP-style schema-matching vocabulary: clinical attributes as
#: ``(name, description)`` with groups of synonymous names.  Attributes in
#: the same group refer to the same concept (a positive SM pair).
CLINICAL_ATTRIBUTE_GROUPS: tuple[tuple[tuple[str, str], ...], ...] = (
    # Descriptions inside a group deliberately use *different* vocabulary
    # (as OMAP's independently-authored schemas do): matching attributes
    # rarely share words, while non-matching attributes of the same table
    # family (start/stop, systolic/diastolic) share almost all of them.
    (("patient_id", "unique key assigned when a person is registered"),
     ("person_id", "primary identifier in the demographics table"),
     ("subject_id", "anonymized number referencing the study participant")),
    (("birth_date", "when the individual was born"),
     ("dob", "demographic field for age derivation"),
     ("date_of_birth", "calendar day of delivery of the person")),
    (("gender", "administrative sex recorded for the person"),
     ("sex", "biological classification noted at intake"),
     ("gender_concept", "coded male or female designation")),
    (("encounter_start", "start date and time of the clinical encounter"),
     ("visit_start_date", "when the stay began"),
     ("admission_time", "moment the individual arrived at the facility")),
    (("encounter_stop", "stop date and time of the clinical encounter"),
     ("visit_end_date", "when the stay ended"),
     ("discharge_time", "moment the individual left the facility")),
    (("condition_code", "standardized identifier of the diagnosed illness"),
     ("diagnosis_code", "icd terminology entry for the finding"),
     ("dx_code", "abbreviated coding of what was found wrong")),
    (("medication_name", "label of the prescribed product"),
     ("drug_name", "pharmaceutical substance given to the person"),
     ("rx_description", "free text of what the pharmacy filled")),
    (("dose_quantity", "amount given per administration"),
     ("drug_dose", "strength of each pharmaceutical unit"),
     ("quantity_dispensed", "how much the pharmacy handed out")),
    (("procedure_code", "standardized identifier of the performed operation"),
     ("proc_code", "terminology entry for the intervention"),
     ("operation_code", "abbreviated coding of the surgery done")),
    (("provider_id", "unique key of the clinician delivering care"),
     ("physician_id", "number referencing the attending doctor"),
     ("practitioner_ref", "foreign key into the staff roster")),
    (("observation_value", "quantity captured during the clinical observation"),
     ("result_value", "numeric outcome reported by the laboratory"),
     ("measurement_value", "reading recorded by the instrument")),
    (("body_weight", "how heavy the person is, in kilograms"),
     ("weight_kg", "mass measured at the scale"),
     ("wt", "anthropometric heaviness entry")),
    (("systolic_bp", "systolic blood pressure in mmhg"),
     ("sbp", "upper arterial reading during contraction"),
     ("blood_pressure_systolic", "peak circulatory force value")),
    (("diastolic_bp", "diastolic blood pressure in mmhg"),
     ("dbp", "lower arterial reading between beats"),
     ("blood_pressure_diastolic", "resting circulatory force value")),
    (("insurance_plan", "product the person is enrolled in for coverage"),
     ("payer_name", "organization responsible for settling the bill"),
     ("coverage_name", "label of the benefits package")),
    (("claim_amount", "total money requested for the encounter"),
     ("billed_total", "sum invoiced to the payer"),
     ("total_charge", "aggregate cost entered by accounting")),
    (("allergy_substance", "what the person reacts badly to"),
     ("allergen", "agent triggering hypersensitivity"),
     ("allergy_code", "coded intolerance entry")),
    (("immunization_name", "vaccine product administered"),
     ("vaccine_code", "coded shot given for prevention"),
     ("imm_description", "free text of the inoculation")),
    (("care_plan", "intended program of treatment going forward"),
     ("treatment_plan", "scheduled therapeutic activities"),
     ("careplan_description", "narrative of future clinical steps")),
    (("marital_status", "whether the person is married, single, or widowed"),
     ("civil_status", "legal partnership state")),
    (("ethnicity", "cultural background of the person"),
     ("ethnic_group", "coded ancestry classification")),
    (("address_line", "street and house number of the residence"),
     ("street_address", "where the person lives")),
    (("zip_code", "postal routing number of the residence"),
     ("postal_code", "mail delivery area entry")),
)
