"""The Restaurant data-imputation benchmark.

Restaurant listings (the Fodors/Zagat universe); the task is to impute the
``city`` attribute.  The phone number's area code determines the city —
the exact chain of inference the paper's worked few-shot example walks
through ("The phone number '770' suggests ... Marietta").
"""

from __future__ import annotations

import random

from repro.data.instances import DIInstance, Instance, Task
from repro.data.records import Record
from repro.data.schema import Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator

RESTAURANT_SCHEMA = Schema.from_names(
    "restaurant",
    ["name", "addr", "phone", "type", "city"],
)


class RestaurantGenerator(DatasetGenerator):
    """Generate Restaurant DI instances: impute ``city`` from phone/address."""

    name = "restaurant"
    task = Task.DATA_IMPUTATION
    default_size = 86
    fewshot_pool_size = 12
    description = (
        "Restaurant listings; impute the city — the phone area code "
        "identifies it (with the street as secondary evidence)."
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        instances: list[Instance] = []
        for i in range(count):
            city = rng.choice(vocab.US_CITIES)
            area = rng.choice(city.area_codes)
            phone = f"{area}-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
            record = Record(
                schema=RESTAURANT_SCHEMA,
                values={
                    "name": rng.choice(vocab.RESTAURANT_NAME_PARTS),
                    "addr": f"{rng.randint(100, 9999)} {rng.choice(vocab.STREET_NAMES)}",
                    "phone": phone,
                    "type": rng.choice(vocab.RESTAURANT_TYPES),
                    "city": None,  # the cell to impute
                },
                record_id=f"restaurant-{i}",
            )
            instances.append(
                DIInstance(
                    record=record,
                    target_attribute="city",
                    true_value=city.name,
                )
            )
        return instances
