"""The iTunes-Amazon entity-matching benchmark.

Songs across the iTunes and Amazon Music catalogs.  Rich schemas (song,
artist, album, genre, price, released) make matches identifiable, but the
hard negatives are *other tracks of the same album* — textually close in
every column except the song name and track length.
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, Task
from repro.data.schema import Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.empairs import EMPairGenerator, PairProfile

ITUNES_AMAZON_SCHEMA = Schema.from_names(
    "itunes_amazon",
    ["song_name", "artist_name", "album_name", "genre", "price", "time",
     "released"],
)

_MONTHS = ("january", "february", "march", "april", "may", "june", "july",
           "august", "september", "october", "november", "december")


def _song_title(rng: random.Random) -> str:
    pattern = rng.choice(vocab.SONG_TITLE_PATTERNS)
    return pattern.format(
        adj=rng.choice(vocab.SONG_WORDS_ADJ),
        noun=rng.choice(vocab.SONG_WORDS_NOUN),
    )


def _song_entity(rng: random.Random, index: int) -> dict[str, str]:
    first_parts, second_parts = vocab.ARTIST_NAME_PARTS
    artist = f"{rng.choice(first_parts)} {rng.choice(second_parts)}"
    album = _song_title(rng)
    return {
        "song_name": _song_title(rng),
        "artist_name": artist,
        "album_name": album,
        "genre": rng.choice(vocab.MUSIC_GENRES),
        "price": f"${rng.choice(['0.99', '1.29', '1.99'])}",
        "time": f"{rng.randint(2, 6)}:{rng.randint(0, 59):02d}",
        "released": f"{rng.choice(_MONTHS)} {rng.randint(1, 28)}, "
                    f"{rng.randint(1998, 2014)}",
    }


def _song_hard_negative(
    entity: dict[str, str], rng: random.Random
) -> dict[str, str]:
    """Another track on the same album: only the song name and time change."""
    title = _song_title(rng)
    for __ in range(10):
        if title != entity["song_name"]:
            break
        title = _song_title(rng)
    return {
        "song_name": title,
        "artist_name": entity["artist_name"],
        "album_name": entity["album_name"],
        "genre": entity["genre"],
        "price": entity["price"],
        "time": f"{rng.randint(2, 6)}:{rng.randint(0, 59):02d}",
        "released": entity["released"],
    }


class ItunesAmazonGenerator(DatasetGenerator):
    """iTunes-Amazon EM: same-album hard negatives, rich schemas."""

    name = "itunes_amazon"
    task = Task.ENTITY_MATCHING
    default_size = 109
    fewshot_pool_size = 14
    description = (
        "Songs across iTunes and Amazon Music; hard negatives are sibling "
        "tracks of the same album."
    )

    _profile = PairProfile(
        divergence=0.35,
        drop_rate=0.1,
        positive_rate=0.25,
        hard_negative_rate=0.5,
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=ITUNES_AMAZON_SCHEMA,
            make_entity=_song_entity,
            make_hard_negative=_song_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)
