"""The Buy data-imputation benchmark.

Electronics products from the Buy.com catalog; the task is to impute the
``manufacturer`` attribute from the product ``name`` and ``description``.
As in the real dataset, the manufacturer is almost always recoverable
because brand names appear inside product titles — the benchmark measures
whether a model *knows* which token is the brand.
"""

from __future__ import annotations

import random

from repro.data.instances import DIInstance, Instance, Task
from repro.data.records import Record
from repro.data.schema import AttrType, Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator

BUY_SCHEMA = Schema.from_names(
    "buy",
    ["name", "description", "price", "manufacturer"],
    types={"price": AttrType.TEXT},
)

_DESCRIPTION_TAILS = (
    "with fast shipping and a one-year limited warranty",
    "brand new in retail packaging",
    "refurbished unit tested to factory specifications",
    "includes all original accessories and manuals",
    "compact design ideal for home or office use",
    "energy efficient model with automatic standby",
    "latest generation with improved performance",
    "bundle includes carrying case and starter kit",
)


class BuyGenerator(DatasetGenerator):
    """Generate Buy DI instances: impute ``manufacturer`` from the title."""

    name = "buy"
    task = Task.DATA_IMPUTATION
    default_size = 65
    fewshot_pool_size = 12
    description = (
        "Buy.com electronics products; impute the manufacturer, which "
        "appears as the brand token of the product name."
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        brands = list(vocab.PRODUCT_BRANDS)
        instances: list[Instance] = []
        for i in range(count):
            brand = rng.choice(brands)
            line = rng.choice(vocab.PRODUCT_BRANDS[brand])
            model = f"{rng.choice('abcdefgh')}{rng.randint(100, 9999)}"
            name = f"{brand} {line} {model}"
            description = (
                f"{brand} {line} model {model}, "
                f"{rng.choice(_DESCRIPTION_TAILS)}"
            )
            # A minority of instances omit the brand from the description,
            # leaving the title as the only evidence (harder cases).
            if rng.random() < 0.3:
                description = f"{line} model {model}, {rng.choice(_DESCRIPTION_TAILS)}"
            record = Record(
                schema=BUY_SCHEMA,
                values={
                    "name": name,
                    "description": description,
                    "price": f"${rng.randint(20, 1500)}.{rng.choice(['00', '95', '99'])}",
                    "manufacturer": None,  # the cell to impute
                },
                record_id=f"buy-{i}",
            )
            instances.append(
                DIInstance(
                    record=record,
                    target_attribute="manufacturer",
                    true_value=brand,
                )
            )
        return instances
