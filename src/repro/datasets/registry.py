"""Dataset registry: ``load_dataset("adult")`` etc.

Generated datasets are cached per ``(name, size, seed, cache_token)``
within the process, so repeated experiment runs see identical data
without paying the generation cost twice.  The ``cache_token`` component
is the generator's content address — empty for the twelve hand-written
benchmarks, the schema fingerprint for factory-backed generators — so
two *different* schemas registered under the same name (or one schema
file edited between loads) can never alias in the cache.

Beyond registered names, ``load_dataset("schema:<path>")`` loads a
factory schema file on the fly: the file is parsed and validated, and
the resulting :class:`~repro.factory.adapter.SchemaGenerator` behaves
like any registered generator (same caching, same interface), without
a registration step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import PreprocessingDataset, Task
from repro.datasets.adult import AdultGenerator
from repro.datasets.base import DatasetGenerator
from repro.datasets.beer import BeerGenerator
from repro.datasets.buy import BuyGenerator
from repro.datasets.citations import DblpAcmGenerator, DblpScholarGenerator
from repro.datasets.hospital import HospitalGenerator
from repro.datasets.music import ItunesAmazonGenerator
from repro.datasets.products import AmazonGoogleGenerator, WalmartAmazonGenerator
from repro.datasets.restaurant import RestaurantGenerator
from repro.datasets.synthea import SyntheaGenerator
from repro.datasets.venues import FodorsZagatGenerator
from repro.errors import DatasetError, UnknownDatasetError

#: dataset-name prefix that resolves a factory schema file instead of a
#: registered generator: ``load_dataset("schema:examples/schemas/orders.yaml")``
SCHEMA_PREFIX = "schema:"

_GENERATORS: dict[str, DatasetGenerator] = {}
_CACHE: dict[tuple[str, int, int, str], PreprocessingDataset] = {}


def register_dataset(generator: DatasetGenerator) -> None:
    """Register a generator under its ``name`` (latest registration wins
    only if the name is new — silent replacement hides bugs)."""
    if not generator.name:
        raise DatasetError("generator has an empty name")
    if generator.name.startswith(SCHEMA_PREFIX):
        raise DatasetError(
            f"generator name {generator.name!r} collides with the "
            f"{SCHEMA_PREFIX!r} dataset-path prefix"
        )
    if generator.name in _GENERATORS:
        raise DatasetError(f"dataset {generator.name!r} is already registered")
    _GENERATORS[generator.name] = generator


for _gen in (
    AdultGenerator(),
    HospitalGenerator(),
    BuyGenerator(),
    RestaurantGenerator(),
    SyntheaGenerator(),
    AmazonGoogleGenerator(),
    WalmartAmazonGenerator(),
    BeerGenerator(),
    DblpAcmGenerator(),
    DblpScholarGenerator(),
    FodorsZagatGenerator(),
    ItunesAmazonGenerator(),
):
    register_dataset(_gen)

#: the 12 benchmark names, in the paper's table order
DATASET_NAMES: tuple[str, ...] = (
    "adult", "hospital",              # error detection
    "buy", "restaurant",              # data imputation
    "synthea",                        # schema matching
    "amazon_google", "beer", "dblp_acm", "dblp_scholar",
    "fodors_zagat", "itunes_amazon", "walmart_amazon",  # entity matching
)


def _resolve_generator(name: str) -> DatasetGenerator:
    """The generator for ``name`` — registered, or a ``schema:`` file."""
    if name.startswith(SCHEMA_PREFIX):
        # Imported lazily: the factory depends on datasets, not vice versa.
        from repro.factory.adapter import schema_generator_from_file

        path = name[len(SCHEMA_PREFIX):]
        if not path:
            raise DatasetError(
                f"{name!r}: expected {SCHEMA_PREFIX}<path-to-schema-file>"
            )
        return schema_generator_from_file(path)
    if name not in _GENERATORS:
        raise UnknownDatasetError(name, list(_GENERATORS))
    return _GENERATORS[name]


def load_dataset(
    name: str, size: int | None = None, seed: int = 0
) -> PreprocessingDataset:
    """Load (generate) a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`, any registered name, or
        ``schema:<path>`` for a factory schema file.
    size:
        Number of test instances; defaults to the published benchmark size
        (for a schema, its task table's declared rows).
    seed:
        Generation seed; the same ``(name, size, seed, content)`` is
        cached and always identical.
    """
    generator = _resolve_generator(name)
    effective_size = size if size is not None else generator.default_size
    key = (name, effective_size, seed, generator.cache_token)
    if key not in _CACHE:
        _CACHE[key] = generator.generate(size=effective_size, seed=seed)
    return _CACHE[key]


@dataclass(frozen=True)
class DatasetInfo:
    """Static facts about a registered benchmark."""

    name: str
    task: Task
    default_size: int
    description: str


def dataset_info(name: str) -> DatasetInfo:
    """Metadata for a dataset (or ``schema:<path>``) without generating it."""
    generator = _resolve_generator(name)
    return DatasetInfo(
        name=generator.name,
        task=generator.task,
        default_size=generator.default_size,
        description=generator.description,
    )


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests measuring generation)."""
    _CACHE.clear()
