"""Dataset registry: ``load_dataset("adult")`` etc.

Generated datasets are cached per ``(name, size, seed)`` within the
process, so repeated experiment runs see identical data without paying the
generation cost twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import PreprocessingDataset, Task
from repro.datasets.adult import AdultGenerator
from repro.datasets.base import DatasetGenerator
from repro.datasets.beer import BeerGenerator
from repro.datasets.buy import BuyGenerator
from repro.datasets.citations import DblpAcmGenerator, DblpScholarGenerator
from repro.datasets.hospital import HospitalGenerator
from repro.datasets.music import ItunesAmazonGenerator
from repro.datasets.products import AmazonGoogleGenerator, WalmartAmazonGenerator
from repro.datasets.restaurant import RestaurantGenerator
from repro.datasets.synthea import SyntheaGenerator
from repro.datasets.venues import FodorsZagatGenerator
from repro.errors import DatasetError, UnknownDatasetError

_GENERATORS: dict[str, DatasetGenerator] = {}
_CACHE: dict[tuple[str, int, int], PreprocessingDataset] = {}


def register_dataset(generator: DatasetGenerator) -> None:
    """Register a generator under its ``name`` (latest registration wins
    only if the name is new — silent replacement hides bugs)."""
    if not generator.name:
        raise DatasetError("generator has an empty name")
    if generator.name in _GENERATORS:
        raise DatasetError(f"dataset {generator.name!r} is already registered")
    _GENERATORS[generator.name] = generator


for _gen in (
    AdultGenerator(),
    HospitalGenerator(),
    BuyGenerator(),
    RestaurantGenerator(),
    SyntheaGenerator(),
    AmazonGoogleGenerator(),
    WalmartAmazonGenerator(),
    BeerGenerator(),
    DblpAcmGenerator(),
    DblpScholarGenerator(),
    FodorsZagatGenerator(),
    ItunesAmazonGenerator(),
):
    register_dataset(_gen)

#: the 12 benchmark names, in the paper's table order
DATASET_NAMES: tuple[str, ...] = (
    "adult", "hospital",              # error detection
    "buy", "restaurant",              # data imputation
    "synthea",                        # schema matching
    "amazon_google", "beer", "dblp_acm", "dblp_scholar",
    "fodors_zagat", "itunes_amazon", "walmart_amazon",  # entity matching
)


def load_dataset(
    name: str, size: int | None = None, seed: int = 0
) -> PreprocessingDataset:
    """Load (generate) a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    size:
        Number of test instances; defaults to the published benchmark size.
    seed:
        Generation seed; the same ``(name, size, seed)`` is cached and
        always identical.
    """
    if name not in _GENERATORS:
        raise UnknownDatasetError(name, list(_GENERATORS))
    generator = _GENERATORS[name]
    effective_size = size if size is not None else generator.default_size
    key = (name, effective_size, seed)
    if key not in _CACHE:
        _CACHE[key] = generator.generate(size=effective_size, seed=seed)
    return _CACHE[key]


@dataclass(frozen=True)
class DatasetInfo:
    """Static facts about a registered benchmark."""

    name: str
    task: Task
    default_size: int
    description: str


def dataset_info(name: str) -> DatasetInfo:
    """Metadata for a registered dataset without generating it."""
    if name not in _GENERATORS:
        raise UnknownDatasetError(name, list(_GENERATORS))
    generator = _GENERATORS[name]
    return DatasetInfo(
        name=generator.name,
        task=generator.task,
        default_size=generator.default_size,
        description=generator.description,
    )


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests measuring generation)."""
    _CACHE.clear()
