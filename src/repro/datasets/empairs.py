"""Shared machinery for entity-matching pair generation.

Every EM benchmark follows the same recipe: a catalog of true entities is
rendered into two "views" (the two source catalogs, e.g. Amazon vs Google),
each view perturbing the entity's surface form; candidate pairs are then
labeled by whether they derive from the same entity.  Benchmarks differ in

- *view divergence* — how differently the two catalogs describe the same
  entity (high for Amazon-Google, low for Fodors-Zagats), and
- *negative hardness* — how similar distinct entities look (version
  variants of the same software are nearly identical).

Both knobs are exposed as :class:`PairProfile` parameters so each dataset
module just supplies entities and a profile.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.data.instances import EMInstance, Instance
from repro.data.records import Record, RecordPair
from repro.data.schema import Schema
from repro.datasets.corruption import typo

_FILLER_TOKENS = (
    "new", "oem", "retail", "dvd", "cd", "win32", "english", "pack",
    "edition", "box", "sealed", "full", "version", "pc", "mac",
)

_CONTRACTIONS = {
    "street": "st.",
    "avenue": "ave.",
    "boulevard": "blvd.",
    "road": "rd.",
    "drive": "dr.",
    "incorporated": "inc.",
    "corporation": "corp.",
    "company": "co.",
    "brewing": "brewing co.",
    "international": "intl",
    "and": "&",
}


@dataclass(frozen=True)
class PairProfile:
    """Difficulty knobs for one EM benchmark.

    Parameters
    ----------
    divergence:
        Probability, per attribute of a matching pair's second view, of a
        surface perturbation (abbreviation, token drop, typo, case change).
    drop_rate:
        Probability an attribute of the second view is missing entirely.
    positive_rate:
        Fraction of generated pairs that are matches.
    hard_negative_rate:
        Among negatives, the fraction drawn as hard negatives (same
        family/brand/author, one discriminating field changed).
    """

    divergence: float
    drop_rate: float
    positive_rate: float
    hard_negative_rate: float
    #: probability the perturbed view omits version/model tokens from the
    #: identity field ("photoshop elements win" with no "5.0") — the main
    #: source of genuine ambiguity in product catalogs
    code_drop_rate: float = 0.0
    #: probability the perturbed view pads its identity field with retail
    #: filler tokens ("oem", "retail", "dvd", "win32") — what makes
    #: crawled product titles diverge beyond string-similarity reach
    noise_token_rate: float = 0.0
    #: attributes (e.g. prices) whose perturbed-view value is numerically
    #: jittered: two stores never quote identical prices, so price must
    #: not become an accidental match oracle
    jitter_attributes: tuple[str, ...] = ()
    #: attributes the perturbed view *rerolls* from a pool instead of
    #: copying — retail sites write their own free-text blurbs, so a
    #: matching pair's descriptions are unrelated text
    reroll_values: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for field_name in ("divergence", "drop_rate", "positive_rate",
                           "hard_negative_rate", "code_drop_rate",
                           "noise_token_rate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")


def perturb_value(value: str, rng: random.Random, intensity: float) -> str:
    """Produce a surface variant of ``value``.

    Applies, each with probability ``intensity``: abbreviation contraction,
    trailing-token drop, a single typo, and punctuation stripping.  The
    result can equal the input when no perturbation fires.
    """
    out = value
    if rng.random() < intensity:
        out = " ".join(_CONTRACTIONS.get(tok, tok) for tok in out.split())
    if rng.random() < intensity * 0.6:
        tokens = out.split()
        if len(tokens) > 2:
            # Drop a trailing descriptive token, but never a code-bearing
            # one (model/version numbers disappear only via the explicit
            # code_drop_rate knob, not as collateral damage).
            droppable = [
                i for i, t in enumerate(tokens[1:], start=1)
                if not any(ch.isdigit() for ch in t)
            ]
            if droppable:
                del tokens[droppable[-1]]
                out = " ".join(tokens)
    if rng.random() < intensity * 0.4 and out:
        out = typo(out, rng).corrupted
    if rng.random() < intensity * 0.5:
        # Strip punctuation, but never a decimal point between digits —
        # catalogs reformat "co." to "co" yet "4.4%" stays "4.4%".
        out = re.sub(r"(?<!\d)\.|\.(?!\d)", "", out).replace(",", "")
    return out


def render_view(
    entity: dict[str, str],
    schema: Schema,
    rng: random.Random,
    profile: PairProfile,
    record_id: str,
    perturb: bool,
    allow_code_drop: bool = True,
) -> Record:
    """Render an entity into one catalog's view.

    The first view (``perturb=False``) is the entity verbatim; the second
    view perturbs each attribute with the profile's divergence and may drop
    attributes entirely.
    """
    values: dict[str, str | None] = {}
    for position, name in enumerate(schema.attribute_names):
        raw = entity.get(name)
        if raw is None:
            values[name] = None
            continue
        # The identity field (title/name) is never dropped — every catalog
        # lists *what* the entity is.
        if perturb and position > 0 and rng.random() < profile.drop_rate:
            values[name] = None
            continue
        value = str(raw)
        if perturb:
            if name in profile.reroll_values:
                values[name] = rng.choice(profile.reroll_values[name])
                continue
            if name in profile.jitter_attributes:
                values[name] = _jitter_numeric(value, rng)
                continue
            if (
                position == 0
                and allow_code_drop
                and rng.random() < profile.code_drop_rate
            ):
                kept = [t for t in value.split() if not any(c.isdigit() for c in t)]
                value = " ".join(kept) or value
            if position == 0 and rng.random() < profile.noise_token_rate:
                fillers = rng.sample(_FILLER_TOKENS, rng.randint(1, 3))
                value = f"{value} {' '.join(fillers)}"
            value = perturb_value(value, rng, profile.divergence)
        values[name] = value
    return Record(schema=schema, values=values, record_id=record_id)


class EMPairGenerator:
    """Turns an entity factory into labeled EM instances.

    Parameters
    ----------
    schema:
        The record schema both views share (as in the published benchmarks,
        which align schemas before matching).
    make_entity:
        ``(rng, index) -> entity dict`` producing a fresh entity.
    make_hard_negative:
        ``(entity, rng) -> entity dict`` producing a *different* entity that
        is easily confused with the given one (same brand, different model).
    profile:
        Difficulty knobs.
    """

    def __init__(
        self,
        schema: Schema,
        make_entity: Callable[[random.Random, int], dict[str, str]],
        make_hard_negative: Callable[[dict[str, str], random.Random], dict[str, str]],
        profile: PairProfile,
        name: str,
    ):
        self._schema = schema
        self._make_entity = make_entity
        self._make_hard_negative = make_hard_negative
        self._profile = profile
        self._name = name

    def generate(self, count: int, rng: random.Random) -> list[Instance]:
        instances: list[Instance] = []
        for i in range(count):
            entity = self._make_entity(rng, i)
            left = render_view(
                entity, self._schema, rng, self._profile,
                record_id=f"{self._name}-l{i}", perturb=False,
            )
            if rng.random() < self._profile.positive_rate:
                right = render_view(
                    entity, self._schema, rng, self._profile,
                    record_id=f"{self._name}-r{i}", perturb=True,
                )
                label = True
            else:
                if rng.random() < self._profile.hard_negative_rate:
                    other = self._make_hard_negative(entity, rng)
                else:
                    other = self._make_entity(rng, count + i + 1)
                    if _same_entity(other, entity):
                        other = self._make_hard_negative(entity, rng)
                # Non-matching listings keep their identifying codes —
                # dropping them would make the ground-truth label
                # unknowable even to a careful reader.
                right = render_view(
                    other, self._schema, rng, self._profile,
                    record_id=f"{self._name}-r{i}", perturb=True,
                    allow_code_drop=False,
                )
                label = False
            instances.append(
                EMInstance(pair=RecordPair(left, right), label=label)
            )
        return instances


def _same_entity(a: dict[str, str], b: dict[str, str]) -> bool:
    return all(a.get(k) == b.get(k) for k in set(a) | set(b))


def _jitter_numeric(value: str, rng: random.Random) -> str:
    """Jitter the numeric core of a value by up to ±15%, keeping affixes."""
    match = re.search(r"\d+(?:\.\d+)?", value)
    if match is None:
        return value
    number = float(match.group(0))
    jittered = number * rng.uniform(0.85, 1.15)
    if "." in match.group(0):
        replacement = f"{jittered:.2f}"
    else:
        replacement = str(max(1, round(jittered)))
    return value[: match.start()] + replacement + value[match.end():]
