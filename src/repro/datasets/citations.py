"""Citation entity-matching benchmarks: DBLP-ACM and DBLP-GoogleScholar.

DBLP-ACM is clean (both catalogs are curated: Ditto 99.0, GPT-4 97.4 F1);
DBLP-GoogleScholar is noisier because Scholar entries truncate author
lists, mangle venues, and drop years (Ditto 95.6, GPT-4 91.9).
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, Task
from repro.data.schema import AttrType, Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.empairs import EMPairGenerator, PairProfile

CITATION_SCHEMA = Schema.from_names(
    "citation",
    ["title", "authors", "venue", "year"],
    types={"year": AttrType.NUMERIC},
)


def _citation_entity(rng: random.Random, index: int) -> dict[str, str]:
    topic = rng.choice(vocab.CS_TOPIC_TERMS)
    pattern = rng.choice(vocab.CS_TITLE_PATTERNS)
    n_authors = rng.randint(1, 4)
    authors = ", ".join(
        f"{rng.choice(vocab.AUTHOR_FIRST_NAMES)} {rng.choice(vocab.AUTHOR_LAST_NAMES)}"
        for __ in range(n_authors)
    )
    venue_short, __ = rng.choice(vocab.ACADEMIC_VENUES)
    return {
        "title": pattern.format(topic=topic),
        "authors": authors,
        "venue": venue_short,
        "year": str(rng.randint(1995, 2010)),
    }


def _citation_hard_negative(
    entity: dict[str, str], rng: random.Random
) -> dict[str, str]:
    """Same topic family: a different paper with an overlapping title."""
    topic = entity["title"]
    for term in vocab.CS_TOPIC_TERMS:
        if term in entity["title"]:
            topic = term
            break
    pattern = rng.choice(vocab.CS_TITLE_PATTERNS)
    title = pattern.format(topic=topic)
    for __ in range(10):
        if title != entity["title"]:
            break
        pattern = rng.choice(vocab.CS_TITLE_PATTERNS)
        title = pattern.format(topic=topic)
    other = _citation_entity(rng, 0)
    venue = entity["venue"] if rng.random() < 0.35 else other["venue"]
    return {
        "title": title,
        "authors": other["authors"],
        "venue": venue,
        "year": other["year"],
    }


class DblpAcmGenerator(DatasetGenerator):
    """DBLP-ACM: curated catalogs, low divergence, near-ceiling scores."""

    name = "dblp_acm"
    task = Task.ENTITY_MATCHING
    default_size = 2473
    description = (
        "Bibliographic records across DBLP and ACM; both catalogs are "
        "curated so matching pairs differ only in formatting."
    )

    _profile = PairProfile(
        divergence=0.25,
        drop_rate=0.05,
        positive_rate=0.18,
        hard_negative_rate=0.3,
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=CITATION_SCHEMA,
            make_entity=_citation_entity,
            make_hard_negative=_citation_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)


class DblpScholarGenerator(DatasetGenerator):
    """DBLP-GoogleScholar: crawled catalog, heavy truncation and noise."""

    name = "dblp_scholar"
    task = Task.ENTITY_MATCHING
    default_size = 5742
    description = (
        "Bibliographic records across DBLP and Google Scholar; the Scholar "
        "side truncates author lists, mangles venues, and drops years."
    )

    _profile = PairProfile(
        divergence=0.55,
        drop_rate=0.25,
        positive_rate=0.18,
        hard_negative_rate=0.38,
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=CITATION_SCHEMA,
            make_entity=_citation_entity,
            make_hard_negative=_citation_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)
