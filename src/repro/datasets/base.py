"""Generator base class and shared helpers."""

from __future__ import annotations

import abc
import random
import zlib

from repro.data.instances import Instance, PreprocessingDataset, Task
from repro.errors import DatasetError


class DatasetGenerator(abc.ABC):
    """Base class for synthetic benchmark generators.

    Subclasses define ``name``, ``task``, ``default_size`` and implement
    :meth:`_generate_instances`.  The base class handles seeding, sizing,
    and carving out a disjoint few-shot pool (the paper conditions models on
    up to 10 hand-labeled examples, so the pool holds a few more than that).
    """

    #: registry name, e.g. ``"amazon_google"``
    name: str = ""
    #: the preprocessing task this benchmark evaluates
    task: Task
    #: number of *test* instances the published benchmark has
    default_size: int = 1000
    #: instances reserved for few-shot conditioning
    fewshot_pool_size: int = 16
    #: human-readable provenance note
    description: str = ""
    #: content address of the generator's *parameters*, folded into the
    #: registry cache key.  Hand-written benchmarks are identified by name
    #: alone (empty token); schema-backed generators put the schema
    #: fingerprint here so two schemas sharing a name can never alias.
    cache_token: str = ""

    def generate(
        self, size: int | None = None, seed: int = 0
    ) -> PreprocessingDataset:
        """Generate the benchmark.

        Parameters
        ----------
        size:
            Number of test instances; defaults to the published benchmark's
            size.  The few-shot pool is generated *in addition* to this.
        seed:
            Seed for full determinism: the same ``(size, seed)`` always
            yields byte-identical datasets.
        """
        if size is None:
            size = self.default_size
        if size <= 0:
            raise DatasetError(f"size must be positive, got {size}")
        # zlib.crc32 is stable across processes (str.__hash__ is salted).
        rng = random.Random(zlib.crc32(self.name.encode("utf-8")) ^ seed)
        total = size + self.fewshot_pool_size
        instances = self._generate_instances(total, rng)
        if len(instances) != total:
            raise DatasetError(
                f"{self.name}: generator produced {len(instances)} instances, "
                f"expected {total}"
            )
        for i, inst in enumerate(instances):
            if not inst.instance_id:
                inst.instance_id = f"{self.name}-{i}"
        # The pool is drawn from the same distribution; keep it label-balanced
        # for binary tasks so few-shot examples show both classes.
        pool = self._pick_pool(instances, rng)
        pool_ids = {id(p) for p in pool}
        test = [inst for inst in instances if id(inst) not in pool_ids]
        return PreprocessingDataset(
            name=self.name,
            task=self.task,
            instances=test[:size],
            fewshot_pool=pool,
            description=self.description,
        )

    def _pick_pool(
        self, instances: list[Instance], rng: random.Random
    ) -> list[Instance]:
        if self.task is Task.DATA_IMPUTATION:
            return rng.sample(instances, self.fewshot_pool_size)
        positives = [i for i in instances if i.label]
        negatives = [i for i in instances if not i.label]
        half = self.fewshot_pool_size // 2
        pool: list[Instance] = []
        pool.extend(rng.sample(positives, min(half, len(positives))))
        pool.extend(
            rng.sample(negatives, min(self.fewshot_pool_size - len(pool), len(negatives)))
        )
        if len(pool) < self.fewshot_pool_size:
            remaining = [i for i in instances if id(i) not in {id(p) for p in pool}]
            pool.extend(
                rng.sample(
                    remaining,
                    min(self.fewshot_pool_size - len(pool), len(remaining)),
                )
            )
        rng.shuffle(pool)
        return pool

    @abc.abstractmethod
    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        """Produce exactly ``count`` labeled instances."""


def pick_weighted(rng: random.Random, items: dict[str, float]) -> str:
    """Pick a key of ``items`` with probability proportional to its value."""
    if not items:
        raise DatasetError("cannot pick from an empty distribution")
    keys = list(items)
    weights = [items[k] for k in keys]
    return rng.choices(keys, weights=weights, k=1)[0]
