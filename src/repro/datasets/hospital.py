"""The Hospital error-detection benchmark.

The classic data-cleaning benchmark of US hospital quality measures.  Its
published corruption is dominated by single-character typos — most famously
``x`` insertions (``heaxrt attack``) — in otherwise clean categorical text.
"""

from __future__ import annotations

import random

from repro.data.instances import EDInstance, Instance, Task
from repro.data.records import Record
from repro.data.schema import AttrType, Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.corruption import typo

HOSPITAL_SCHEMA = Schema.from_names(
    "hospital",
    [
        "providernumber", "hospitalname", "address", "city", "state",
        "zipcode", "phone", "condition", "measurecode", "measurename",
        "score", "sample", "stateavg",
    ],
    types={
        "providernumber": AttrType.NUMERIC,
        "zipcode": AttrType.TEXT,
        "phone": AttrType.TEXT,
        "score": AttrType.TEXT,   # e.g. "94%"
        "sample": AttrType.TEXT,  # e.g. "312 patients"
    },
)

_TARGETS = (
    "hospitalname", "address", "city", "state", "zipcode", "phone",
    "condition", "measurecode", "measurename", "score", "sample",
    "stateavg",
)

_ERROR_RATE = 0.20


class HospitalGenerator(DatasetGenerator):
    """Generate Hospital ED instances dominated by x-insertion typos."""

    name = "hospital"
    task = Task.ERROR_DETECTION
    default_size = 2000
    description = (
        "US hospital quality-measure records; detect single-character typos "
        "(mostly 'x' insertions) injected into categorical text cells."
    )

    def _clean_record(self, rng: random.Random, index: int) -> Record:
        city = rng.choice(vocab.US_CITIES)
        code, measure = rng.choice(vocab.HOSPITAL_MEASURES)
        condition = _condition_for(code)
        area = rng.choice(city.area_codes)
        values = {
            "providernumber": 10000 + rng.randint(1, 899) * 10,
            "hospitalname": rng.choice(vocab.HOSPITAL_NAME_PARTS),
            "address": f"{rng.randint(100, 9999)} {rng.choice(vocab.STREET_NAMES)}",
            "city": city.name,
            "state": city.state,
            "zipcode": f"{city.zip_prefix}{rng.randint(10, 99)}",
            "phone": f"{area}{rng.randint(1000000, 9999999)}",
            "condition": condition,
            "measurecode": code,
            "measurename": measure,
            "score": f"{rng.randint(55, 100)}%",
            "sample": f"{rng.randint(10, 900)} patients",
            "stateavg": f"{city.state}_{code}",
        }
        return Record(
            schema=HOSPITAL_SCHEMA, values=values, record_id=f"hospital-{index}"
        )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        instances: list[Instance] = []
        for i in range(count):
            record = self._clean_record(rng, i)
            target = rng.choice(_TARGETS)
            has_error = rng.random() < _ERROR_RATE
            clean_value: str | None = None
            if has_error:
                clean_value = str(record[target])
                # 70% Hospital-signature x-insertions, 30% other typos.
                kind = "x_insert" if rng.random() < 0.7 else "any"
                record[target] = typo(clean_value, rng, kind=kind).corrupted
            elif rng.random() < 0.3:
                # Distractor typo in a non-target cell.
                other = rng.choice([t for t in _TARGETS if t != target])
                value = str(record[other])
                record[other] = typo(value, rng, kind="x_insert").corrupted
            instances.append(
                EDInstance(
                    record=record,
                    target_attribute=target,
                    label=has_error,
                    clean_value=clean_value,
                )
            )
        return instances


def _condition_for(measure_code: str) -> str:
    prefix = measure_code.split("-")[0]
    return {
        "ami": "heart attack",
        "hf": "heart failure",
        "pn": "pneumonia",
        "scip": "surgical infection prevention",
    }.get(prefix, "heart attack")
