"""Product entity-matching benchmarks: Amazon-Google and Walmart-Amazon.

Amazon-Google matches *software* products across two catalogs with very
different title conventions — the hardest EM dataset in the paper (Ditto
75.6, GPT-4 74.2 F1).  Walmart-Amazon matches general electronics and is a
bit easier (Ditto 86.8, GPT-4 90.3) because ``modelno`` and ``brand`` are
explicit columns.
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, Task
from repro.data.schema import AttrType, Schema
from repro.datasets import vocabularies as vocab
from repro.datasets.base import DatasetGenerator
from repro.datasets.empairs import EMPairGenerator, PairProfile

AMAZON_GOOGLE_SCHEMA = Schema.from_names(
    "amazon_google",
    ["title", "manufacturer", "price"],
    types={"price": AttrType.TEXT},
)

WALMART_AMAZON_SCHEMA = Schema.from_names(
    "walmart_amazon",
    ["title", "category", "brand", "modelno", "price"],
    types={"price": AttrType.TEXT},
)

_VERSION_WORDS = ("deluxe", "premium", "standard", "professional", "home")


def _software_entity(rng: random.Random, index: int) -> dict[str, str]:
    publisher = rng.choice(vocab.SOFTWARE_PUBLISHERS)
    title = rng.choice(vocab.SOFTWARE_TITLES)
    version = f"{rng.randint(1, 12)}.{rng.choice([0, 0, 5])}"
    edition = rng.choice(_VERSION_WORDS)
    return {
        "title": f"{publisher} {title} {version} {edition}",
        "manufacturer": publisher,
        "price": f"{rng.randint(19, 400)}.{rng.choice(['00', '95', '99'])}",
    }


def _software_hard_negative(
    entity: dict[str, str], rng: random.Random
) -> dict[str, str]:
    """Same publisher and product line, different version/edition.

    This is exactly the confusion that makes Amazon-Google hard: version
    variants of the same software are near-duplicates textually.
    """
    tokens = entity["title"].split()
    version_index = len(tokens) - 2
    old_version = tokens[version_index]
    new_version = f"{rng.randint(1, 12)}.{rng.choice([0, 0, 5])}"
    while new_version == old_version:
        new_version = f"{rng.randint(1, 12)}.{rng.choice([0, 0, 5])}"
    tokens[version_index] = new_version
    if rng.random() < 0.5:
        tokens[-1] = rng.choice(
            [w for w in _VERSION_WORDS if w != tokens[-1]]
        )
    return {
        "title": " ".join(tokens),
        "manufacturer": entity["manufacturer"],
        "price": f"{rng.randint(19, 400)}.{rng.choice(['00', '95', '99'])}",
    }


class AmazonGoogleGenerator(DatasetGenerator):
    """Amazon-Google software EM: high divergence, many version negatives."""

    name = "amazon_google"
    task = Task.ENTITY_MATCHING
    default_size = 2293
    description = (
        "Software products across Amazon and Google catalogs; matching "
        "pairs diverge heavily in title conventions and negatives are "
        "version variants of the same product."
    )

    _profile = PairProfile(
        divergence=1.0,
        drop_rate=0.25,
        positive_rate=0.12,
        hard_negative_rate=0.65,
        code_drop_rate=0.6,
        noise_token_rate=0.55,
        jitter_attributes=("price",),
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=AMAZON_GOOGLE_SCHEMA,
            make_entity=_software_entity,
            make_hard_negative=_software_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)


def _electronics_entity(rng: random.Random, index: int) -> dict[str, str]:
    brand = rng.choice(list(vocab.PRODUCT_BRANDS))
    line = rng.choice(vocab.PRODUCT_BRANDS[brand])
    modelno = f"{rng.choice('abcdefghjkmnpqrstvwx')}{rng.randint(100, 99999)}"
    category = line.split()[-1]
    return {
        "title": f"{brand} {line} {modelno}",
        "category": category,
        "brand": brand,
        "modelno": modelno,
        "price": f"{rng.randint(15, 2200)}.{rng.choice(['00', '95', '99'])}",
    }


def _electronics_hard_negative(
    entity: dict[str, str], rng: random.Random
) -> dict[str, str]:
    """Same brand and product line, different model number."""
    modelno = entity["modelno"]
    new_model = f"{modelno[0]}{rng.randint(100, 99999)}"
    while new_model == modelno:
        new_model = f"{modelno[0]}{rng.randint(100, 99999)}"
    line = " ".join(entity["title"].split()[1:-1]) or entity["category"]
    return {
        "title": f"{entity['brand']} {line} {new_model}",
        "category": entity["category"],
        "brand": entity["brand"],
        "modelno": new_model,
        "price": f"{rng.randint(15, 2200)}.{rng.choice(['00', '95', '99'])}",
    }


class WalmartAmazonGenerator(DatasetGenerator):
    """Walmart-Amazon electronics EM: explicit brand/model columns help."""

    name = "walmart_amazon"
    task = Task.ENTITY_MATCHING
    default_size = 2049
    description = (
        "Electronics across Walmart and Amazon; brand and model number are "
        "explicit columns, but negatives share both brand and product line."
    )

    _profile = PairProfile(
        divergence=0.5,
        drop_rate=0.15,
        positive_rate=0.10,
        hard_negative_rate=0.55,
        # modelno is an explicit column, so titles keep their codes —
        # negatives stay decidable (labelers saw full records).
        code_drop_rate=0.0,
        noise_token_rate=0.2,
        jitter_attributes=("price",),
    )

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        generator = EMPairGenerator(
            schema=WALMART_AMAZON_SCHEMA,
            make_entity=_electronics_entity,
            make_hard_negative=_electronics_hard_negative,
            profile=self._profile,
            name=self.name,
        )
        return generator.generate(count, rng)
