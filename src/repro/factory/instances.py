"""Task instances from table streams: the factory's benchmark layer.

``InstanceFactory`` turns a :class:`~repro.factory.model.FactorySchema`
into labeled instances for whichever task the schema declares.  Like the
row layer underneath it, **instance ``i`` is a pure function of
``(schema fingerprint, seed, i)``** — error injection, pair construction
and labeling all draw from per-index derived random streams, never from
shared generator state.  That is what lets the adapter stream instances
in any order or chunking and still match materialized generation byte
for byte.

Error injection reuses the corruption kit the hand-written ED benchmarks
use (:mod:`repro.datasets.corruption`) and adds the OCR document channel
(:mod:`repro.factory.ocr`); family mix and rates come from the schema's
task declaration.
"""

from __future__ import annotations

import random

from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    Instance,
    SMInstance,
    Task,
)
from repro.data.records import AttributePair, CellValue, Record, RecordPair
from repro.datasets.base import pick_weighted
from repro.datasets.corruption import Corruption, domain_violation, numeric_outlier, typo
from repro.datasets.empairs import PairProfile, render_view, _same_entity
from repro.errors import DatasetError
from repro.factory.generate import DatasetFactory
from repro.factory.model import FactorySchema, HardnessSpec, _explicit_values
from repro.factory.ocr import OCR_KINDS, apply_ocr


def _as_text(value: CellValue) -> str | None:
    return None if value is None else str(value)


class InstanceFactory:
    """Pure per-index instance generation for one ``(schema, seed)``."""

    def __init__(self, schema: FactorySchema, seed: int = 0):
        self.schema = schema
        self.seed = seed
        self.task = Task(schema.task.kind)
        self.factory = DatasetFactory(schema, seed=seed)
        self._table = schema.table(schema.task.table)
        self._stream = self.factory.stream(schema.task.table)

    # -- shared -----------------------------------------------------------

    def instance_at(self, index: int) -> Instance:
        """Instance ``index`` — same bytes regardless of access order."""
        build = {
            Task.ERROR_DETECTION: self._ed_at,
            Task.DATA_IMPUTATION: self._di_at,
            Task.SCHEMA_MATCHING: self._sm_at,
            Task.ENTITY_MATCHING: self._em_at,
        }[self.task]
        instance = build(index)
        instance.instance_id = f"{self.schema.name}-{index}"
        return instance

    def iter_instances(self, count: int):
        """Stream ``count`` instances without retaining them."""
        for index in range(count):
            yield self.instance_at(index)

    # -- error injection --------------------------------------------------

    def _corrupt_cell(
        self,
        record: Record,
        attribute: str,
        family: str,
        rng: random.Random,
    ) -> Corruption:
        """Apply one error family to ``record[attribute]``."""
        value = record[attribute]
        if value is None:
            raise DatasetError(
                f"cannot corrupt missing cell {attribute!r}"
            )
        if family in OCR_KINDS:
            neighbor = self._neighbor_value(record, attribute)
            return apply_ocr(family, str(value), rng, neighbor=neighbor)
        if family == "numeric_outlier" and isinstance(value, (int, float)):
            return numeric_outlier(value, rng)
        if family == "domain_violation":
            foreign = self._foreign_domain(attribute, rng)
            if foreign:
                try:
                    return domain_violation(str(value), foreign, rng)
                except DatasetError:
                    pass
        # typo, or the fallback when a family cannot apply to this cell
        return typo(str(value), rng)

    def _neighbor_value(self, record: Record, attribute: str) -> str | None:
        """The next column's text, the cell a lost boundary merges in."""
        names = self._table.column_names
        at = names.index(attribute)
        for offset in range(1, len(names)):
            candidate = record[names[(at + offset) % len(names)]]
            if candidate is not None:
                return str(candidate)
        return None

    def _foreign_domain(self, attribute: str, rng: random.Random) -> list[str]:
        """Values of a sibling column with an enumerable domain."""
        candidates = []
        for column in self._table.columns:
            if column.name == attribute:
                continue
            values = _explicit_values(self._table, column)
            if values:
                candidates.append([str(v) for v in values])
        if not candidates:
            return []
        return rng.choice(candidates)

    # -- error detection --------------------------------------------------

    def _ed_at(self, index: int) -> EDInstance:
        task = self.schema.task
        record = self._stream.record(index)
        rng = self.factory.derived_rng("ed", index)
        target = rng.choice(list(task.targets))
        if rng.random() < task.error_rate:
            family = pick_weighted(rng, task.families)
            corruption = self._corrupt_cell(record, target, family, rng)
            record[target] = corruption.corrupted
            return EDInstance(
                record=record,
                target_attribute=target,
                label=True,
                clean_value=corruption.original,
            )
        # A clean target; sometimes dirty *context* (a distractor), so the
        # benchmark punishes flagging errors in the wrong column.
        if rng.random() < task.distractor_rate:
            others = [n for n in task.targets if n != target]
            others += [
                n for n in self._table.column_names if n not in task.targets
            ]
            if others:
                distractor = rng.choice(others)
                if record[distractor] is not None:
                    family = pick_weighted(rng, task.families)
                    corruption = self._corrupt_cell(
                        record, distractor, family, rng
                    )
                    record[distractor] = corruption.corrupted
        return EDInstance(
            record=record, target_attribute=target, label=False,
        )

    # -- data imputation --------------------------------------------------

    def _di_at(self, index: int) -> DIInstance:
        task = self.schema.task
        record = self._stream.record(index)
        rng = self.factory.derived_rng("di", index)
        true_value = record[task.target]
        if task.noise_rate:
            for name in self._table.column_names:
                if name == task.target or record[name] is None:
                    continue
                if rng.random() < task.noise_rate:
                    family = pick_weighted(rng, task.noise_families)
                    corruption = self._corrupt_cell(record, name, family, rng)
                    record[name] = corruption.corrupted
        return DIInstance(
            record=record.with_missing(task.target),
            target_attribute=task.target,
            true_value=str(true_value),
        )

    # -- entity matching --------------------------------------------------

    def _entity_at(self, index: int) -> dict[str, str]:
        row = self._stream.row(index)
        return {
            name: text
            for name, value in row.items()
            if (text := _as_text(value)) is not None
        }

    def _em_at(self, index: int) -> EMInstance:
        hardness = self.schema.task.hardness or HardnessSpec()
        profile = PairProfile(
            divergence=hardness.divergence,
            drop_rate=hardness.drop_rate,
            positive_rate=hardness.positive_rate,
            hard_negative_rate=hardness.hard_negative_rate,
            code_drop_rate=hardness.code_drop_rate,
            noise_token_rate=hardness.noise_token_rate,
        )
        schema = self._stream.schema
        rng = self.factory.derived_rng("em", index)
        entity = self._entity_at(index)
        name = self.schema.name
        left = render_view(
            entity, schema, rng, profile,
            record_id=f"{name}-l{index}", perturb=False,
        )
        if rng.random() < profile.positive_rate:
            right = render_view(
                entity, schema, rng, profile,
                record_id=f"{name}-r{index}", perturb=True,
            )
            return EMInstance(pair=RecordPair(left, right), label=True)
        other = self._other_entity(entity, index, rng,
                                   hard=rng.random() < profile.hard_negative_rate,
                                   keep=hardness.keep_attributes)
        right = render_view(
            other, schema, rng, profile,
            record_id=f"{name}-r{index}", perturb=True,
            allow_code_drop=False,
        )
        return EMInstance(pair=RecordPair(left, right), label=False)

    def _other_entity(
        self,
        entity: dict[str, str],
        index: int,
        rng: random.Random,
        hard: bool,
        keep: tuple[str, ...],
    ) -> dict[str, str]:
        """A *different* entity; hard negatives share ``keep`` attributes."""
        other_index = rng.randrange(1 << 30)
        if other_index == index:
            other_index += 1
        other = self._entity_at(other_index)
        if hard:
            for attribute in keep:
                if attribute in entity:
                    other[attribute] = entity[attribute]
        if _same_entity(other, entity):
            # Same surface form by chance: force the identity field apart.
            identity = self._table.column_names[0]
            base = other.get(identity) or entity.get(identity) or "entity"
            other[identity] = typo(base, rng).corrupted
        return other

    # -- schema matching --------------------------------------------------

    def _sm_at(self, index: int) -> SMInstance:
        task = self.schema.task
        left_table = self.schema.table(task.table)
        right_table = self.schema.table(task.right_table)
        matches = set(task.matches)
        negatives = [
            (left.name, right.name)
            for left in left_table.columns
            for right in right_table.columns
            if (left.name, right.name) not in matches
        ]
        rng = self.factory.derived_rng("sm", index)
        if rng.random() < task.positive_rate:
            left_name, right_name = task.matches[rng.randrange(len(task.matches))]
            label = True
        else:
            left_name, right_name = negatives[rng.randrange(len(negatives))]
            label = False
        return SMInstance(
            pair=AttributePair(
                left_table.column(left_name).attribute,
                right_table.column(right_name).attribute,
            ),
            label=label,
        )
