"""YAML factory schemas: parse, validate, dump.

A schema file is one YAML document mirroring
:meth:`~repro.factory.model.FactorySchema.to_dict` exactly:

.. code-block:: yaml

    name: orders
    version: 1
    tables:
      - name: customers
        rows: 200
        columns:
          - {name: customer_id, type: text, dist: {kind: sequence, prefix: cust-}}
          - {name: city, type: categorical,
             dist: {kind: uniform, values: [austin, boston, denver]}}
      - name: orders
        rows: 5000
        columns:
          - {name: order_id, type: text, dist: {kind: sequence, prefix: ord-}}
          - {name: customer_id, type: text,
             dist: {kind: ref, table: customers, column: customer_id,
                    skew: zipf, a: 1.3}}
          - {name: quantity, type: numeric, dist: {kind: int, low: 1, high: 12}}
    task:
      kind: error_detection
      table: orders
      targets: [quantity]
      error_rate: 0.3
      families: {typo: 1.0, numeric_outlier: 1.0}

Parsing is strict (typed :class:`~repro.errors.ConfigError` on any
problem) and lossless: ``load_schema(dump_schema(s))`` reproduces the
same schema, fingerprint included — the YAML round-trip property in
``tests/property/test_property_factory.py``.

PyYAML is an optional dependency, gated exactly like ``flow/spec.py``:
only the file/CLI path needs it, so its absence degrades to a clear
error.  JSON schema files (``.json``) parse without PyYAML.
"""

from __future__ import annotations

import json
from pathlib import Path

try:  # pragma: no cover - exercised only where PyYAML is absent
    import yaml as _yaml
except ImportError:  # pragma: no cover
    _yaml = None

from repro.errors import ConfigError
from repro.factory.model import FactorySchema


def load_schema(text: str, source: str = "<string>") -> FactorySchema:
    """Parse one schema document (YAML, or JSON as its subset)."""
    if _yaml is not None:
        try:
            raw = _yaml.safe_load(text)
        except _yaml.YAMLError as err:
            raise ConfigError(f"{source}: invalid YAML: {err}") from err
    else:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as err:
            raise ConfigError(
                f"{source}: PyYAML is not installed; only JSON schema "
                f"documents can be parsed without it ({err})"
            ) from err
    if not isinstance(raw, dict):
        raise ConfigError(
            f"{source}: a schema document must be a mapping, "
            f"got {type(raw).__name__}"
        )
    return FactorySchema.from_dict(raw)


def load_schema_file(path: str | Path) -> FactorySchema:
    """Parse a schema file; ``.json`` files never need PyYAML."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise ConfigError(f"cannot read schema file {path}: {err}") from err
    return load_schema(text, source=str(path))


def dump_schema(schema: FactorySchema) -> str:
    """The schema as YAML, key order preserved for readability."""
    if _yaml is None:
        raise ConfigError(
            "PyYAML is not installed; cannot dump a schema to YAML "
            "(install pyyaml, or serialize schema.to_dict() as JSON)"
        )
    return _yaml.safe_dump(
        schema.to_dict(), sort_keys=False, default_flow_style=False,
        allow_unicode=True,
    )
