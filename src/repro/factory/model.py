"""The factory schema model: tables, typed columns, a task declaration.

A :class:`FactorySchema` is the entire identity of a generated dataset.
It is **pure data** — plain dataclasses that round-trip losslessly
through :meth:`FactorySchema.to_dict` / :meth:`FactorySchema.from_dict`
(and hence through YAML, see ``factory/spec.py``) — and its canonical
JSON form is hashed into a 16-hex **fingerprint**.  Everything the
factory emits is a pure function of ``(fingerprint, size, seed)``: the
fingerprint is the schema's content address, it keys the dataset cache
(see ``datasets/registry.py``), and it salts every per-row random
stream, so two schemas that differ in any parameter generate disjoint
data even under the same registered name.

Validation is strict and happens at construction: unknown keys, dangling
foreign keys, a ``map`` column whose source it cannot cover, a task
pointed at a column that may go missing — all raise typed
:class:`~repro.errors.ConfigError` before a single row is generated.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.data.schema import Attribute, AttrType, Schema
from repro.errors import ConfigError
from repro.factory import distributions
from repro.factory.ocr import OCR_KINDS
from repro.obs.manifest import canonical_json

#: error families the injection channel understands: the classic keyboard
#: families from ``datasets/corruption.py`` plus the OCR document channel
KNOWN_FAMILIES: tuple[str, ...] = (
    "typo", "domain_violation", "numeric_outlier",
) + OCR_KINDS

_TASK_ALIASES = {
    "ed": "error_detection",
    "di": "data_imputation",
    "sm": "schema_matching",
    "em": "entity_matching",
}

_COLUMN_KEYS = {"name", "type", "dist", "description", "missing_rate"}
_TABLE_KEYS = {"name", "rows", "columns"}
_SCHEMA_KEYS = {"name", "version", "tables", "task"}
_TASK_KEYS = {
    "error_detection": {"kind", "table", "targets", "error_rate",
                        "families", "distractor_rate"},
    "data_imputation": {"kind", "table", "target", "noise_rate",
                        "noise_families"},
    "schema_matching": {"kind", "table", "right_table", "matches",
                        "positive_rate"},
    "entity_matching": {"kind", "table", "hardness"},
}
_HARDNESS_KEYS = {
    "divergence", "drop_rate", "positive_rate", "hard_negative_rate",
    "code_drop_rate", "noise_token_rate", "keep_attributes",
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _rate(value: object, name: str, where: str) -> float:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{where}: {name} must be a number, got {value!r}")
    _require(0.0 <= value <= 1.0,  # type: ignore[operator]
             f"{where}: {name} must be in [0, 1], got {value!r}")
    return float(value)  # type: ignore[arg-type]


def _families(raw: object, name: str, where: str) -> dict[str, float]:
    _require(isinstance(raw, dict) and raw,
             f"{where}: {name} must be a non-empty mapping of family -> weight")
    out: dict[str, float] = {}
    for family, weight in raw.items():  # type: ignore[union-attr]
        _require(family in KNOWN_FAMILIES,
                 f"{where}: unknown error family {family!r}; "
                 f"known: {', '.join(KNOWN_FAMILIES)}")
        _require(isinstance(weight, (int, float)) and not isinstance(weight, bool)
                 and weight > 0,
                 f"{where}: weight for family {family!r} must be positive")
        out[str(family)] = float(weight)
    return out


@dataclass(frozen=True)
class Distribution:
    """One column's value distribution: a kind plus validated parameters."""

    kind: str
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, **self.params}

    @classmethod
    def from_dict(cls, raw: dict, where: str) -> Distribution:
        _require(isinstance(raw, dict), f"{where}: 'dist' must be a mapping")
        kind = raw.get("kind")
        _require(isinstance(kind, str) and bool(kind),
                 f"{where}: 'dist' needs a 'kind'")
        params = {k: v for k, v in raw.items() if k != "kind"}
        return cls(kind=kind,  # type: ignore[arg-type]
                   params=distributions.validate_params(kind, params, where))


@dataclass(frozen=True)
class ColumnSpec:
    """A named, typed column with a distribution and an optional miss rate."""

    name: str
    type: AttrType
    dist: Distribution
    description: str = ""
    missing_rate: float = 0.0

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "type": self.type.value,
            "dist": self.dist.to_dict(),
        }
        if self.description:
            out["description"] = self.description
        if self.missing_rate:
            out["missing_rate"] = self.missing_rate
        return out

    @classmethod
    def from_dict(cls, raw: dict, where: str) -> ColumnSpec:
        _require(isinstance(raw, dict), f"{where}: column must be a mapping")
        unknown = set(raw) - _COLUMN_KEYS
        _require(not unknown,
                 f"{where}: unknown column key(s): {', '.join(sorted(unknown))}")
        name = raw.get("name")
        _require(isinstance(name, str) and bool(name),
                 f"{where}: column needs a non-empty 'name'")
        where = f"{where}.{name}"
        type_name = raw.get("type", "text")
        try:
            attr_type = AttrType(type_name)
        except ValueError:
            raise ConfigError(
                f"{where}: unknown type {type_name!r}; known: "
                f"{', '.join(t.value for t in AttrType)}"
            ) from None
        _require("dist" in raw, f"{where}: column needs a 'dist'")
        description = raw.get("description", "")
        _require(isinstance(description, str),
                 f"{where}: 'description' must be a string")
        missing_rate = raw.get("missing_rate", 0.0)
        return cls(
            name=name,  # type: ignore[arg-type]
            type=attr_type,
            dist=Distribution.from_dict(raw["dist"], where),
            description=description,  # type: ignore[arg-type]
            missing_rate=_rate(missing_rate, "missing_rate", where)
            if missing_rate else 0.0,
        )

    @property
    def attribute(self) -> Attribute:
        return Attribute(self.name, self.type, self.description)


@dataclass(frozen=True)
class TableSpec:
    """A table: name, declared row count, ordered columns.

    ``rows`` is the table's *universe* size — the row space foreign keys
    draw from and the default dataset size; generation itself can stream
    any number of rows because every row is addressed by index.
    """

    name: str
    rows: int
    columns: tuple[ColumnSpec, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rows": self.rows,
            "columns": [column.to_dict() for column in self.columns],
        }

    @classmethod
    def from_dict(cls, raw: dict, where: str) -> TableSpec:
        _require(isinstance(raw, dict), f"{where}: table must be a mapping")
        unknown = set(raw) - _TABLE_KEYS
        _require(not unknown,
                 f"{where}: unknown table key(s): {', '.join(sorted(unknown))}")
        name = raw.get("name")
        _require(isinstance(name, str) and bool(name),
                 f"{where}: table needs a non-empty 'name'")
        where = f"{where}.{name}"
        rows = raw.get("rows")
        _require(isinstance(rows, int) and not isinstance(rows, bool)
                 and rows >= 1, f"{where}: 'rows' must be an int >= 1")
        columns_raw = raw.get("columns")
        _require(isinstance(columns_raw, list) and bool(columns_raw),
                 f"{where}: 'columns' must be a non-empty list")
        columns = tuple(
            ColumnSpec.from_dict(col, f"{where}.columns")
            for col in columns_raw  # type: ignore[union-attr]
        )
        seen: set[str] = set()
        for column in columns:
            _require(column.name not in seen,
                     f"{where}: duplicate column {column.name!r}")
            seen.add(column.name)
        return cls(name=name, rows=rows, columns=columns)  # type: ignore[arg-type]

    def column(self, name: str) -> ColumnSpec:
        for col in self.columns:
            if col.name == name:
                return col
        raise ConfigError(f"table {self.name!r} has no column {name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def record_schema(self) -> Schema:
        return Schema(
            name=self.name,
            attributes=tuple(col.attribute for col in self.columns),
        )


@dataclass(frozen=True)
class HardnessSpec:
    """EM difficulty knobs, mirroring :class:`~repro.datasets.empairs.PairProfile`."""

    divergence: float = 0.3
    drop_rate: float = 0.1
    positive_rate: float = 0.4
    hard_negative_rate: float = 0.5
    code_drop_rate: float = 0.0
    noise_token_rate: float = 0.0
    #: attributes a hard negative copies from the anchor entity (brand,
    #: factory, city — whatever makes two distinct entities confusable)
    keep_attributes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "divergence": self.divergence,
            "drop_rate": self.drop_rate,
            "positive_rate": self.positive_rate,
            "hard_negative_rate": self.hard_negative_rate,
            "code_drop_rate": self.code_drop_rate,
            "noise_token_rate": self.noise_token_rate,
            "keep_attributes": list(self.keep_attributes),
        }

    @classmethod
    def from_dict(cls, raw: dict, where: str) -> HardnessSpec:
        _require(isinstance(raw, dict), f"{where}: 'hardness' must be a mapping")
        unknown = set(raw) - _HARDNESS_KEYS
        _require(not unknown,
                 f"{where}: unknown hardness key(s): {', '.join(sorted(unknown))}")
        keep = raw.get("keep_attributes", [])
        _require(isinstance(keep, (list, tuple))
                 and all(isinstance(k, str) for k in keep),
                 f"{where}: 'keep_attributes' must be a list of column names")
        rates = {
            name: _rate(raw.get(name, getattr(cls, name)), name, where)
            for name in _HARDNESS_KEYS - {"keep_attributes"}
        }
        _require(rates["positive_rate"] > 0.0,
                 f"{where}: positive_rate must be > 0 so few-shot pools "
                 f"can show both classes")
        return cls(keep_attributes=tuple(keep), **rates)  # type: ignore[arg-type]


@dataclass(frozen=True)
class TaskSpec:
    """What benchmark the schema generates, and with which knobs."""

    kind: str                                 # a Task value string
    table: str
    # --- error detection ---
    targets: tuple[str, ...] = ()
    error_rate: float = 0.3
    families: dict = field(default_factory=dict)
    distractor_rate: float = 0.2
    # --- data imputation ---
    target: str = ""
    noise_rate: float = 0.0
    noise_families: dict = field(default_factory=dict)
    # --- schema matching ---
    right_table: str = ""
    matches: tuple[tuple[str, str], ...] = ()
    positive_rate: float = 0.5
    # --- entity matching ---
    hardness: HardnessSpec | None = None

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "table": self.table}
        if self.kind == "error_detection":
            out["targets"] = list(self.targets)
            out["error_rate"] = self.error_rate
            out["families"] = dict(self.families)
            out["distractor_rate"] = self.distractor_rate
        elif self.kind == "data_imputation":
            out["target"] = self.target
            if self.noise_rate:
                out["noise_rate"] = self.noise_rate
                out["noise_families"] = dict(self.noise_families)
        elif self.kind == "schema_matching":
            out["right_table"] = self.right_table
            out["matches"] = [list(pair) for pair in self.matches]
            out["positive_rate"] = self.positive_rate
        else:
            out["hardness"] = (self.hardness or HardnessSpec()).to_dict()
        return out

    @classmethod
    def from_dict(cls, raw: dict, where: str = "task") -> TaskSpec:
        _require(isinstance(raw, dict), f"{where}: 'task' must be a mapping")
        kind = raw.get("kind")
        _require(isinstance(kind, str) and bool(kind),
                 f"{where}: task needs a 'kind'")
        kind = _TASK_ALIASES.get(str(kind).lower(), str(kind).lower())
        _require(kind in _TASK_KEYS,
                 f"{where}: unknown task kind {raw.get('kind')!r}; known: "
                 f"{', '.join(sorted(_TASK_KEYS))} (or ed/di/sm/em)")
        unknown = set(raw) - _TASK_KEYS[kind]
        _require(not unknown,
                 f"{where}: unknown key(s) for {kind}: "
                 f"{', '.join(sorted(unknown))}")
        table = raw.get("table")
        _require(isinstance(table, str) and bool(table),
                 f"{where}: task needs a 'table'")
        spec = {"kind": kind, "table": table}
        if kind == "error_detection":
            targets = raw.get("targets")
            _require(isinstance(targets, (list, tuple)) and bool(targets)
                     and all(isinstance(t, str) for t in targets),
                     f"{where}: ED needs 'targets', a non-empty list of columns")
            spec["targets"] = tuple(targets)  # type: ignore[arg-type]
            spec["error_rate"] = _rate(raw.get("error_rate", 0.3),
                                       "error_rate", where)
            _require(spec["error_rate"] > 0.0,
                     f"{where}: error_rate must be > 0 for an ED schema")
            spec["families"] = _families(
                raw.get("families", {"typo": 1.0}), "families", where)
            spec["distractor_rate"] = _rate(raw.get("distractor_rate", 0.2),
                                            "distractor_rate", where)
        elif kind == "data_imputation":
            target = raw.get("target")
            _require(isinstance(target, str) and bool(target),
                     f"{where}: DI needs a 'target' column")
            spec["target"] = target
            noise_rate = _rate(raw.get("noise_rate", 0.0), "noise_rate", where)
            spec["noise_rate"] = noise_rate
            if noise_rate:
                spec["noise_families"] = _families(
                    raw.get("noise_families",
                            {family: 1.0 for family in OCR_KINDS}),
                    "noise_families", where)
            else:
                _require("noise_families" not in raw,
                         f"{where}: 'noise_families' without a 'noise_rate'")
        elif kind == "schema_matching":
            right = raw.get("right_table")
            _require(isinstance(right, str) and bool(right),
                     f"{where}: SM needs a 'right_table'")
            spec["right_table"] = right
            matches_raw = raw.get("matches")
            _require(isinstance(matches_raw, (list, tuple)) and bool(matches_raw),
                     f"{where}: SM needs 'matches', a non-empty list of "
                     f"[left_column, right_column] pairs")
            matches = []
            for pair in matches_raw:  # type: ignore[union-attr]
                _require(isinstance(pair, (list, tuple)) and len(pair) == 2
                         and all(isinstance(p, str) for p in pair),
                         f"{where}: each match must be a [left, right] pair")
                matches.append((pair[0], pair[1]))
            spec["matches"] = tuple(matches)
            spec["positive_rate"] = _rate(raw.get("positive_rate", 0.5),
                                          "positive_rate", where)
            _require(0.0 < spec["positive_rate"] < 1.0,
                     f"{where}: SM positive_rate must be in (0, 1)")
        else:  # entity matching
            spec["hardness"] = HardnessSpec.from_dict(
                raw.get("hardness", {}), where)
        return cls(**spec)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FactorySchema:
    """A complete factory schema: identity, tables, task declaration."""

    name: str
    tables: tuple[TableSpec, ...]
    task: TaskSpec
    version: int = 1

    def __post_init__(self) -> None:
        _validate_schema(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "tables": [table.to_dict() for table in self.tables],
            "task": self.task.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> FactorySchema:
        _require(isinstance(raw, dict), "schema document must be a mapping")
        unknown = set(raw) - _SCHEMA_KEYS
        _require(not unknown,
                 f"schema: unknown top-level key(s): {', '.join(sorted(unknown))}")
        name = raw.get("name")
        _require(isinstance(name, str) and bool(name),
                 "schema needs a non-empty 'name'")
        version = raw.get("version", 1)
        _require(version == 1,
                 f"schema {name!r}: unsupported version {version!r} "
                 f"(this build reads version 1)")
        tables_raw = raw.get("tables")
        _require(isinstance(tables_raw, list) and bool(tables_raw),
                 f"schema {name!r}: 'tables' must be a non-empty list")
        tables = tuple(
            TableSpec.from_dict(table, f"schema {name!r}: tables")
            for table in tables_raw  # type: ignore[union-attr]
        )
        _require("task" in raw, f"schema {name!r}: missing 'task'")
        task = TaskSpec.from_dict(raw["task"], where=f"schema {name!r}: task")
        return cls(name=name, version=1, tables=tables, task=task)  # type: ignore[arg-type]

    def table(self, name: str) -> TableSpec:
        for table in self.tables:
            if table.name == name:
                return table
        raise ConfigError(f"schema {self.name!r} has no table {name!r}")

    @property
    def fingerprint(self) -> str:
        """Content address of this schema: 16 hex of sha256(canonical JSON)."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()[:16]


def _explicit_values(table: TableSpec, column: ColumnSpec) -> list | None:
    """The finite value domain of a column, when it has one."""
    if column.dist.kind in distributions.VALUE_KINDS:
        return list(column.dist.params["values"])
    if column.dist.kind == "map":
        out = list(column.dist.params["mapping"].values())
        if "default" in column.dist.params:
            out.append(column.dist.params["default"])
        return out
    return None


def _validate_schema(schema: FactorySchema) -> None:
    _require(bool(schema.name), "schema needs a non-empty 'name'")
    seen_tables: set[str] = set()
    for table in schema.tables:
        where = f"schema {schema.name!r}: table {table.name!r}"
        _require(table.name not in seen_tables,
                 f"schema {schema.name!r}: duplicate table {table.name!r}")
        earlier_columns: dict[str, ColumnSpec] = {}
        for column in table.columns:
            cwhere = f"{where}: column {column.name!r}"
            dist = column.dist
            if dist.kind == "ref":
                parent_name = dist.params["table"]
                _require(parent_name != table.name,
                         f"{cwhere}: a ref cannot target its own table")
                _require(parent_name in seen_tables,
                         f"{cwhere}: ref target table {parent_name!r} must be "
                         f"declared before {table.name!r}")
                parent = schema.table(parent_name)
                parent.column(dist.params["column"])  # raises if absent
            if dist.kind == "map":
                source = dist.params["source"]
                _require(source in earlier_columns,
                         f"{cwhere}: map source {source!r} must be an earlier "
                         f"column of the same table")
                source_values = _explicit_values(table, earlier_columns[source])
                if "default" not in dist.params:
                    _require(source_values is not None,
                             f"{cwhere}: map over a non-enumerable source "
                             f"needs a 'default'")
                    uncovered = [
                        v for v in source_values  # type: ignore[union-attr]
                        if str(v) not in dist.params["mapping"]
                    ]
                    _require(not uncovered,
                             f"{cwhere}: mapping misses source value(s) "
                             f"{uncovered!r} and has no 'default'")
                _require(earlier_columns[source].missing_rate == 0.0,
                         f"{cwhere}: map source {source!r} must not have a "
                         f"missing_rate")
            if column.type.is_numeric and dist.kind in ("sequence", "pattern"):
                raise ConfigError(
                    f"{cwhere}: {dist.kind} distributions produce text; "
                    f"declare the column as text/categorical"
                )
            earlier_columns[column.name] = column
        seen_tables.add(table.name)
    _validate_task(schema)


def _validate_task(schema: FactorySchema) -> None:
    task = schema.task
    where = f"schema {schema.name!r}: task"
    table = schema.table(task.table)  # raises if absent
    if task.kind == "error_detection":
        for target in task.targets:
            column = table.column(target)
            _require(column.missing_rate == 0.0,
                     f"{where}: ED target {target!r} must not have a "
                     f"missing_rate — missing cells are DI's problem")
        if "numeric_outlier" in task.families:
            _require(any(table.column(t).type.is_numeric for t in task.targets),
                     f"{where}: family 'numeric_outlier' needs at least one "
                     f"numeric target column")
    elif task.kind == "data_imputation":
        column = table.column(task.target)
        _require(column.missing_rate == 0.0,
                 f"{where}: DI target {task.target!r} must not have a "
                 f"missing_rate — the factory blanks it per instance")
        _require(len(table.columns) >= 2,
                 f"{where}: DI needs context columns besides the target")
    elif task.kind == "schema_matching":
        right = schema.table(task.right_table)
        for left_col, right_col in task.matches:
            table.column(left_col)
            right.column(right_col)
        _require(len(table.columns) * len(right.columns) > len(task.matches),
                 f"{where}: every column pair is a declared match — "
                 f"no negatives can be generated")
    else:  # entity matching
        hardness = task.hardness or HardnessSpec()
        for name in hardness.keep_attributes:
            table.column(name)
        _require(len(table.columns) >= 2,
                 f"{where}: EM needs at least two columns to diverge on")
