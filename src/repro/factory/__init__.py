"""Schema-driven dataset factory: unlimited scenarios beyond the 12 benchmarks.

A YAML (or in-code) schema declares tables, typed columns with realistic
distributions, foreign keys, and a task with error-injection /
match-hardness knobs; the factory turns it into a streaming benchmark
generator whose every row and instance is a pure function of
``(schema fingerprint, size, seed)``.  See ``DESIGN.md`` §15.
"""

from repro.factory.adapter import (
    SchemaGenerator,
    register_schema,
    schema_generator_from_file,
)
from repro.factory.generate import DatasetFactory, TableStream
from repro.factory.instances import InstanceFactory
from repro.factory.model import (
    ColumnSpec,
    Distribution,
    FactorySchema,
    HardnessSpec,
    KNOWN_FAMILIES,
    TableSpec,
    TaskSpec,
)
from repro.factory.ocr import (
    GLYPH_CONFUSIONS,
    OCR_KINDS,
    apply_ocr,
    broken_line,
    garble_glyphs,
    merged_column,
)
from repro.factory.presets import PRESET_NAMES, preset
from repro.factory.spec import dump_schema, load_schema, load_schema_file

__all__ = [
    "ColumnSpec",
    "DatasetFactory",
    "Distribution",
    "FactorySchema",
    "GLYPH_CONFUSIONS",
    "HardnessSpec",
    "InstanceFactory",
    "KNOWN_FAMILIES",
    "OCR_KINDS",
    "PRESET_NAMES",
    "SchemaGenerator",
    "TableSpec",
    "TableStream",
    "TaskSpec",
    "apply_ocr",
    "broken_line",
    "dump_schema",
    "garble_glyphs",
    "load_schema",
    "load_schema_file",
    "merged_column",
    "preset",
    "register_schema",
    "schema_generator_from_file",
]
