"""``SchemaGenerator``: factory schemas behind the ``DatasetGenerator`` API.

The adapter is what lets the rest of the system — pipelines, flows,
sharding, serving, the CLI — consume factory datasets *unchanged*: a
schema becomes a generator with a ``name``, ``task`` and
``default_size``, loadable through ``load_dataset`` like the twelve
hand-written benchmarks.  Two registry-facing details matter:

- ``cache_token`` is the schema fingerprint, so the dataset cache keys
  on schema *content*, not just the registered name — two different
  schemas under the same name (or one schema file edited between loads)
  can never alias (the registry collision fixed in this PR);
- ``iter_instances`` exposes the streaming path: instances arrive one at
  a time, in index order, without a list ever materializing — the
  million-row path ``repro.eval gen`` and streamed shard planning use.
"""

from __future__ import annotations

import random

from repro.data.instances import Instance, Task
from repro.datasets.base import DatasetGenerator
from repro.errors import DatasetError
from repro.factory.generate import DatasetFactory
from repro.factory.instances import InstanceFactory
from repro.factory.model import FactorySchema
from repro.factory.spec import load_schema_file


class SchemaGenerator(DatasetGenerator):
    """A :class:`~repro.factory.model.FactorySchema` as a dataset generator."""

    def __init__(self, schema: FactorySchema, name: str | None = None):
        self.schema = schema
        self.name = name or schema.name
        self.task = Task(schema.task.kind)
        self.default_size = schema.table(schema.task.table).rows
        self.fingerprint = schema.fingerprint
        self.description = (
            f"factory schema {schema.name!r} "
            f"(fingerprint {schema.fingerprint}, task {self.task.short_name})"
        )
        self._active_seed: int | None = None

    @property
    def cache_token(self) -> str:
        """The schema fingerprint — the registry folds it into cache keys."""
        return self.fingerprint

    def generate(self, size: int | None = None, seed: int = 0):
        # The base class owns sizing and few-shot carving; instances
        # themselves are pure functions of (fingerprint, seed, index), so
        # the seed must reach _generate_instances as a value, not only as
        # the base rng's state.
        self._active_seed = seed
        try:
            return super().generate(size=size, seed=seed)
        finally:
            self._active_seed = None

    def _generate_instances(
        self, count: int, rng: random.Random
    ) -> list[Instance]:
        seed = self._active_seed if self._active_seed is not None else 0
        return list(InstanceFactory(self.schema, seed=seed).iter_instances(count))

    # -- streaming --------------------------------------------------------

    def iter_instances(self, count: int, seed: int = 0):
        """Stream ``count`` instances without materializing them.

        This is the raw per-index stream: identical bytes to the total
        ``generate`` draws from (instance ``i`` here *is* instance ``i``
        there) — ``generate`` additionally carves a few-shot pool out of
        its materialized list, which a stream by definition cannot.
        """
        if count <= 0:
            raise DatasetError(f"count must be positive, got {count}")
        return InstanceFactory(self.schema, seed=seed).iter_instances(count)

    def factory(self, seed: int = 0) -> DatasetFactory:
        """The row-level factory (table streams) for this schema."""
        return DatasetFactory(self.schema, seed=seed)


def register_schema(
    schema: FactorySchema, name: str | None = None
) -> SchemaGenerator:
    """Register a factory schema in the dataset registry.

    Returns the generator; ``load_dataset(schema.name)`` works from then
    on.  Distinct schemas may even share a registered name *sequentially*
    (tests re-register): the cache can't alias them because the key
    carries the fingerprint.
    """
    from repro.datasets.registry import register_dataset

    generator = SchemaGenerator(schema, name=name)
    register_dataset(generator)
    return generator


def schema_generator_from_file(path: str) -> SchemaGenerator:
    """A generator for a schema file — the ``schema:<path>`` dataset path."""
    return SchemaGenerator(load_schema_file(path))
