"""Streaming row generation: every row a pure function of its address.

The factory never generates a table front to back.  A row's full address
is ``(schema fingerprint, seed, table name, row index)``; that address is
hashed into a dedicated ``random.Random`` stream, and the row's cells are
sampled from it in column order.  Consequences, all property-tested:

- **random access** — ``stream.row(i)`` is the same bytes whether it is
  the first row asked for or the ten-millionth, so streamed and
  materialized generation are bit-identical by construction;
- **bounded memory** — ``iter_groups`` yields fixed-size row groups and
  retains nothing; a multi-million-row table costs one row group of
  memory plus a bounded foreign-key memo;
- **foreign-key integrity** — a ``ref`` column resolves by generating
  the parent row *at its own address*, so the child sees exactly the
  value the parent table holds at that index, for any generation order.

The LRU memo on parent rows is a pure cache: evicting it changes wall
clock, never bytes.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from typing import Iterator, Mapping

from repro.data.records import CellValue, Record, Table
from repro.errors import ConfigError
from repro.factory.distributions import make_sampler
from repro.factory.model import FactorySchema, TableSpec
from repro.obs.manifest import canonical_json

#: rows per yielded group when streaming (callers can override)
DEFAULT_GROUP_SIZE = 4096

#: parent rows memoized for foreign-key resolution; bounded so child
#: streams over huge parent tables stay within a fixed footprint
_PARENT_MEMO_SIZE = 4096


def _derive_rng(*parts: object) -> random.Random:
    """A dedicated random stream for one address, stable across processes."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


class TableStream:
    """Random-access row generation for one table of one factory."""

    def __init__(self, factory: DatasetFactory, spec: TableSpec):
        self._factory = factory
        self.spec = spec
        self.schema = spec.record_schema()
        self._samplers = [
            (column, make_sampler(column.dist.kind, column.dist.params))
            for column in spec.columns
        ]

    @property
    def rows(self) -> int:
        """The table's declared universe size (not a generation limit)."""
        return self.spec.rows

    def row(self, index: int) -> dict[str, CellValue]:
        """Row ``index`` as a plain dict — the factory's atomic unit."""
        if index < 0:
            raise ConfigError(f"row index must be >= 0, got {index}")
        rng = self._factory.row_rng(self.spec.name, index)
        values: dict[str, CellValue] = {}
        for column, sampler in self._samplers:
            value = sampler(rng, index, values, self._factory.resolve_ref)
            if column.missing_rate and rng.random() < column.missing_rate:
                value = None
            values[column.name] = value
        return values

    def record(self, index: int) -> Record:
        return Record(
            schema=self.schema,
            values=self.row(index),
            record_id=f"{self._factory.schema.name}-{self.spec.name}-{index}",
        )

    def iter_rows(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[dict[str, CellValue]]:
        index = start
        while stop is None or index < stop:
            yield self.row(index)
            index += 1

    def iter_groups(
        self,
        n_rows: int | None = None,
        group_size: int = DEFAULT_GROUP_SIZE,
    ) -> Iterator[list[dict[str, CellValue]]]:
        """Yield ``n_rows`` rows (default: the declared universe) in
        fixed-size groups, holding one group at a time."""
        if group_size < 1:
            raise ConfigError(f"group_size must be >= 1, got {group_size}")
        total = self.rows if n_rows is None else n_rows
        for start in range(0, total, group_size):
            stop = min(start + group_size, total)
            yield [self.row(index) for index in range(start, stop)]

    def materialize(self, n_rows: int | None = None) -> Table:
        """The stream as an in-memory :class:`~repro.data.records.Table`."""
        total = self.rows if n_rows is None else n_rows
        return Table(
            self.schema, [self.record(index) for index in range(total)]
        )

    def digest(self, n_rows: int | None = None) -> str:
        """Content digest over ``n_rows`` rows, computed incrementally.

        Streaming and materialized generation hash identically — this is
        the cheap way to prove a million-row table is bit-stable without
        holding it.
        """
        total = self.rows if n_rows is None else n_rows
        hasher = hashlib.blake2b(digest_size=16)
        for group in self.iter_groups(n_rows=total):
            for row in group:
                hasher.update(canonical_json(row).encode("utf-8"))
                hasher.update(b"\x00")
        return hasher.hexdigest()


class DatasetFactory:
    """All table streams of one ``(schema, seed)`` pair.

    The factory owns the derived random streams and the bounded
    foreign-key memo; streams are cheap views over it.
    """

    def __init__(self, schema: FactorySchema, seed: int = 0):
        self.schema = schema
        self.seed = seed
        self.fingerprint = schema.fingerprint
        self._streams: dict[str, TableStream] = {}
        self._parent_memo: OrderedDict[tuple[str, int], Mapping[str, CellValue]]
        self._parent_memo = OrderedDict()

    def stream(self, table: str | None = None) -> TableStream:
        """The stream for ``table`` (default: the task's table)."""
        name = table if table is not None else self.schema.task.table
        if name not in self._streams:
            self._streams[name] = TableStream(self, self.schema.table(name))
        return self._streams[name]

    def row_rng(self, table: str, index: int) -> random.Random:
        """The dedicated random stream of one row address."""
        return _derive_rng(
            "repro-factory", self.fingerprint, self.seed, table, index
        )

    def derived_rng(self, purpose: str, index: int) -> random.Random:
        """A random stream for non-row work (error injection, pairing),
        disjoint from every row stream by its ``purpose`` tag."""
        return _derive_rng(
            "repro-factory", self.fingerprint, self.seed, purpose, index
        )

    def resolve_ref(self, table: str, column: str, pick) -> CellValue:
        """Resolve a foreign key: pick a parent row, return its cell.

        ``pick(n)`` chooses the parent index from the parent's declared
        universe (skew lives with the distribution); the parent row is
        generated at its own address, so the value is exactly what the
        parent table holds there.
        """
        parent = self.stream(table)
        index = pick(parent.rows)
        key = (table, index)
        if key in self._parent_memo:
            self._parent_memo.move_to_end(key)
            return self._parent_memo[key][column]
        row = parent.row(index)
        self._parent_memo[key] = row
        if len(self._parent_memo) > _PARENT_MEMO_SIZE:
            self._parent_memo.popitem(last=False)
        return row[column]
