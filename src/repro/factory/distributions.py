"""Column value distributions for the dataset factory.

Each column of a factory schema declares a distribution — *what* values
the column holds and *how often*.  This module owns the distribution
vocabulary: parameter validation at schema-parse time (strict, typed
:class:`~repro.errors.ConfigError`) and sampler construction at
generation time.

A sampler is a pure function ``(rng, index, row, resolve) -> value``:

- ``rng`` is the per-row random stream (derived from the schema
  fingerprint, seed, table, and row index — see ``factory/generate.py``);
- ``index`` is the row index (used by ``sequence`` columns);
- ``row`` maps the columns of this row generated *so far* (``map``
  columns derive from an earlier column's value);
- ``resolve`` is ``(table, column, pick) -> value`` for foreign keys:
  the generator supplies the parent table's row universe and calls
  ``pick(n)`` to choose a parent row index, so the *skew* lives here and
  the *row materialization* lives with the generator.

Because samplers close over validated parameters only and draw
exclusively from the passed ``rng``, every column value is a pure
function of ``(schema fingerprint, seed, table, row index)`` — the
streaming contract the whole factory is built on.
"""

from __future__ import annotations

import bisect
import random
import re
from typing import Callable, Mapping

from repro.errors import ConfigError

#: every distribution kind a schema may declare
KNOWN_KINDS = (
    "uniform", "weighted", "zipf", "int", "float",
    "sequence", "pattern", "ref", "map",
)

#: kinds whose value domain is an explicit, finite value list
VALUE_KINDS = ("uniform", "weighted", "zipf")

_PLACEHOLDER_RE = re.compile(r"\{([\w\-]+)\}")

#: sampler signature — see module docstring
Sampler = Callable[
    [random.Random, int, Mapping[str, object], Callable], object
]


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ConfigError(f"{where}: {message}")


def _scalar_list(value: object, where: str, key: str) -> list:
    _require(isinstance(value, (list, tuple)) and len(value) > 0,
             where, f"{key!r} must be a non-empty list")
    for item in value:  # type: ignore[union-attr]
        _require(isinstance(item, (str, int, float)) and not isinstance(item, bool),
                 where, f"{key!r} entries must be strings or numbers, got {item!r}")
    return list(value)  # type: ignore[arg-type]


def validate_params(kind: str, params: Mapping[str, object], where: str) -> dict:
    """Validate and normalize the parameters of one distribution.

    Returns a plain-dict copy suitable for fingerprinting; raises
    :class:`~repro.errors.ConfigError` naming ``where`` on any problem.
    Unknown parameter keys are rejected — a typo in a schema must fail
    parse, not silently fall back to a default.
    """
    if kind not in KNOWN_KINDS:
        raise ConfigError(
            f"{where}: unknown distribution kind {kind!r}; "
            f"known: {', '.join(KNOWN_KINDS)}"
        )
    params = dict(params)
    allowed = {
        "uniform": {"values"},
        "weighted": {"values", "weights"},
        "zipf": {"values", "a"},
        "int": {"low", "high"},
        "float": {"low", "high", "ndigits"},
        "sequence": {"prefix", "start"},
        "pattern": {"pattern", "pools"},
        "ref": {"table", "column", "skew", "a"},
        "map": {"source", "mapping", "default"},
    }[kind]
    unknown = set(params) - allowed
    _require(not unknown, where,
             f"unknown parameter(s) for {kind!r}: {', '.join(sorted(unknown))}")

    out: dict = {}
    if kind in VALUE_KINDS:
        out["values"] = _scalar_list(params.get("values"), where, "values")
    if kind == "weighted":
        weights = params.get("weights")
        _require(isinstance(weights, (list, tuple)), where,
                 "'weights' must be a list")
        _require(len(weights) == len(out["values"]), where,  # type: ignore[arg-type]
                 "'weights' must match 'values' in length")
        for w in weights:  # type: ignore[union-attr]
            _require(isinstance(w, (int, float)) and not isinstance(w, bool)
                     and w > 0, where, f"weights must be positive, got {w!r}")
        out["weights"] = [float(w) for w in weights]  # type: ignore[union-attr]
    if kind == "zipf":
        a = params.get("a", 1.2)
        _require(isinstance(a, (int, float)) and not isinstance(a, bool)
                 and a > 0, where, f"'a' must be a positive number, got {a!r}")
        out["a"] = float(a)
    if kind in ("int", "float"):
        low, high = params.get("low"), params.get("high")
        number = (int,) if kind == "int" else (int, float)
        for key, value in (("low", low), ("high", high)):
            _require(isinstance(value, number) and not isinstance(value, bool),
                     where, f"{key!r} must be a number, got {value!r}")
        _require(low <= high, where,  # type: ignore[operator]
                 f"'low' must be <= 'high' ({low!r} > {high!r})")
        out["low"], out["high"] = low, high
        if kind == "float":
            ndigits = params.get("ndigits", 2)
            _require(isinstance(ndigits, int) and 0 <= ndigits <= 6, where,
                     f"'ndigits' must be an int in [0, 6], got {ndigits!r}")
            out["ndigits"] = ndigits
    if kind == "sequence":
        prefix = params.get("prefix", "id-")
        start = params.get("start", 1)
        _require(isinstance(prefix, str), where, "'prefix' must be a string")
        _require(isinstance(start, int) and not isinstance(start, bool),
                 where, f"'start' must be an int, got {start!r}")
        out["prefix"], out["start"] = prefix, start
    if kind == "pattern":
        pattern = params.get("pattern")
        _require(isinstance(pattern, str) and pattern, where,
                 "'pattern' must be a non-empty string")
        placeholders = _PLACEHOLDER_RE.findall(pattern)  # type: ignore[arg-type]
        _require(bool(placeholders), where,
                 "'pattern' must contain at least one {placeholder}")
        pools = params.get("pools")
        _require(isinstance(pools, dict) and pools, where,
                 "'pools' must be a non-empty mapping")
        clean_pools = {}
        for name, pool in pools.items():  # type: ignore[union-attr]
            clean_pools[str(name)] = _scalar_list(pool, where, f"pools[{name!r}]")
        missing = [p for p in placeholders if p not in clean_pools]
        _require(not missing, where,
                 f"pattern placeholder(s) without a pool: {', '.join(missing)}")
        out["pattern"], out["pools"] = pattern, clean_pools
    if kind == "ref":
        for key in ("table", "column"):
            value = params.get(key)
            _require(isinstance(value, str) and value, where,
                     f"{key!r} must be a non-empty string")
            out[key] = value
        skew = params.get("skew", "uniform")
        _require(skew in ("uniform", "zipf"), where,
                 f"'skew' must be 'uniform' or 'zipf', got {skew!r}")
        out["skew"] = skew
        if skew == "zipf":
            a = params.get("a", 1.5)
            _require(isinstance(a, (int, float)) and not isinstance(a, bool)
                     and a > 1.0, where,
                     f"zipf ref skew needs 'a' > 1, got {a!r}")
            out["a"] = float(a)
    if kind == "map":
        source = params.get("source")
        _require(isinstance(source, str) and source, where,
                 "'source' must be a non-empty string")
        mapping = params.get("mapping")
        _require(isinstance(mapping, dict) and mapping, where,
                 "'mapping' must be a non-empty mapping")
        out["source"] = source
        out["mapping"] = {str(k): v for k, v in mapping.items()}  # type: ignore[union-attr]
        if "default" in params:
            out["default"] = params["default"]
    return out


def _zipf_cdf(n: int, a: float) -> list[float]:
    """Cumulative rank weights for a finite Zipf over ``n`` items."""
    weights = [(rank + 1) ** -a for rank in range(n)]
    total = sum(weights)
    cum: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cum.append(acc)
    cum[-1] = 1.0  # guard float drift at the boundary
    return cum


def bounded_zipf(rng: random.Random, n: int, a: float) -> int:
    """A Zipf(``a``) draw truncated to ``[0, n)``, without O(n) tables.

    Devroye's rejection sampler — the standard trick for skewed
    foreign-key fan-in over parent tables too large to enumerate.
    Requires ``a > 1`` (validated at schema parse).
    """
    if n == 1:
        return 0
    b = 2.0 ** (a - 1.0)
    while True:
        u = 1.0 - rng.random()  # (0, 1]
        v = rng.random()
        x = int(u ** (-1.0 / (a - 1.0)))
        if x < 1 or x > n:
            continue
        t = (1.0 + 1.0 / x) ** (a - 1.0)
        if v * x * (t - 1.0) / (b - 1.0) <= t / b:
            return x - 1


def make_sampler(kind: str, params: Mapping[str, object]) -> Sampler:
    """Build the pure sampler for one validated distribution."""
    if kind == "uniform":
        values = list(params["values"])  # type: ignore[arg-type]
        return lambda rng, index, row, resolve: rng.choice(values)
    if kind == "weighted":
        values = list(params["values"])  # type: ignore[arg-type]
        cum: list[float] = []
        acc = 0.0
        total = sum(params["weights"])  # type: ignore[arg-type]
        for w in params["weights"]:  # type: ignore[union-attr]
            acc += w / total
            cum.append(acc)
        cum[-1] = 1.0
        return lambda rng, index, row, resolve: values[
            bisect.bisect_left(cum, rng.random())
        ]
    if kind == "zipf":
        values = list(params["values"])  # type: ignore[arg-type]
        cum = _zipf_cdf(len(values), float(params["a"]))  # type: ignore[arg-type]
        return lambda rng, index, row, resolve: values[
            bisect.bisect_left(cum, rng.random())
        ]
    if kind == "int":
        low, high = int(params["low"]), int(params["high"])  # type: ignore[arg-type]
        return lambda rng, index, row, resolve: rng.randint(low, high)
    if kind == "float":
        lo, hi = float(params["low"]), float(params["high"])  # type: ignore[arg-type]
        nd = int(params["ndigits"])  # type: ignore[arg-type]
        return lambda rng, index, row, resolve: round(rng.uniform(lo, hi), nd)
    if kind == "sequence":
        prefix, start = str(params["prefix"]), int(params["start"])  # type: ignore[arg-type]
        return lambda rng, index, row, resolve: f"{prefix}{start + index}"
    if kind == "pattern":
        pattern = str(params["pattern"])
        pools = {k: list(v) for k, v in params["pools"].items()}  # type: ignore[union-attr]

        def sample_pattern(rng, index, row, resolve):
            return _PLACEHOLDER_RE.sub(
                lambda m: str(rng.choice(pools[m.group(1)])), pattern
            )

        return sample_pattern
    if kind == "ref":
        table = str(params["table"])
        column = str(params["column"])
        if params["skew"] == "zipf":
            a = float(params["a"])  # type: ignore[arg-type]

            def pick_factory(rng):
                return lambda n: bounded_zipf(rng, n, a)
        else:
            def pick_factory(rng):
                return lambda n: rng.randrange(n)
        return lambda rng, index, row, resolve: resolve(
            table, column, pick_factory(rng)
        )
    if kind == "map":
        source = str(params["source"])
        mapping = dict(params["mapping"])  # type: ignore[arg-type]
        default = params.get("default")

        def sample_map(rng, index, row, resolve):
            key = str(row.get(source))
            if key in mapping:
                return mapping[key]
            if default is not None:
                return default
            raise ConfigError(
                f"map column has no mapping for source value {key!r} "
                f"and no 'default'"
            )

        return sample_map
    raise ConfigError(f"unknown distribution kind {kind!r}")  # pragma: no cover
