"""Built-in factory schemas, the source of truth for ``examples/schemas/``.

Each preset is a plain schema dict run through the same strict
:meth:`~repro.factory.model.FactorySchema.from_dict` path a YAML file
takes.  The checked-in YAML files under ``examples/schemas/`` are dumps
of these presets; ``tests/factory/test_examples.py`` asserts file and
preset agree fingerprint-for-fingerprint, so the runnable examples can
never drift from what the golden cells freeze.

Presets live in code (not YAML) so the conformance layer — golden
capture in particular — works in environments without PyYAML installed.

The value vocabularies are shared with the hand-written benchmarks
(:mod:`repro.datasets.vocabularies`), which matters: the simulated
models' knowledge base covers the same tables, so factory data exercises
the same inference chains (area code -> city, education -> educationnum)
the paper's worked examples rely on.
"""

from __future__ import annotations

from repro.datasets import vocabularies as vocab
from repro.errors import ConfigError
from repro.factory.model import FactorySchema

_BLURBS = (
    "a well balanced craft beer with a smooth finish",
    "brewed in small batches from premium hops and malt",
    "a crisp refreshing ale perfect for any occasion",
    "award winning flavor with notes of citrus and pine",
    "a rich full bodied brew with a creamy head",
)

_INVOICE_CITIES = (
    "new york", "los angeles", "chicago", "houston", "philadelphia",
    "san antonio", "dallas", "austin", "seattle", "denver", "boston",
    "atlanta",
)


def _city_map(fact: str) -> dict[str, str]:
    """city -> one deterministic fact (state, area code, zip prefix)."""
    out: dict[str, str] = {}
    for name in _INVOICE_CITIES:
        city = vocab.CITY_BY_NAME[name]
        if fact == "state":
            out[name] = city.state
        elif fact == "phone":
            out[name] = f"{city.area_codes[0]}-555-0134"
        else:
            out[name] = f"{city.zip_prefix}01"
    return out


def _adult_replica() -> dict:
    education = [name for name, __ in vocab.EDUCATION_LEVELS]
    educationnum = {name: num for name, num in vocab.EDUCATION_LEVELS}
    return {
        "name": "adult_replica",
        "version": 1,
        "tables": [{
            "name": "adult",
            "rows": 10000,
            "columns": [
                {"name": "age", "type": "numeric",
                 "dist": {"kind": "int", "low": 17, "high": 90}},
                {"name": "workclass", "type": "categorical",
                 "dist": {"kind": "weighted",
                          "values": list(vocab.WORKCLASSES),
                          "weights": [60, 10, 5, 4, 8, 6, 1, 1]}},
                {"name": "education", "type": "categorical",
                 "dist": {"kind": "uniform", "values": education}},
                {"name": "educationnum", "type": "numeric",
                 "dist": {"kind": "map", "source": "education",
                          "mapping": educationnum}},
                {"name": "maritalstatus", "type": "categorical",
                 "dist": {"kind": "uniform",
                          "values": list(vocab.MARITAL_STATUSES)}},
                {"name": "occupation", "type": "categorical",
                 "dist": {"kind": "uniform",
                          "values": list(vocab.OCCUPATIONS)}},
                {"name": "relationship", "type": "categorical",
                 "dist": {"kind": "uniform",
                          "values": list(vocab.RELATIONSHIPS)}},
                {"name": "race", "type": "categorical",
                 "dist": {"kind": "uniform", "values": list(vocab.RACES)}},
                {"name": "sex", "type": "categorical",
                 "dist": {"kind": "uniform", "values": list(vocab.SEXES)}},
                {"name": "hoursperweek", "type": "numeric",
                 "dist": {"kind": "weighted",
                          "values": [20, 25, 30, 35, 40, 45, 50, 55, 60],
                          "weights": [1, 1, 1, 1, 3, 1, 1, 1, 1]}},
                {"name": "country", "type": "categorical",
                 "dist": {"kind": "zipf", "values": list(vocab.COUNTRIES),
                          "a": 1.4}},
                {"name": "income", "type": "categorical",
                 "dist": {"kind": "weighted", "values": ["<=50k", ">50k"],
                          "weights": [3, 1]}},
            ],
        }],
        "task": {
            "kind": "error_detection",
            "table": "adult",
            "targets": [
                "age", "workclass", "education", "educationnum",
                "maritalstatus", "occupation", "relationship", "race",
                "sex", "hoursperweek", "country",
            ],
            "error_rate": 0.25,
            "families": {
                "typo": 3.0, "domain_violation": 2.0,
                "numeric_outlier": 2.0, "ocr_garbled_glyphs": 1.0,
            },
            "distractor_rate": 0.3,
        },
    }


def _beer_replica() -> dict:
    return {
        "name": "beer_replica",
        "version": 1,
        "tables": [{
            "name": "beers",
            "rows": 1000,
            "columns": [
                {"name": "beer_name", "type": "text",
                 "dist": {"kind": "pattern",
                          "pattern": "{adjective} {noun} {kind}",
                          "pools": {
                              "adjective": list(vocab.BEER_NAME_ADJECTIVES),
                              "noun": list(vocab.BEER_NAME_NOUNS),
                              "kind": ["ipa", "ale", "stout", "porter",
                                       "lager", "pilsner"],
                          }}},
                {"name": "brew_factory_name", "type": "text",
                 "dist": {"kind": "zipf", "values": list(vocab.BREWERIES),
                          "a": 1.2}},
                {"name": "style", "type": "categorical",
                 "dist": {"kind": "uniform",
                          "values": list(vocab.BEER_STYLES)}},
                {"name": "abv", "type": "text",
                 "dist": {"kind": "pattern", "pattern": "{whole}.{frac}%",
                          "pools": {"whole": [4, 5, 6, 7, 8, 9, 10, 11, 12],
                                    "frac": [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]}}},
                {"name": "description", "type": "text",
                 "dist": {"kind": "uniform", "values": list(_BLURBS)}},
            ],
        }],
        "task": {
            "kind": "entity_matching",
            "table": "beers",
            "hardness": {
                "divergence": 0.35,
                "drop_rate": 0.10,
                "positive_rate": 0.35,
                "hard_negative_rate": 0.5,
                "keep_attributes": ["brew_factory_name", "style"],
            },
        },
    }


def _ocr_invoices() -> dict:
    return {
        "name": "ocr_invoices",
        "version": 1,
        "tables": [{
            "name": "invoices",
            "rows": 2000,
            "columns": [
                {"name": "invoice_id", "type": "text",
                 "dist": {"kind": "sequence", "prefix": "inv-", "start": 1000}},
                {"name": "vendor", "type": "text",
                 "dist": {"kind": "pattern", "pattern": "{name} {suffix}",
                          "pools": {
                              "name": ["meridian", "cascade", "lakeside",
                                       "summit", "pioneer", "redwood",
                                       "harbor", "granite"],
                              "suffix": ["supply co.", "logistics",
                                         "industries", "trading",
                                         "services inc."],
                          }}},
                {"name": "city", "type": "categorical",
                 "dist": {"kind": "uniform",
                          "values": list(_INVOICE_CITIES)}},
                {"name": "phone", "type": "text",
                 "dist": {"kind": "map", "source": "city",
                          "mapping": _city_map("phone")}},
                {"name": "zip", "type": "text",
                 "dist": {"kind": "map", "source": "city",
                          "mapping": _city_map("zip")}},
                {"name": "total", "type": "numeric",
                 "dist": {"kind": "float", "low": 18.0, "high": 960.0,
                          "ndigits": 2}},
            ],
        }],
        "task": {
            "kind": "data_imputation",
            "table": "invoices",
            "target": "city",
            "noise_rate": 0.25,
            "noise_families": {
                "ocr_garbled_glyphs": 2.0,
                "ocr_merged_column": 1.0,
                "ocr_broken_line": 1.0,
            },
        },
    }


def _orders() -> dict:
    return {
        "name": "orders",
        "version": 1,
        "tables": [
            {
                "name": "customers",
                "rows": 200,
                "columns": [
                    {"name": "customer_id", "type": "text",
                     "dist": {"kind": "sequence", "prefix": "cust-"}},
                    {"name": "name", "type": "text",
                     "dist": {"kind": "pattern", "pattern": "{first} {last}",
                              "pools": {
                                  "first": ["ada", "grace", "alan", "edsger",
                                            "barbara", "donald", "tony",
                                            "leslie"],
                                  "last": ["moore", "chen", "patel", "garcia",
                                           "kim", "okafor", "novak",
                                           "haruki"],
                              }}},
                    {"name": "city", "type": "categorical",
                     "dist": {"kind": "uniform",
                              "values": list(_INVOICE_CITIES)}},
                ],
            },
            {
                "name": "orders",
                "rows": 5000,
                "columns": [
                    {"name": "order_id", "type": "text",
                     "dist": {"kind": "sequence", "prefix": "ord-"}},
                    {"name": "customer_id", "type": "text",
                     "dist": {"kind": "ref", "table": "customers",
                              "column": "customer_id", "skew": "zipf",
                              "a": 1.3}},
                    {"name": "product", "type": "categorical",
                     "dist": {"kind": "zipf",
                              "values": ["laptop stand", "usb-c cable",
                                         "mechanical keyboard", "webcam",
                                         "monitor arm", "desk mat",
                                         "trackball", "headset",
                                         "docking station", "microphone"],
                              "a": 1.1}},
                    {"name": "quantity", "type": "numeric",
                     "dist": {"kind": "int", "low": 1, "high": 12}},
                    {"name": "price", "type": "numeric",
                     "dist": {"kind": "float", "low": 4.0, "high": 420.0,
                              "ndigits": 2}},
                    {"name": "status", "type": "categorical",
                     "dist": {"kind": "weighted",
                              "values": ["delivered", "shipped", "pending",
                                         "returned", "cancelled"],
                              "weights": [10, 4, 3, 1, 1]}},
                ],
            },
        ],
        "task": {
            "kind": "error_detection",
            "table": "orders",
            "targets": ["product", "quantity", "price", "status"],
            "error_rate": 0.3,
            "families": {
                "typo": 2.0, "domain_violation": 1.0, "numeric_outlier": 2.0,
                "ocr_garbled_glyphs": 1.0, "ocr_merged_column": 1.0,
                "ocr_broken_line": 1.0,
            },
            "distractor_rate": 0.2,
        },
    }


_PRESET_BUILDERS = {
    "adult_replica": _adult_replica,
    "beer_replica": _beer_replica,
    "ocr_invoices": _ocr_invoices,
    "orders": _orders,
}

#: the preset names, in ``examples/schemas/`` file order
PRESET_NAMES: tuple[str, ...] = tuple(sorted(_PRESET_BUILDERS))


def preset(name: str) -> FactorySchema:
    """A built-in schema by name (see :data:`PRESET_NAMES`)."""
    if name not in _PRESET_BUILDERS:
        raise ConfigError(
            f"unknown preset schema {name!r}; known: {', '.join(PRESET_NAMES)}"
        )
    return FactorySchema.from_dict(_PRESET_BUILDERS[name]())
