"""OCR-style document-noise corruption: the scanned-paper error channel.

The published ED/DI benchmarks model *keyboard* noise (typos, swapped
cells).  Documents that enter a pipeline through OCR carry a different
error family: glyphs confused for look-alikes (``l``/``1``, ``O``/``0``,
``rn``/``m``), neighboring columns merged when the layout engine loses a
cell boundary, and lines broken mid-token where a physical line wrapped.
This module implements those three corruptors with the same contract as
:mod:`repro.datasets.corruption`: deterministic under a caller-provided
``random.Random``, returning a :class:`~repro.datasets.corruption.Corruption`
that records the original next to the corrupted form.

One hard constraint shapes every table here: contextualized prompts
double-quote cell values (``[a: "v"]``), so no corruptor may introduce a
``"`` or a newline — either would change how the *prompt* parses, not how
the *value* reads.  Broken lines are therefore rendered as the hyphenated
wrap artifact OCR itself produces (``micro- soft``), not as a literal
line feed.
"""

from __future__ import annotations

import random

from repro.datasets.corruption import Corruption
from repro.errors import DatasetError

#: glyph confusions observed in real OCR output.  Multi-character keys
#: model segmentation errors (``rn`` read as ``m``).  None of the
#: replacements contain ``"`` or newlines (see module docstring).
GLYPH_CONFUSIONS: tuple[tuple[str, str], ...] = (
    ("rn", "m"),
    ("cl", "d"),
    ("vv", "w"),
    ("ri", "n"),
    ("l", "1"),
    ("1", "l"),
    ("O", "0"),
    ("0", "O"),
    ("o", "0"),
    ("S", "5"),
    ("5", "S"),
    ("B", "8"),
    ("8", "B"),
    ("Z", "2"),
    ("g", "9"),
    ("q", "g"),
    ("e", "c"),
    ("h", "b"),
    ("u", "ii"),
    ("m", "rn"),
    ("w", "vv"),
    ("n", "ri"),
    ("t", "f"),
    ("i", "í"),
)

#: kinds reported by this module, in the ``Corruption.kind`` field
OCR_KINDS = ("ocr_garbled_glyphs", "ocr_merged_column", "ocr_broken_line")


def garble_glyphs(value: str, rng: random.Random, intensity: float = 0.4) -> Corruption:
    """Replace look-alike glyph sequences the way a low-confidence OCR pass does.

    Scans for confusable substrings and rewrites each with probability
    ``intensity``; always rewrites at least one occurrence so the
    corruption is guaranteed to change the value.
    """
    value = str(value)
    if not value:
        raise DatasetError("cannot garble an empty value")
    sites: list[tuple[int, str, str]] = []
    for pattern, replacement in GLYPH_CONFUSIONS:
        start = 0
        while True:
            at = value.find(pattern, start)
            if at < 0:
                break
            sites.append((at, pattern, replacement))
            start = at + 1
    if not sites:
        # Nothing confusable: model a smudge — one character doubled, the
        # other classic segmentation failure of dirty scans.
        at = rng.randrange(len(value))
        corrupted = value[:at] + value[at] + value[at:]
        return Corruption(original=value, corrupted=corrupted,
                          kind="ocr_garbled_glyphs")
    sites.sort()
    picked = [site for site in sites if rng.random() < intensity]
    if not picked:
        picked = [sites[rng.randrange(len(sites))]]
    out: list[str] = []
    cursor = 0
    for at, pattern, replacement in picked:
        if at < cursor:
            continue  # overlaps a site already rewritten
        out.append(value[cursor:at])
        out.append(replacement)
        cursor = at + len(pattern)
    out.append(value[cursor:])
    corrupted = "".join(out)
    if corrupted == value:  # pragma: no cover - defensive; sites always differ
        corrupted = value + value[-1]
    return Corruption(original=value, corrupted=corrupted,
                      kind="ocr_garbled_glyphs")


def merged_column(value: str, neighbor: str, rng: random.Random) -> Corruption:
    """Merge the neighboring cell's text into this one.

    Models a lost column boundary: the layout engine read two cells as
    one, so the value absorbs its right-hand neighbor, joined by the
    whitespace remnant of the dead separator.
    """
    value, neighbor = str(value), str(neighbor)
    if not value:
        raise DatasetError("cannot merge into an empty value")
    if not neighbor:
        raise DatasetError("cannot merge an empty neighbor")
    joiner = rng.choice(("  ", " ", " | ", "   "))
    corrupted = f"{value}{joiner}{neighbor}"
    return Corruption(original=value, corrupted=corrupted,
                      kind="ocr_merged_column")


def broken_line(value: str, rng: random.Random) -> Corruption:
    """Break the value mid-token the way a wrapped physical line does.

    The break is rendered as the hyphen-plus-space artifact OCR emits for
    a hyphenated wrap (``micro- soft``) — never a literal newline, which
    would corrupt the *prompt* rather than the value.
    """
    value = str(value)
    if len(value) < 2:
        raise DatasetError("value too short to break across lines")
    # Break inside the longest token so the artifact is visible mid-word.
    tokens = value.split(" ")
    longest = max(range(len(tokens)), key=lambda i: len(tokens[i]))
    token = tokens[longest]
    if len(token) >= 2:
        at = rng.randrange(1, len(token))
        tokens[longest] = f"{token[:at]}- {token[at:]}"
        corrupted = " ".join(tokens)
    else:
        at = rng.randrange(1, len(value))
        corrupted = f"{value[:at]}- {value[at:]}"
    return Corruption(original=value, corrupted=corrupted,
                      kind="ocr_broken_line")


def apply_ocr(
    kind: str, value: str, rng: random.Random, neighbor: str | None = None
) -> Corruption:
    """Apply one OCR corruptor by kind name (see :data:`OCR_KINDS`).

    ``merged_column`` needs the neighboring cell's text; when it is
    missing or empty the corruptor degrades to glyph garbling, which is
    what OCR output looks like when the adjacent cell was blank anyway.
    """
    if kind == "ocr_garbled_glyphs":
        return garble_glyphs(value, rng)
    if kind == "ocr_broken_line":
        if len(str(value)) < 2:
            return garble_glyphs(value, rng)
        return broken_line(value, rng)
    if kind == "ocr_merged_column":
        if neighbor is None or not str(neighbor):
            return garble_glyphs(value, rng)
        return merged_column(value, str(neighbor), rng)
    raise DatasetError(f"unknown OCR corruption kind {kind!r}")
