"""The paper's experiments: Tables 1-3 and the two in-text studies.

Every public function regenerates one published artifact and returns both
the measured numbers and the paper's, so callers (benchmarks, the CLI,
EXPERIMENTS.md) can print them side by side.

Sizes are scaled by a ``scale`` factor (1.0 = published benchmark sizes);
benchmarks use small scales to stay fast, the CLI defaults to a moderate
one.  The simulated substrate is deterministic per (scale, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    DittoMatcher,
    HoloCleanDetector,
    HoloDetectDetector,
    IMPImputer,
    MagellanMatcher,
    SMATMatcher,
)
from repro.core.config import ABLATION_ROWS, PipelineConfig, ablation_config
from repro.core.feature_selection import FeatureSelection
from repro.data.instances import PreprocessingDataset, Task, ground_truth_labels
from repro.datasets import load_dataset
from repro.datasets.beer import BEER_SELECTED_FEATURES
from repro.errors import EvaluationError
from repro.eval.harness import evaluate_pipeline
from repro.eval.metrics import score_predictions
from repro.llm.simulated import SimulatedLLM

#: the paper's Table 1 order of datasets
TABLE1_DATASETS: tuple[str, ...] = (
    "adult", "hospital", "buy", "restaurant", "synthea",
    "amazon_google", "beer", "dblp_acm", "dblp_scholar",
    "fodors_zagat", "itunes_amazon", "walmart_amazon",
)

#: published Table 1 (accuracy for DI, F1 elsewhere); None = N/A
PAPER_TABLE1: dict[str, dict[str, float | None]] = {
    "holoclean": {"adult": 54.5, "hospital": 51.4},
    "holodetect": {"adult": 99.1, "hospital": 94.4},
    "imp": {"buy": 96.5, "restaurant": 77.2},
    "smat": {"synthea": 38.5},
    "magellan": {"amazon_google": 49.1, "beer": 78.8, "dblp_acm": 98.4,
                 "dblp_scholar": 92.3, "fodors_zagat": 100.0,
                 "itunes_amazon": 91.2, "walmart_amazon": 71.9},
    "ditto": {"amazon_google": 75.6, "beer": 94.4, "dblp_acm": 99.0,
              "dblp_scholar": 95.6, "fodors_zagat": 100.0,
              "itunes_amazon": 97.1, "walmart_amazon": 86.8},
    "gpt-3": {"adult": 99.1, "hospital": 97.8, "buy": 98.5,
              "restaurant": 88.4, "synthea": 45.2, "amazon_google": 63.5,
              "beer": 100.0, "dblp_acm": 96.6, "dblp_scholar": 83.8,
              "fodors_zagat": 100.0, "itunes_amazon": 98.2,
              "walmart_amazon": 87.0},
    "gpt-3.5": {"adult": 92.0, "hospital": 90.7, "buy": 98.5,
                "restaurant": 94.2, "synthea": 57.1, "amazon_google": 66.5,
                "beer": 96.3, "dblp_acm": 94.9, "dblp_scholar": 76.1,
                "fodors_zagat": 100.0, "itunes_amazon": 96.4,
                "walmart_amazon": 86.2},
    "gpt-4": {"adult": 92.0, "hospital": 90.7, "buy": 100.0,
              "restaurant": 97.7, "synthea": 66.7, "amazon_google": 74.2,
              "beer": 100.0, "dblp_acm": 97.4, "dblp_scholar": 91.9,
              "fodors_zagat": 100.0, "itunes_amazon": 100.0,
              "walmart_amazon": 90.3},
    "vicuna-13b": {"beer": 54.6, "fodors_zagat": 48.5,
                   "itunes_amazon": 54.6},
}

#: published Table 2 (ablation, GPT-3.5) — columns follow TABLE2_DATASETS
TABLE2_DATASETS: tuple[str, ...] = (
    "adult", "hospital", "buy", "restaurant", "synthea",
    "amazon_google", "beer", "dblp_acm", "dblp_scholar",
    "fodors_zagat", "itunes_amazon", "walmart_amazon",
)

PAPER_TABLE2: dict[str, dict[str, float]] = {
    "ZS-T": {"adult": 25.9, "hospital": 18.4, "buy": 86.2,
             "restaurant": 81.4, "synthea": 18.2, "amazon_google": 54.7,
             "beer": 83.3, "dblp_acm": 94.7, "dblp_scholar": 58.5,
             "fodors_zagat": 92.7, "itunes_amazon": 80.0,
             "walmart_amazon": 81.5},
    "ZS-T+B": {"adult": 37.8, "hospital": 19.1, "buy": 83.1,
               "restaurant": 81.4, "synthea": 17.4, "amazon_google": 60.1,
               "beer": 78.3, "dblp_acm": 94.9, "dblp_scholar": 59.6,
               "fodors_zagat": 92.7, "itunes_amazon": 83.9,
               "walmart_amazon": 81.6},
    "ZS-T+B+ZS-R": {"adult": 46.3, "hospital": 26.2, "buy": 89.2,
                    "restaurant": 65.1, "synthea": 5.9,
                    "amazon_google": 45.8, "beer": 50.0, "dblp_acm": 72.6,
                    "dblp_scholar": 47.6, "fodors_zagat": 92.7,
                    "itunes_amazon": 82.0, "walmart_amazon": 60.7},
    "ZS-T+FS": {"adult": 59.3, "hospital": 59.4, "buy": 96.9,
                "restaurant": 90.7, "synthea": 57.1, "amazon_google": 66.3,
                "beer": 96.3, "dblp_acm": 97.0, "dblp_scholar": 74.6,
                "fodors_zagat": 100.0, "itunes_amazon": 96.4,
                "walmart_amazon": 85.6},
    "ZS-T+FS+B": {"adult": 58.1, "hospital": 56.1, "buy": 96.9,
                  "restaurant": 86.2, "synthea": 53.3,
                  "amazon_google": 66.5, "beer": 96.3, "dblp_acm": 96.2,
                  "dblp_scholar": 76.1, "fodors_zagat": 97.8,
                  "itunes_amazon": 94.7, "walmart_amazon": 86.2},
    "ZS-T+FS+B+ZS-R": {"adult": 92.0, "hospital": 90.7, "buy": 98.5,
                       "restaurant": 94.2, "synthea": 61.5,
                       "amazon_google": 60.1, "beer": 92.3,
                       "dblp_acm": 95.7, "dblp_scholar": 60.0,
                       "fodors_zagat": 97.8, "itunes_amazon": 96.4,
                       "walmart_amazon": 84.0},
}

#: published Table 3 (Adult ED, GPT-3.5, no few-shot): batch size ->
#: (F1 %, tokens M, cost $, time hours)
PAPER_TABLE3: dict[int, tuple[float, float, float, float]] = {
    1: (44.0, 4.07, 8.14, 4.76),
    2: (45.9, 2.38, 4.75, 2.70),
    4: (45.1, 1.87, 3.74, 2.06),
    8: (45.0, 1.61, 3.21, 1.82),
    15: (46.3, 1.49, 2.99, 1.60),
}

#: in-text §4.2: Beer EM, GPT-4 zero-shot, before/after feature selection
PAPER_FEATURE_SELECTION: tuple[float, float] = (74.1, 90.3)
#: in-text §4.2: Amazon-Google EM, GPT-3.5 zero-shot, random vs cluster
PAPER_CLUSTER_BATCHING: tuple[float, float] = (45.8, 50.6)


def scaled_size(name: str, scale: float) -> int | None:
    """Scaled instance count for one dataset (None = published size)."""
    if scale >= 1.0:
        return None
    from repro.datasets import dataset_info

    size = max(60, int(dataset_info(name).default_size * scale))
    return min(size, dataset_info(name).default_size)


@dataclass
class Cell:
    """One measured table cell paired with the published number.

    ``measured`` is a fraction in [0, 1] (or None for N/A); ``paper`` is
    the published percentage as printed in the paper (or None for N/A).
    """

    measured: float | None
    paper: float | None

    @property
    def measured_pct(self) -> str:
        return "N/A" if self.measured is None else f"{self.measured * 100:.1f}"

    @property
    def paper_pct(self) -> str:
        return "N/A" if self.paper is None else f"{self.paper:.1f}"

    def __str__(self) -> str:
        return f"{self.measured_pct} ({self.paper_pct})"


# -- Table 1 -----------------------------------------------------------------


def _train_split(name: str, scale: float, seed: int) -> PreprocessingDataset:
    """A disjoint labeled split baselines are trained on.

    The published benchmarks come with train/valid/test splits; we generate
    the training side from the same distribution with an offset seed.
    """
    size = scaled_size(name, scale)
    from repro.datasets import dataset_info

    train_size = size if size is not None else min(
        600, dataset_info(name).default_size
    )
    return load_dataset(name, size=max(train_size, 120), seed=seed + 1000)


def _run_baseline(
    method: str, dataset: PreprocessingDataset, train: PreprocessingDataset
) -> float | None:
    """Fit-and-score one classical baseline; None when not applicable."""
    labels = ground_truth_labels(dataset.instances)
    task = dataset.task
    if method == "holoclean" and task is Task.ERROR_DETECTION:
        model = HoloCleanDetector().fit(dataset.instances)
        predictions = model.predict(dataset.instances)
    elif method == "holodetect" and task is Task.ERROR_DETECTION:
        labeled = list(train.fewshot_pool) + list(train.instances[:48])
        model = HoloDetectDetector().fit(dataset.instances, labeled)
        predictions = model.predict(dataset.instances)
    elif method == "imp" and task is Task.DATA_IMPUTATION:
        model = IMPImputer().fit(
            list(train.instances) + list(train.fewshot_pool)
        )
        predictions = model.predict(dataset.instances)
    elif method == "smat" and task is Task.SCHEMA_MATCHING:
        model = SMATMatcher().fit(train.instances)
        predictions = model.predict(dataset.instances)
    elif method == "magellan" and task is Task.ENTITY_MATCHING:
        model = MagellanMatcher().fit(train.instances)
        predictions = model.predict(dataset.instances)
    elif method == "ditto" and task is Task.ENTITY_MATCHING:
        model = DittoMatcher().fit(train.instances)
        predictions = model.predict(dataset.instances)
    else:
        return None
    return score_predictions(task, predictions, labels)


#: Table 1 method rows, in paper order
TABLE1_METHODS: tuple[str, ...] = (
    "holoclean", "holodetect", "imp", "smat", "magellan", "ditto",
    "gpt-3", "gpt-3.5", "gpt-4", "vicuna-13b",
)

_LLM_METHODS = frozenset({"gpt-3", "gpt-3.5", "gpt-4", "vicuna-13b"})


def run_table1_cell(
    method: str, dataset_name: str, scale: float = 0.2, seed: int = 0
) -> Cell:
    """One (method, dataset) cell of Table 1."""
    if method not in TABLE1_METHODS:
        raise EvaluationError(f"unknown Table 1 method {method!r}")
    dataset = load_dataset(dataset_name, size=scaled_size(dataset_name, scale),
                           seed=seed)
    paper = PAPER_TABLE1.get(method, {}).get(dataset_name)
    if method in _LLM_METHODS:
        config = PipelineConfig(model=method, seed=seed)
        run = evaluate_pipeline(SimulatedLLM(method, seed=seed), config, dataset)
        return Cell(measured=run.score, paper=paper)
    train = _train_split(dataset_name, scale, seed)
    measured = _run_baseline(method, dataset, train)
    return Cell(measured=measured, paper=paper)


def run_table1(
    scale: float = 0.2,
    seed: int = 0,
    methods: tuple[str, ...] = TABLE1_METHODS,
    datasets: tuple[str, ...] = TABLE1_DATASETS,
) -> dict[str, dict[str, Cell]]:
    """The full main-comparison grid: method -> dataset -> cell."""
    return {
        method: {
            name: run_table1_cell(method, name, scale=scale, seed=seed)
            for name in datasets
        }
        for method in methods
    }


# -- Table 2 -----------------------------------------------------------------


def run_table2_cell(
    row: str, dataset_name: str, scale: float = 0.2, seed: int = 0
) -> Cell:
    """One (ablation row, dataset) cell of Table 2 (GPT-3.5)."""
    dataset = load_dataset(dataset_name, size=scaled_size(dataset_name, scale),
                           seed=seed)
    config = ablation_config(row, model="gpt-3.5", seed=seed)
    run = evaluate_pipeline(SimulatedLLM("gpt-3.5", seed=seed), config, dataset)
    paper = PAPER_TABLE2.get(row, {}).get(dataset_name)
    return Cell(measured=run.score, paper=paper)


def run_table2(
    scale: float = 0.2,
    seed: int = 0,
    datasets: tuple[str, ...] = TABLE2_DATASETS,
) -> dict[str, dict[str, Cell]]:
    """The full ablation grid: row label -> dataset -> cell."""
    return {
        row: {
            name: run_table2_cell(row, name, scale=scale, seed=seed)
            for name in datasets
        }
        for row, __ in ABLATION_ROWS
    }


# -- Table 3 -----------------------------------------------------------------


@dataclass
class BatchSizeResult:
    """One Table 3 row: cost/quality at a batch size."""

    batch_size: int
    f1: float | None
    tokens_m: float
    cost_usd: float
    hours: float
    paper: tuple[float, float, float, float] | None = None


TABLE3_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 15)


def run_table3(
    scale: float = 0.1,
    seed: int = 0,
    batch_sizes: tuple[int, ...] = TABLE3_BATCH_SIZES,
) -> list[BatchSizeResult]:
    """Batch-size sweep on Adult ED, GPT-3.5, no few-shot (Table 3).

    Token/cost/time columns scale linearly with the instance count, so a
    scaled run reproduces the *relative* savings exactly; the absolute
    published numbers correspond to ``scale=1.0`` (10k instances).
    """
    dataset = load_dataset("adult", size=scaled_size("adult", scale), seed=seed)
    results = []
    for batch_size in batch_sizes:
        config = PipelineConfig(
            model="gpt-3.5", fewshot=0, batch_size=batch_size,
            reasoning=True, seed=seed,
        )
        run = evaluate_pipeline(
            SimulatedLLM("gpt-3.5", seed=seed), config, dataset
        )
        results.append(
            BatchSizeResult(
                batch_size=batch_size,
                f1=run.score,
                tokens_m=run.total_tokens / 1e6,
                cost_usd=run.cost_usd,
                hours=run.hours,
                paper=PAPER_TABLE3.get(batch_size),
            )
        )
    return results


# -- In-text experiments -------------------------------------------------------


@dataclass
class ComparisonResult:
    """A before/after pair for one in-text experiment."""

    label_a: str
    score_a: float | None
    label_b: str
    score_b: float | None
    paper: tuple[float, float] | None = None


def run_feature_selection(scale: float = 1.0, seed: int = 0) -> ComparisonResult:
    """Beer EM with GPT-4, zero-shot, before vs after feature selection.

    The paper reports 74.1 -> 90.3 F1: dropping the noisy description
    column removes the matches it fabricates.
    """
    dataset = load_dataset("beer", size=scaled_size("beer", scale), seed=seed)
    base = PipelineConfig(model="gpt-4", fewshot=0, seed=seed)
    selected = PipelineConfig(
        model="gpt-4", fewshot=0, seed=seed,
        feature_selection=FeatureSelection(keep=BEER_SELECTED_FEATURES),
    )
    run_a = evaluate_pipeline(SimulatedLLM("gpt-4", seed=seed), base, dataset)
    run_b = evaluate_pipeline(SimulatedLLM("gpt-4", seed=seed), selected, dataset)
    return ComparisonResult(
        label_a="all attributes", score_a=run_a.score,
        label_b="selected features", score_b=run_b.score,
        paper=PAPER_FEATURE_SELECTION,
    )


def run_cluster_batching(scale: float = 0.2, seed: int = 0) -> ComparisonResult:
    """Amazon-Google EM with GPT-3.5, zero-shot, random vs cluster batching.

    The paper reports 45.8 -> 50.6 F1: clustering over embeddings yields
    homogeneous batches the model answers more consistently.
    """
    dataset = load_dataset(
        "amazon_google", size=scaled_size("amazon_google", scale), seed=seed
    )
    random_config = PipelineConfig(
        model="gpt-3.5", fewshot=0, reasoning=True, batching="random", seed=seed
    )
    cluster_config = PipelineConfig(
        model="gpt-3.5", fewshot=0, reasoning=True, batching="cluster", seed=seed
    )
    run_a = evaluate_pipeline(
        SimulatedLLM("gpt-3.5", seed=seed), random_config, dataset
    )
    run_b = evaluate_pipeline(
        SimulatedLLM("gpt-3.5", seed=seed), cluster_config, dataset
    )
    return ComparisonResult(
        label_a="random batching", score_a=run_a.score,
        label_b="cluster batching", score_b=run_b.score,
        paper=PAPER_CLUSTER_BATCHING,
    )
