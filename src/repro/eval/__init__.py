"""Evaluation: metrics, experiment harness, and the paper's tables."""

from repro.eval.metrics import (
    BinaryMetrics,
    accuracy,
    confusion_counts,
    f1_score,
    precision_recall_f1,
    score_predictions,
)
from repro.eval.analysis import (
    disagreements,
    error_cases,
    per_group_metrics,
)
from repro.eval.harness import EvaluationRun, evaluate_pipeline
from repro.eval.reporting import render_execution_report, render_table

__all__ = [
    "render_table",
    "render_execution_report",
    "accuracy",
    "f1_score",
    "precision_recall_f1",
    "confusion_counts",
    "BinaryMetrics",
    "score_predictions",
    "EvaluationRun",
    "evaluate_pipeline",
    "per_group_metrics",
    "disagreements",
    "error_cases",
]
