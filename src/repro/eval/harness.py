"""Experiment harness: run a configured pipeline on a dataset and score it.

Adds the paper's bookkeeping on top of the pipeline: the headline metric,
the token/cost/time columns, and the "N/A" rule — a model that cannot
return parseable answers for a meaningful fraction of a dataset is marked
not applicable, as Vicuna is for most datasets in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.executor import ExecutionReport
from repro.core.pipeline import PipelineResult, Preprocessor
from repro.data.instances import PreprocessingDataset, ground_truth_labels
from repro.errors import ContextWindowExceededError, EvaluationError
from repro.eval.metrics import score_answered
from repro.llm.base import LLMClient
from repro.llm.profiles import get_profile
from repro.obs import RunManifest, build_manifest

#: fallback-answer fraction beyond which a result is reported "N/A"
NOT_APPLICABLE_FALLBACK_RATE = 0.30


@dataclass(frozen=True)
class EvaluationRun:
    """One scored (model, config, dataset) cell.

    ``hours`` is the modeled makespan over the configured worker lanes;
    ``hours_sequential`` is the single-lane estimate of the same calls
    (identical at ``concurrency=1``).  ``execution`` carries the full
    per-lane scheduling report when the run produced one.
    """

    dataset: str
    model: str
    metric_name: str
    score: float | None          # None means N/A
    n_instances: int
    total_tokens: int
    cost_usd: float
    hours: float
    n_requests: int
    fallback_rate: float
    #: fraction of instances the run answered; < 1.0 only when the
    #: degradation ladder quarantined instances instead of guessing
    coverage: float = 1.0
    n_quarantined: int = 0
    hours_sequential: float = 0.0
    execution: ExecutionReport | None = None
    #: the run's provenance record, present when the config enabled
    #: observability
    manifest: RunManifest | None = field(default=None, compare=False)
    #: the underlying pipeline result (predictions, raw replies, recorded
    #: exchanges), present when ``evaluate_pipeline(..., keep_raw=True)``
    result: "PipelineResult | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def speedup(self) -> float:
        """Sequential hours over makespan hours (1.0 when nothing overlaps)."""
        if self.hours <= 0:
            return 1.0
        return self.hours_sequential / self.hours

    @property
    def is_applicable(self) -> bool:
        return self.score is not None

    @property
    def score_pct(self) -> str:
        """The paper's cell format: percentage with one decimal, or N/A."""
        if self.score is None:
            return "N/A"
        return f"{self.score * 100:.1f}"


def evaluate_pipeline(
    client: LLMClient,
    config: PipelineConfig,
    dataset: PreprocessingDataset,
    manifest_path: str | Path | None = None,
    keep_raw: bool = False,
    checkpoint=None,
    executor_config=None,
) -> EvaluationRun:
    """Run ``config`` against ``dataset`` through ``client`` and score it.

    With ``config.observability`` on, the returned run carries a
    :class:`~repro.obs.manifest.RunManifest` (config, model profile,
    dataset, metrics snapshot, execution report, full trace); pass
    ``manifest_path`` to also write it to disk as one JSON artifact.
    ``keep_raw`` retains the raw replies and recorded prompt/reply
    exchanges on ``run.result`` (used by the golden conformance layer).
    ``checkpoint`` (a :class:`~repro.runtime.checkpoint.RunCheckpoint`)
    journals the run batch by batch and resumes an interrupted run from
    its journal, bit-identically.  ``executor_config`` (an
    :class:`~repro.core.executor.ExecutorConfig`) overrides the executor's
    fault-tolerance knobs — the way to turn on resilience mode; when its
    ``resilience`` is set, the manifest additionally surfaces per-backend
    health and breaker transition counts.

    Quarantined instances (``config.degradation == "ladder"``) are
    excluded from the metric rather than guessed at; ``run.coverage``
    reports the answered fraction next to the score.
    """
    if manifest_path is not None and not config.observability:
        raise EvaluationError(
            "manifest_path requires PipelineConfig(observability=True) — "
            "there is nothing to write otherwise"
        )
    profile = get_profile(config.model)
    preprocessor = Preprocessor(client, config, executor_config)
    try:
        result: PipelineResult = preprocessor.run(
            dataset, keep_raw=keep_raw, checkpoint=checkpoint
        )
    except ContextWindowExceededError:
        # The prompt cannot even be posed to this model: N/A.
        return _not_applicable(dataset, config, profile.name)
    labels = ground_truth_labels(dataset.instances)
    fallback_rate = result.n_fallbacks / max(len(dataset.instances), 1)
    answered_score, n_answered = score_answered(
        dataset.task, result.predictions, labels
    )
    score: float | None
    if fallback_rate > NOT_APPLICABLE_FALLBACK_RATE or n_answered == 0:
        score = None
    else:
        score = answered_score
    run = EvaluationRun(
        dataset=dataset.name,
        model=profile.name,
        metric_name=dataset.task.metric_name,
        score=score,
        n_instances=len(dataset.instances),
        total_tokens=result.usage.total_tokens,
        cost_usd=profile.cost_usd(
            result.usage.prompt_tokens, result.usage.completion_tokens
        ),
        hours=result.estimated_hours,
        n_requests=result.n_requests,
        fallback_rate=fallback_rate,
        coverage=result.coverage,
        n_quarantined=result.n_quarantined,
        hours_sequential=(
            result.execution.sequential_s / 3600.0
            if result.execution is not None
            else result.estimated_hours
        ),
        execution=result.execution,
    )
    if result.observation is not None:
        manifest = _manifest_for(
            config, profile, dataset, run, result,
            client=client, executor_config=executor_config,
        )
        if manifest_path is not None:
            manifest.write(manifest_path)
        run = replace(run, manifest=manifest)
    if keep_raw:
        run = replace(run, result=result)
    return run


def _manifest_for(
    config: PipelineConfig,
    profile,
    dataset: PreprocessingDataset,
    run: EvaluationRun,
    result: PipelineResult,
    client: LLMClient | None = None,
    executor_config=None,
) -> RunManifest:
    """Assemble the provenance manifest of one observed evaluation run."""
    evaluation = {
        "dataset": run.dataset,
        "model": run.model,
        "metric_name": run.metric_name,
        "score": run.score,
        "n_instances": run.n_instances,
        "total_tokens": run.total_tokens,
        "cost_usd": run.cost_usd,
        "hours": run.hours,
        "hours_sequential": run.hours_sequential,
        "speedup": run.speedup,
        "n_requests": run.n_requests,
        "fallback_rate": run.fallback_rate,
        "coverage": run.coverage,
        "n_quarantined": run.n_quarantined,
    }
    if executor_config is not None and executor_config.resilience is not None:
        # Resilience mode only: the conditional keys keep non-resilient
        # manifests byte-identical to their historical form.
        if run.execution is not None:
            evaluation["breaker_transitions"] = dict(
                run.execution.breaker_transitions
            )
        health = getattr(client, "health_payload", None)
        if callable(health):
            evaluation["backend_health"] = health()
    return build_manifest(
        config=config,
        model_profile=profile,
        dataset_name=dataset.name,
        task=dataset.task,
        n_instances=len(dataset.instances),
        evaluation=evaluation,
        metrics_snapshot=result.observation.snapshot(),
        execution=result.execution,
        spans=result.observation.tracer.spans,
    )


def _not_applicable(
    dataset: PreprocessingDataset, config: PipelineConfig, model: str
) -> EvaluationRun:
    return EvaluationRun(
        dataset=dataset.name,
        model=model,
        metric_name=dataset.task.metric_name,
        score=None,
        n_instances=len(dataset.instances),
        total_tokens=0,
        cost_usd=0.0,
        hours=0.0,
        n_requests=0,
        fallback_rate=1.0,
    )
