"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.eval table1 [--scale 0.2] [--seed 0]
    python -m repro.eval table2 [--scale 0.2]
    python -m repro.eval table3 [--scale 0.1]
    python -m repro.eval feature-selection
    python -m repro.eval cluster-batching
    python -m repro.eval all [--scale 0.1]
    python -m repro.eval run --dataset beer [--model gpt-3.5]
                             [--manifest out.json] [--chrome out.trace.json]
                             [--journal run.journal | --resume run.journal]
                             [--degradation off|ladder]
                             [--workers N] [--shards S] [--resilience]
    python -m repro.eval resilience-bench [--out BENCH_resilience.json]
                                          [--size 360] [--concurrency 4]
    python -m repro.eval shard-bench [--out BENCH_shards.json]
                                     [--size 240] [--decode-n 1000]
    python -m repro.eval trace manifest.json [--chrome out.trace.json]
    python -m repro.eval golden [--update] [--cell NAME] [--store DIR]
    python -m repro.eval serve-bench [--requests 200000] [--tenants 3]
                                     [--out BENCH_serving.json]
    python -m repro.eval fuzz [--cases 200] [--seed 0]
    python -m repro.eval gen SCHEMA [--table T] [--rows N] [--seed 0]
                             [--group-size 4096] [--out rows.jsonl]
    python -m repro.eval chaos [--cell NAME] [--site SITE] [--workdir DIR]
    python -m repro.eval flow SPEC.yaml [--describe] [--workdir DIR]
                             [--resume] [--manifest OUT] [--concurrency N]
    python -m repro.eval flow --reference [--bench BENCH_flow.json]

Every cell prints as ``measured (paper)`` so the reproduction gap is
visible inline.  ``--scale 1.0`` runs the published dataset sizes.
``run`` performs one observed evaluation and writes its manifest;
``--journal`` makes the run crash-safe (one fsync'd record per batch)
and ``--resume`` continues an interrupted run from its journal,
bit-identically.  ``trace`` renders a previously written manifest (and
can convert its span trace to the Chrome ``chrome://tracing`` format).
``golden`` verifies (or, with ``--update``, re-records) the golden
conformance snapshots; ``fuzz`` runs the deterministic reply fuzzer;
``chaos`` runs the crash→resume determinism matrix.  All three exit
non-zero on drift/violations.  ``flow`` runs (or ``--describe``s) a
declarative prep flow — a YAML stage DAG, or the shipped reference flow
with ``--reference`` — with per-stage checkpointing under ``--workdir``
and bit-identical ``--resume``.  ``gen`` streams rows from a factory
schema (file or preset) without materializing the table and prints their
content digest; ``run --dataset schema:<path>`` evaluates the pipeline
over such a schema directly.  ``run --resilience`` routes the run through
a scripted backend brownout behind the failover/hedging/AIMD stack and
prints the adaptive accounting; ``resilience-bench`` measures what that
stack buys (quarantine avoidance, tail latency) and writes
``BENCH_resilience.json``; ``chaos --resilience`` runs the crash→resume
matrix through degraded backends.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.eval import experiments
from repro.eval.reporting import render_table


def _print_grid(
    title: str,
    grid: dict[str, dict[str, experiments.Cell]],
    datasets: tuple[str, ...],
) -> None:
    rows = []
    for method, cells in grid.items():
        rows.append([method] + [str(cells[name]) for name in datasets])
    print(render_table(title, ["method"] + list(datasets), rows))
    print()


def _cmd_table1(args: argparse.Namespace) -> None:
    grid = experiments.run_table1(scale=args.scale, seed=args.seed)
    _print_grid(
        "Table 1 — comparison with baselines, measured (paper)",
        grid,
        experiments.TABLE1_DATASETS,
    )


def _cmd_table2(args: argparse.Namespace) -> None:
    grid = experiments.run_table2(scale=args.scale, seed=args.seed)
    _print_grid(
        "Table 2 — prompt-component ablation with GPT-3.5, measured (paper)",
        grid,
        experiments.TABLE2_DATASETS,
    )


def _cmd_table3(args: argparse.Namespace) -> None:
    results = experiments.run_table3(scale=args.scale, seed=args.seed)
    rows = []
    for result in results:
        paper = result.paper or (None, None, None, None)
        f1 = "N/A" if result.f1 is None else f"{result.f1 * 100:.1f}"
        rows.append([
            str(result.batch_size),
            f"{f1} ({paper[0]})",
            f"{result.tokens_m:.3f} ({paper[1]})",
            f"{result.cost_usd:.2f} ({paper[2]})",
            f"{result.hours:.2f} ({paper[3]})",
        ])
    print(render_table(
        f"Table 3 — batch size on Adult ED, GPT-3.5, no few-shot "
        f"(scale={args.scale}; paper numbers are for scale=1.0)",
        ["batch", "F1 % (paper)", "tokens M (paper)", "cost $ (paper)",
         "time h (paper)"],
        rows,
    ))
    print()


def _cmd_feature_selection(args: argparse.Namespace) -> None:
    result = experiments.run_feature_selection(seed=args.seed)
    paper = result.paper or (None, None)
    print("Feature selection — Beer EM, GPT-4, zero-shot (Section 4.2)")
    score_a = "N/A" if result.score_a is None else f"{result.score_a * 100:.1f}"
    score_b = "N/A" if result.score_b is None else f"{result.score_b * 100:.1f}"
    print(f"  {result.label_a}: {score_a} (paper {paper[0]})")
    print(f"  {result.label_b}: {score_b} (paper {paper[1]})")
    print()


def _cmd_cluster_batching(args: argparse.Namespace) -> None:
    result = experiments.run_cluster_batching(scale=args.scale, seed=args.seed)
    paper = result.paper or (None, None)
    print("Cluster batching — Amazon-Google EM, GPT-3.5, zero-shot (Section 4.2)")
    score_a = "N/A" if result.score_a is None else f"{result.score_a * 100:.1f}"
    score_b = "N/A" if result.score_b is None else f"{result.score_b * 100:.1f}"
    print(f"  {result.label_a}: {score_a} (paper {paper[0]})")
    print(f"  {result.label_b}: {score_b} (paper {paper[1]})")
    print()


def _cmd_run_sharded(args: argparse.Namespace) -> int:
    """The scale-out path of ``run``: shard the dataset, fan out workers.

    ``--journal`` names a *directory* here (one ``shard-NNNN.journal``
    per shard); re-running with the same directory resumes.  The merged
    result is bit-identical at any ``--workers`` count.
    """
    from repro import PipelineConfig, load_dataset
    from repro.data.instances import ground_truth_labels
    from repro.errors import ShardError
    from repro.eval.metrics import score_answered
    from repro.eval.reporting import format_score_with_coverage
    from repro.llm.backend import SimulatedBackend
    from repro.llm.profiles import get_profile
    from repro.runtime import JournalError
    from repro.shard import run_sharded

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    config = PipelineConfig(
        model=args.model,
        seed=args.seed,
        concurrency=args.concurrency,
        observability=True,
        degradation=args.degradation,
    )
    backend = SimulatedBackend(model=args.model, seed=args.seed)
    workdir = args.resume or args.journal
    try:
        run = run_sharded(
            backend, config, dataset,
            n_shards=args.shards,
            workers=args.workers,
            workdir=workdir,
        )
    except (ShardError, JournalError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    merged = run.merged
    labels = ground_truth_labels(dataset.instances)
    score, n_scored = score_answered(
        dataset.task, merged.predictions, labels
    )
    cost = get_profile(args.model).cost_usd(
        merged.usage["prompt_tokens"], merged.usage["completion_tokens"]
    )
    score_text = format_score_with_coverage(score, merged.coverage)
    total_tokens = (
        merged.usage["prompt_tokens"] + merged.usage["completion_tokens"]
    )
    print(
        f"{args.dataset} / {args.model}: {dataset.task.metric_name} "
        f"{score_text}, {total_tokens} tokens, ${cost:.2f}, "
        f"{merged.estimated_seconds / 3600.0:.3f}h"
    )
    print(
        f"sharded: {run.plan.n_shards} shard(s) over {run.workers} "
        f"worker(s); parallel makespan {merged.estimated_seconds:.1f}s vs "
        f"{merged.sequential_seconds:.1f}s sequential"
    )
    if merged.n_quarantined:
        print(
            f"quarantined: {merged.n_quarantined}/{merged.n_instances} "
            f"instance(s) left unanswered"
        )
    if workdir:
        print(f"shard journals under {workdir}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """One observed evaluation run; optionally writes its manifest."""
    from pathlib import Path

    if args.workers > 1 or args.shards is not None:
        if args.resilience:
            print(
                "error: --resilience drives the single-process path; "
                "drop --workers/--shards",
                file=sys.stderr,
            )
            return 2
        return _cmd_run_sharded(args)

    from repro import PipelineConfig, SimulatedLLM, load_dataset
    from repro.eval.harness import evaluate_pipeline
    from repro.eval.reporting import (
        format_score_with_coverage,
        render_execution_report,
    )
    from repro.obs import (
        render_metrics_summary,
        render_trace_summary,
        spans_from_json,
        trace_to_chrome,
    )

    checkpoint = None
    journal_path = args.resume or args.journal
    if args.resume and not Path(args.resume).exists():
        print(f"error: no journal to resume at {args.resume}", file=sys.stderr)
        return 2
    from repro.runtime import JournalError

    if journal_path:
        from repro.runtime import RunCheckpoint

        checkpoint = RunCheckpoint(journal_path)
    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    config = PipelineConfig(
        model=args.model,
        seed=args.seed,
        concurrency=args.concurrency,
        observability=True,
        degradation=args.degradation,
    )
    client = SimulatedLLM(args.model, seed=args.seed)
    executor_config = None
    if args.resilience:
        # Demo stack: the primary suffers a scripted brownout while a
        # healthy secondary stands by behind the failover router; the
        # executor runs with the adaptive (AIMD + hedging) config.
        from repro.core.executor import ExecutorConfig
        from repro.llm.faults import DegradedClient
        from repro.resilience import (
            FailoverClient,
            ResilienceConfig,
            brownout_plan,
        )

        client = FailoverClient(
            [
                ("primary", 0, DegradedClient(
                    client, brownout_plan(seed=args.seed),
                    backend_name="primary",
                )),
                ("secondary", 1, SimulatedLLM(args.model, seed=args.seed + 1)),
            ],
            ResilienceConfig(),
        )
        executor_config = ExecutorConfig(resilience=ResilienceConfig())
    try:
        run = evaluate_pipeline(
            client, config, dataset,
            manifest_path=args.manifest,
            checkpoint=checkpoint,
            executor_config=executor_config,
        )
    except JournalError as error:  # mismatched or damaged journal
        print(f"error: {error}", file=sys.stderr)
        return 2
    score_text = format_score_with_coverage(run.score, run.coverage)
    print(
        f"{args.dataset} / {args.model}: {run.metric_name} {score_text}, "
        f"{run.total_tokens} tokens, ${run.cost_usd:.2f}, {run.hours:.3f}h"
    )
    if run.n_quarantined:
        print(
            f"quarantined: {run.n_quarantined}/{run.n_instances} "
            f"instance(s) left unanswered (coverage "
            f"{run.coverage * 100:.1f}%)"
        )
    if journal_path:
        print(f"journal at {journal_path}")
    if args.resilience:
        router = client.health_payload()["router"]
        breakers = (
            dict(run.execution.breaker_transitions)
            if run.execution is not None else {}
        )
        print(
            f"resilience: {router['n_failovers']} failover(s), "
            f"{router['n_hedge_wins']}/{router['n_hedges']} hedge win(s), "
            f"{router['n_exhausted']} exhausted call(s); breaker "
            f"transitions {breakers}"
        )
        for backend in client.health_payload()["backends"]:
            print(
                f"  backend {backend['name']}: circuit {backend['state']}, "
                f"error rate {backend['error_rate']:.3f}"
            )
    if run.execution is not None:
        print(render_execution_report(run.execution))
    print(render_trace_summary(spans_from_json(run.manifest.trace)))
    print(render_metrics_summary(run.manifest.metrics))
    if args.manifest:
        print(f"manifest written to {args.manifest}")
    if args.chrome:
        spans = spans_from_json(run.manifest.trace)
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(trace_to_chrome(spans), handle)
        print(f"chrome trace written to {args.chrome}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the crash→resume determinism matrix (the CI chaos job)."""
    from repro.runtime import CRASH_SITES

    if args.resilience:
        from repro.resilience import (
            default_resilience_chaos_cells as default_chaos_cells,
            run_resilience_matrix as run_crash_matrix,
        )
    else:
        from repro.runtime import default_chaos_cells, run_crash_matrix

    cells = default_chaos_cells()
    if args.cell:
        wanted = set(args.cell)
        known = {cell.name for cell in cells}
        unknown = wanted - known
        if unknown:
            print(
                f"error: unknown chaos cell(s) {sorted(unknown)}; "
                f"known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        cells = tuple(cell for cell in cells if cell.name in wanted)
    sites = tuple(args.site) if args.site else CRASH_SITES
    unknown_sites = set(sites) - set(CRASH_SITES)
    if unknown_sites:
        print(
            f"error: unknown crash site(s) {sorted(unknown_sites)}; "
            f"known: {list(CRASH_SITES)}",
            file=sys.stderr,
        )
        return 2
    trials = run_crash_matrix(
        cells=cells, sites=sites, workdir=args.workdir,
        artifact=args.artifact,
    )
    for trial in trials:
        print(trial.render())
    failed = [trial for trial in trials if not trial.ok]
    print(
        f"chaos: {len(trials) - len(failed)}/{len(trials)} trial(s) "
        f"resumed bit-identically"
    )
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace) -> None:
    """Render a previously written run manifest."""
    from repro.obs import (
        RunManifest,
        render_metrics_summary,
        render_trace_summary,
        spans_from_json,
        trace_to_chrome,
    )

    manifest = RunManifest.load(args.manifest)
    evaluation = manifest.evaluation
    score = evaluation.get("score")
    score_text = "N/A" if score is None else f"{score * 100:.1f}"
    print(
        f"Manifest v{manifest.version} — "
        f"{manifest.dataset.get('name')} / {evaluation.get('model')}: "
        f"{evaluation.get('metric_name')} {score_text}, "
        f"{evaluation.get('total_tokens')} tokens, "
        f"{evaluation.get('hours', 0.0):.3f}h "
        f"(speedup {evaluation.get('speedup', 1.0):.2f}x)"
    )
    spans = spans_from_json(manifest.trace)
    print(render_trace_summary(spans))
    print(render_metrics_summary(manifest.metrics))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(trace_to_chrome(spans), handle)
        print(f"chrome trace written to {args.chrome}")


def _cmd_golden(args: argparse.Namespace) -> int:
    """Verify or re-record the golden conformance snapshots."""
    from repro.testing import (
        ALL_GOLDEN_CELLS,
        GoldenStore,
        capture_snapshot,
        cell_by_name,
        render_diffs,
        write_diff_artifact,
    )

    store = GoldenStore(args.store)
    cells = (
        [cell_by_name(name) for name in args.cell]
        if args.cell else list(ALL_GOLDEN_CELLS)
    )
    drifted = 0
    for cell in cells:
        payload = capture_snapshot(cell)
        if args.update:
            path = store.save(cell.name, payload)
            print(f"golden {cell.name}: recorded -> {path}")
            continue
        diffs = store.verify(cell.name, payload)
        report = render_diffs(cell.name, diffs)
        print(report)
        if diffs:
            drifted += 1
            write_diff_artifact(report, args.diff_artifact)
    if drifted:
        print(f"{drifted}/{len(cells)} snapshot(s) drifted")
        return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Run the multi-tenant serving benchmark; write BENCH_serving.json."""
    from repro.serving import run_serve_bench

    payload = run_serve_bench(
        out_path=args.out,
        n_requests=args.requests,
        dataset_name=args.dataset,
        dataset_size=args.size,
        n_tenants=args.tenants,
        seed=args.seed,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait,
        coalesce=args.coalesce,
        model=args.model,
        baseline_requests=args.baseline_requests,
    )
    coalesced = payload["coalesced"]
    print(
        f"serve-bench: {coalesced['n_served']}/{payload['config']['n_requests']} "
        f"served over {payload['config']['n_tenants']} tenant(s), "
        f"{coalesced['n_batches']} coalesced batch(es)"
    )
    print(
        f"p50 {payload['p50_latency_s']:.3f}s · p99 {payload['p99_latency_s']:.3f}s · "
        f"{payload['throughput_rps']:.1f} req/s · "
        f"coalesce rate {payload['coalesce_rate']:.3f} · "
        f"cache hit rate {payload['cache_hit_rate']:.3f}"
    )
    print(
        f"token cost per request: {payload['token_reduction']:.1f}x lower "
        f"than uncoalesced"
    )
    print(f"report written to {args.out}")
    return 0


def _cmd_resilience_bench(args: argparse.Namespace) -> int:
    """Run the three-arm resilience benchmark; write BENCH_resilience.json."""
    from repro.resilience import render_bench, run_resilience_bench

    payload = run_resilience_bench(
        out_path=args.out,
        dataset_name=args.dataset,
        size=args.size,
        seed=args.seed,
        concurrency=args.concurrency,
        model=args.model,
    )
    print(render_bench(payload))
    print(f"report written to {args.out}")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    """Run, resume, or describe a declarative prep flow."""
    from pathlib import Path

    from repro.core.config import PipelineConfig
    from repro.errors import ConfigError
    from repro.flow import (
        FlowEngine,
        load_flow_spec,
        reference_spec,
        run_flow_bench,
    )
    from repro.llm.simulated import SimulatedLLM
    from repro.obs.manifest import canonical_json
    from repro.runtime import JournalError

    if args.bench is not None:
        payload = run_flow_bench(
            out_path=args.bench, concurrency=args.concurrency
        )
        totals = payload["end_to_end"]
        print(
            f"flow-bench: {payload['flow']} — "
            f"{totals['n_requests']} request(s), "
            f"{totals['prompt_tokens'] + totals['completion_tokens']} "
            f"tokens, {totals['estimated_seconds']:.2f}s simulated"
        )
        print(f"report written to {args.bench}")
        return 0
    try:
        if args.reference:
            spec = reference_spec()
        elif args.spec is not None:
            spec = load_flow_spec(
                Path(args.spec).read_text(encoding="utf-8")
            )
        else:
            print(
                "error: provide a flow spec path or --reference",
                file=sys.stderr,
            )
            return 2
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot read {args.spec}: {error}", file=sys.stderr)
        return 2
    if args.describe:
        print(spec.describe())
        return 0
    if args.resume:
        if args.workdir is None:
            print(
                "error: --resume needs --workdir (the ledger lives there)",
                file=sys.stderr,
            )
            return 2
        ledger_path = Path(args.workdir) / "flow.journal"
        if not ledger_path.exists():
            print(
                f"error: no flow ledger to resume at {ledger_path}",
                file=sys.stderr,
            )
            return 2
    try:
        overrides = dict(spec.config)
        overrides["concurrency"] = args.concurrency
        config = PipelineConfig(**overrides)
        if args.workers > 1:
            # Parallel stages require hermetic per-stage clients; the
            # backend builds one in each worker process.
            from repro.llm.backend import SimulatedBackend

            engine = FlowEngine(
                None, config, workdir=args.workdir,
                backend=SimulatedBackend(model=config.model, seed=args.seed),
                workers=args.workers,
            )
        else:
            client = SimulatedLLM(config.model, seed=args.seed)
            engine = FlowEngine(client, config, workdir=args.workdir)
        tables, __ = spec.build_inputs()
        result = engine.run(spec.graph, tables)
    except (ConfigError, JournalError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"flow {spec.name}: {len(result.order)} stage(s)")
    for name in result.order:
        stage = result.stages[name]
        usage = stage.report.usage
        origin = "resumed from ledger" if stage.resumed else "ran"
        note = (
            f", {len(stage.quarantine)} quarantined"
            if stage.quarantine else ""
        )
        print(
            f"  {name} ({stage.kind}): {origin}, "
            f"{stage.report.n_requests} request(s), "
            f"{usage.prompt_tokens + usage.completion_tokens} tokens{note}"
        )
    totals = result.report
    print(
        f"end to end: {totals.n_requests} request(s), "
        f"{totals.usage.prompt_tokens + totals.usage.completion_tokens} "
        f"tokens, {totals.estimated_seconds:.2f}s simulated"
    )
    if args.workdir is not None:
        print(f"ledger at {Path(args.workdir) / 'flow.journal'}")
    if args.manifest:
        Path(args.manifest).write_text(
            canonical_json(result.manifest_payload()), encoding="utf-8"
        )
        print(f"manifest written to {args.manifest}")
    return 0


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    """Measure the shard scaling curve and the batch-decode speedup."""
    from repro.shard.bench import render_bench, run_shard_bench

    payload = run_shard_bench(
        out=args.out,
        size=args.size,
        n_shards=args.shards,
        worker_counts=tuple(args.workers),
        decode_n=args.decode_n,
        dataset=args.dataset,
        model=args.model,
        seed=args.seed,
    )
    print(render_bench(payload))
    print(f"report written to {args.out}")
    identical = (
        payload["scaling"]["identical"] and payload["decode"]["identical"]
    )
    if not identical:
        print(
            "error: sharded/vectorized results diverged from the reference",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    """Stream rows from a factory schema, row-group by row-group.

    ``SCHEMA`` is a schema file path or a shipped preset name.  The rows
    are generated and (optionally) written without ever materializing
    the table; the printed digest is :meth:`TableStream.digest`, so two
    runs — or a streamed and a materialized run — can be compared by one
    hex string.
    """
    import hashlib

    from repro.errors import ConfigError, DatasetError
    from repro.factory import DatasetFactory, preset, load_schema_file
    from repro.factory.presets import PRESET_NAMES
    from repro.obs.manifest import canonical_json

    try:
        if args.schema in PRESET_NAMES:
            schema = preset(args.schema)
        else:
            schema = load_schema_file(args.schema)
        factory = DatasetFactory(schema, seed=args.seed)
        stream = factory.stream(args.table)
        n_rows = args.rows if args.rows is not None else stream.rows
        if n_rows < 0:
            raise ConfigError(f"--rows must be >= 0, got {n_rows}")
        hasher = hashlib.blake2b(digest_size=16)
        out = open(args.out, "w", encoding="utf-8") if args.out else None
        try:
            for group in stream.iter_groups(
                n_rows=n_rows, group_size=args.group_size
            ):
                for row in group:
                    # digest over the same canonical framing as
                    # TableStream.digest; output as compact JSON lines
                    hasher.update(canonical_json(row).encode("utf-8"))
                    hasher.update(b"\x00")
                    if out is not None:
                        out.write(
                            json.dumps(row, sort_keys=True,
                                       ensure_ascii=False) + "\n"
                        )
        finally:
            if out is not None:
                out.close()
    except (ConfigError, DatasetError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"{schema.name} [{schema.fingerprint}] table {stream.spec.name}: "
        f"{n_rows} row(s), seed {args.seed}, digest {hasher.hexdigest()}"
    )
    if args.out:
        print(f"rows written to {args.out}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the deterministic reply fuzzer and report invariant violations."""
    from repro.testing import run_fuzz

    report = run_fuzz(n_cases=args.cases, seed=args.seed)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_all(args: argparse.Namespace) -> None:
    _cmd_table1(args)
    _cmd_table2(args)
    _cmd_table3(args)
    _cmd_feature_selection(args)
    _cmd_cluster_batching(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the tables of 'LLMs as Data Preprocessors'.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=float, default=0.2,
                        help="dataset size scale (1.0 = published sizes)")
    common.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("table1", _cmd_table1),
        ("table2", _cmd_table2),
        ("table3", _cmd_table3),
        ("feature-selection", _cmd_feature_selection),
        ("cluster-batching", _cmd_cluster_batching),
        ("all", _cmd_all),
    ):
        command = sub.add_parser(name, parents=[common])
        command.set_defaults(handler=handler)
    run_cmd = sub.add_parser(
        "run", help="one observed evaluation run (writes a manifest)"
    )
    run_cmd.add_argument("--dataset", required=True,
                         help="a registered dataset name, or "
                              "schema:<path> for a factory schema file")
    run_cmd.add_argument("--model", default="gpt-3.5")
    run_cmd.add_argument("--size", type=int, default=None,
                         help="instance count (default: the dataset's)")
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument("--concurrency", type=int, default=1)
    run_cmd.add_argument("--manifest", default=None,
                         help="write the run manifest JSON here")
    run_cmd.add_argument("--chrome", default=None,
                         help="write a chrome://tracing JSON here")
    run_cmd.add_argument("--journal", default=None, metavar="PATH",
                         help="journal the run to PATH (crash-safe; one "
                              "fsync'd record per completed batch)")
    run_cmd.add_argument("--resume", default=None, metavar="PATH",
                         help="resume an interrupted run from its journal "
                              "(must exist; refuses a journal from a "
                              "different configuration)")
    run_cmd.add_argument("--degradation", default="off",
                         choices=("off", "ladder"),
                         help="failure handling: 'off' fills safe fallback "
                              "answers (historical), 'ladder' bisects and "
                              "quarantines instead of guessing")
    run_cmd.add_argument("--workers", type=int, default=1,
                         help="worker processes for the sharded path "
                              "(default 1: single-process, bit-identical "
                              "to the historical behaviour)")
    run_cmd.add_argument("--shards", type=int, default=None,
                         help="shard count for the sharded path (default: "
                              "auto-sized from the dataset; setting this "
                              "opts into sharding even at --workers 1)")
    run_cmd.add_argument("--resilience", action="store_true",
                         help="route the run through a scripted backend "
                              "brownout behind the failover/hedging/AIMD "
                              "stack and print the adaptive accounting")
    run_cmd.set_defaults(handler=_cmd_run)
    trace_cmd = sub.add_parser(
        "trace", help="render a run manifest written by `run`"
    )
    trace_cmd.add_argument("manifest", help="path to a manifest JSON")
    trace_cmd.add_argument("--chrome", default=None,
                           help="write a chrome://tracing JSON here")
    trace_cmd.set_defaults(handler=_cmd_trace)
    golden_cmd = sub.add_parser(
        "golden", help="verify (or --update) the golden conformance snapshots"
    )
    golden_cmd.add_argument("--update", action="store_true",
                            help="re-record instead of verifying")
    golden_cmd.add_argument("--cell", action="append", default=None,
                            metavar="NAME",
                            help="limit to one cell (repeatable)")
    golden_cmd.add_argument("--store", default=None,
                            help="snapshot directory "
                                 "(default: tests/golden/snapshots)")
    golden_cmd.add_argument("--diff-artifact", default=None,
                            help="where to write the drift report "
                                 "(default: $REPRO_GOLDEN_DIFF_PATH or "
                                 "GOLDEN_DIFF.txt)")
    golden_cmd.set_defaults(handler=_cmd_golden)
    serve_cmd = sub.add_parser(
        "serve-bench",
        help="replay a synthetic multi-tenant trace through the serving "
             "layer and write BENCH_serving.json",
    )
    serve_cmd.add_argument("--out", default="BENCH_serving.json",
                           help="where to write the benchmark report")
    serve_cmd.add_argument("--requests", type=int, default=200_000,
                           help="total requests across all tenants")
    serve_cmd.add_argument("--dataset", default="adult")
    serve_cmd.add_argument("--size", type=int, default=200,
                           help="instance population the trace samples from")
    serve_cmd.add_argument("--tenants", type=int, default=3)
    serve_cmd.add_argument("--seed", type=int, default=0)
    serve_cmd.add_argument("--concurrency", type=int, default=4)
    serve_cmd.add_argument("--max-batch", type=int, default=8)
    serve_cmd.add_argument("--max-wait", type=float, default=2.0,
                           help="coalescer max wait (virtual seconds)")
    serve_cmd.add_argument("--coalesce", default="window",
                           choices=("eager", "window"))
    serve_cmd.add_argument("--model", default="gpt-3.5")
    serve_cmd.add_argument("--baseline-requests", type=int, default=2000,
                           help="trace prefix replayed uncoalesced for the "
                                "token-reduction baseline")
    serve_cmd.set_defaults(handler=_cmd_serve_bench)
    fuzz_cmd = sub.add_parser(
        "fuzz", help="run the deterministic reply fuzzer"
    )
    fuzz_cmd.add_argument("--cases", type=int, default=200)
    fuzz_cmd.add_argument("--seed", type=int, default=0)
    fuzz_cmd.set_defaults(handler=_cmd_fuzz)
    gen_cmd = sub.add_parser(
        "gen",
        help="stream rows from a factory schema (file or preset name) "
             "and print the content digest",
    )
    gen_cmd.add_argument("schema",
                         help="schema file path, or a preset name "
                              "(adult_replica, beer_replica, ocr_invoices, "
                              "orders)")
    gen_cmd.add_argument("--table", default=None,
                         help="table to stream (default: the task's table)")
    gen_cmd.add_argument("--rows", type=int, default=None,
                         help="row count (default: the table's declared "
                              "universe)")
    gen_cmd.add_argument("--seed", type=int, default=0)
    gen_cmd.add_argument("--group-size", type=int, default=4096,
                         help="rows held in memory at a time")
    gen_cmd.add_argument("--out", default=None, metavar="PATH",
                         help="write rows as JSON lines to PATH "
                              "(default: digest only, nothing written)")
    gen_cmd.set_defaults(handler=_cmd_gen)
    chaos_cmd = sub.add_parser(
        "chaos",
        help="crash the pipeline at every injection site and verify "
             "resume is bit-identical",
    )
    chaos_cmd.add_argument("--cell", action="append", default=None,
                           metavar="NAME",
                           help="limit to one matrix cell (repeatable)")
    chaos_cmd.add_argument("--site", action="append", default=None,
                           metavar="SITE",
                           help="limit to one crash site (repeatable): "
                                "mid_batch, pre_journal, mid_journal")
    chaos_cmd.add_argument("--workdir", default=".chaos",
                           help="where journals are written (default .chaos)")
    chaos_cmd.add_argument("--artifact", default=None,
                           help="where to write the drift report "
                                "(default: $REPRO_CHAOS_DIFF_PATH or "
                                "CHAOS_DIFF.txt)")
    chaos_cmd.add_argument("--resilience", action="store_true",
                           help="run the matrix through scripted-degraded "
                                "backends behind the failover stack "
                                "(brownout and blackout scenarios)")
    chaos_cmd.set_defaults(handler=_cmd_chaos)
    resilience_bench_cmd = sub.add_parser(
        "resilience-bench",
        help="measure what the adaptive stack buys under a scripted "
             "brownout+blackout; writes BENCH_resilience.json",
    )
    resilience_bench_cmd.add_argument("--out", default="BENCH_resilience.json",
                                      help="where to write the report")
    resilience_bench_cmd.add_argument("--dataset", default="adult")
    resilience_bench_cmd.add_argument("--size", type=int, default=360)
    resilience_bench_cmd.add_argument("--seed", type=int, default=0)
    resilience_bench_cmd.add_argument("--concurrency", type=int, default=4)
    resilience_bench_cmd.add_argument("--model", default="gpt-3.5")
    resilience_bench_cmd.set_defaults(handler=_cmd_resilience_bench)
    flow_cmd = sub.add_parser(
        "flow",
        help="run, resume, or describe a declarative prep flow "
             "(a YAML stage DAG composing the four tasks)",
    )
    flow_cmd.add_argument("spec", nargs="?", default=None,
                          help="path to a flow spec YAML")
    flow_cmd.add_argument("--reference", action="store_true",
                          help="use the shipped reference flow "
                               "(detect → impute → align → match on Beer)")
    flow_cmd.add_argument("--describe", action="store_true",
                          help="print the parsed stage plan and exit")
    flow_cmd.add_argument("--workdir", default=None, metavar="DIR",
                          help="enable durability: flow ledger plus "
                               "per-stage journals under DIR")
    flow_cmd.add_argument("--resume", action="store_true",
                          help="continue an interrupted run from the "
                               "ledger in --workdir (must exist; refuses "
                               "a ledger from a different flow)")
    flow_cmd.add_argument("--manifest", default=None, metavar="OUT",
                          help="write the provenance manifest JSON here")
    flow_cmd.add_argument("--concurrency", type=int, default=1)
    flow_cmd.add_argument("--seed", type=int, default=0)
    flow_cmd.add_argument("--workers", type=int, default=1,
                          help="worker processes for independent stages "
                               "(default 1; >1 runs each stage with a "
                               "hermetic per-stage client)")
    flow_cmd.add_argument("--bench", default=None, metavar="OUT",
                          help="benchmark the reference flow and write "
                               "per-stage + end-to-end numbers to OUT")
    flow_cmd.set_defaults(handler=_cmd_flow)
    shard_bench_cmd = sub.add_parser(
        "shard-bench",
        help="measure the worker scaling curve and the vectorized "
             "batch-decode speedup; writes BENCH_shards.json",
    )
    shard_bench_cmd.add_argument("--out", default="BENCH_shards.json",
                                 help="where to write the benchmark report")
    shard_bench_cmd.add_argument("--size", type=int, default=240,
                                 help="instances in the scaling run")
    shard_bench_cmd.add_argument("--shards", type=int, default=8)
    shard_bench_cmd.add_argument("--workers", type=int, nargs="+",
                                 default=[1, 2, 4, 8],
                                 help="worker counts to sweep")
    shard_bench_cmd.add_argument("--decode-n", type=int, default=1000,
                                 help="requests in the decode microbench")
    shard_bench_cmd.add_argument("--dataset", default="adult")
    shard_bench_cmd.add_argument("--model", default="gpt-3.5")
    shard_bench_cmd.add_argument("--seed", type=int, default=0)
    shard_bench_cmd.set_defaults(handler=_cmd_shard_bench)
    args = parser.parse_args(argv)
    return args.handler(args) or 0


if __name__ == "__main__":
    sys.exit(main())
