"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.eval table1 [--scale 0.2] [--seed 0]
    python -m repro.eval table2 [--scale 0.2]
    python -m repro.eval table3 [--scale 0.1]
    python -m repro.eval feature-selection
    python -m repro.eval cluster-batching
    python -m repro.eval all [--scale 0.1]

Every cell prints as ``measured (paper)`` so the reproduction gap is
visible inline.  ``--scale 1.0`` runs the published dataset sizes.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval import experiments
from repro.eval.reporting import render_table


def _print_grid(
    title: str,
    grid: dict[str, dict[str, experiments.Cell]],
    datasets: tuple[str, ...],
) -> None:
    rows = []
    for method, cells in grid.items():
        rows.append([method] + [str(cells[name]) for name in datasets])
    print(render_table(title, ["method"] + list(datasets), rows))
    print()


def _cmd_table1(args: argparse.Namespace) -> None:
    grid = experiments.run_table1(scale=args.scale, seed=args.seed)
    _print_grid(
        "Table 1 — comparison with baselines, measured (paper)",
        grid,
        experiments.TABLE1_DATASETS,
    )


def _cmd_table2(args: argparse.Namespace) -> None:
    grid = experiments.run_table2(scale=args.scale, seed=args.seed)
    _print_grid(
        "Table 2 — prompt-component ablation with GPT-3.5, measured (paper)",
        grid,
        experiments.TABLE2_DATASETS,
    )


def _cmd_table3(args: argparse.Namespace) -> None:
    results = experiments.run_table3(scale=args.scale, seed=args.seed)
    rows = []
    for result in results:
        paper = result.paper or (None, None, None, None)
        f1 = "N/A" if result.f1 is None else f"{result.f1 * 100:.1f}"
        rows.append([
            str(result.batch_size),
            f"{f1} ({paper[0]})",
            f"{result.tokens_m:.3f} ({paper[1]})",
            f"{result.cost_usd:.2f} ({paper[2]})",
            f"{result.hours:.2f} ({paper[3]})",
        ])
    print(render_table(
        f"Table 3 — batch size on Adult ED, GPT-3.5, no few-shot "
        f"(scale={args.scale}; paper numbers are for scale=1.0)",
        ["batch", "F1 % (paper)", "tokens M (paper)", "cost $ (paper)",
         "time h (paper)"],
        rows,
    ))
    print()


def _cmd_feature_selection(args: argparse.Namespace) -> None:
    result = experiments.run_feature_selection(seed=args.seed)
    paper = result.paper or (None, None)
    print("Feature selection — Beer EM, GPT-4, zero-shot (Section 4.2)")
    score_a = "N/A" if result.score_a is None else f"{result.score_a * 100:.1f}"
    score_b = "N/A" if result.score_b is None else f"{result.score_b * 100:.1f}"
    print(f"  {result.label_a}: {score_a} (paper {paper[0]})")
    print(f"  {result.label_b}: {score_b} (paper {paper[1]})")
    print()


def _cmd_cluster_batching(args: argparse.Namespace) -> None:
    result = experiments.run_cluster_batching(scale=args.scale, seed=args.seed)
    paper = result.paper or (None, None)
    print("Cluster batching — Amazon-Google EM, GPT-3.5, zero-shot (Section 4.2)")
    score_a = "N/A" if result.score_a is None else f"{result.score_a * 100:.1f}"
    score_b = "N/A" if result.score_b is None else f"{result.score_b * 100:.1f}"
    print(f"  {result.label_a}: {score_a} (paper {paper[0]})")
    print(f"  {result.label_b}: {score_b} (paper {paper[1]})")
    print()


def _cmd_all(args: argparse.Namespace) -> None:
    _cmd_table1(args)
    _cmd_table2(args)
    _cmd_table3(args)
    _cmd_feature_selection(args)
    _cmd_cluster_batching(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the tables of 'LLMs as Data Preprocessors'.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=float, default=0.2,
                        help="dataset size scale (1.0 = published sizes)")
    common.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (
        ("table1", _cmd_table1),
        ("table2", _cmd_table2),
        ("table3", _cmd_table3),
        ("feature-selection", _cmd_feature_selection),
        ("cluster-batching", _cmd_cluster_batching),
        ("all", _cmd_all),
    ):
        command = sub.add_parser(name, parents=[common])
        command.set_defaults(handler=handler)
    args = parser.parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
