"""Error analysis: the paper's "case-by-case comparison", as tooling.

The paper's Section 4.2 closes its ED discussion with "the results of ED
warrant further investigation, such as a case-by-case comparison".  This
module provides that investigation surface:

- :func:`per_group_metrics` — metric breakdown by any grouping of the
  instances (target attribute, label, dataset slice).
- :func:`disagreements` — the cases where two methods' predictions differ,
  with ground truth attached, ready for reading.
- :func:`error_cases` — one method's mistakes, most confident groups first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.data.instances import (
    DIInstance,
    Instance,
    Task,
    ground_truth_labels,
)
from repro.errors import EvaluationError
from repro.eval.metrics import confusion_counts, values_match


def _check_aligned(instances: Sequence[Instance],
                   predictions: Sequence) -> None:
    if len(instances) != len(predictions):
        raise EvaluationError(
            f"{len(predictions)} predictions for {len(instances)} instances"
        )
    if not instances:
        raise EvaluationError("cannot analyze zero instances")


def default_grouping(instance: Instance) -> Hashable:
    """Group ED/DI by target attribute; pair tasks form one group."""
    return getattr(instance, "target_attribute", "all")


@dataclass(frozen=True)
class GroupMetrics:
    """One group's score and support."""

    group: Hashable
    score: float
    n: int
    n_positive: int


def per_group_metrics(
    instances: Sequence[Instance],
    predictions: Sequence,
    group_by: Callable[[Instance], Hashable] = default_grouping,
) -> list[GroupMetrics]:
    """Metric per group, worst group first.

    Uses the task's own metric (accuracy for DI, F1 otherwise) within each
    group, which is how per-attribute ED quality is usually read.
    """
    _check_aligned(instances, predictions)
    task = instances[0].task
    groups: dict[Hashable, list[int]] = {}
    for index, instance in enumerate(instances):
        groups.setdefault(group_by(instance), []).append(index)
    out: list[GroupMetrics] = []
    for group, indices in groups.items():
        member_instances = [instances[i] for i in indices]
        member_predictions = [predictions[i] for i in indices]
        truths = ground_truth_labels(member_instances)
        if task is Task.DATA_IMPUTATION:
            correct = sum(
                1 for p, t in zip(member_predictions, truths)
                if values_match(str(p), str(t))
            )
            score = correct / len(indices)
            positives = len(indices)
        else:
            metrics = confusion_counts(
                [bool(p) for p in member_predictions],
                [bool(t) for t in truths],
            )
            score = metrics.f1
            positives = metrics.tp + metrics.fn
        out.append(GroupMetrics(group=group, score=score, n=len(indices),
                                n_positive=positives))
    return sorted(out, key=lambda g: (g.score, str(g.group)))


@dataclass(frozen=True)
class Disagreement:
    """One instance two methods answered differently."""

    index: int
    instance: Instance
    prediction_a: object
    prediction_b: object
    truth: object

    @property
    def a_is_right(self) -> bool:
        return _is_correct(self.instance, self.prediction_a, self.truth)

    @property
    def b_is_right(self) -> bool:
        return _is_correct(self.instance, self.prediction_b, self.truth)


def _is_correct(instance: Instance, prediction, truth) -> bool:
    if isinstance(instance, DIInstance):
        return values_match(str(prediction), str(truth))
    return bool(prediction) == bool(truth)


def disagreements(
    instances: Sequence[Instance],
    predictions_a: Sequence,
    predictions_b: Sequence,
) -> list[Disagreement]:
    """Every case where method A and method B answered differently."""
    _check_aligned(instances, predictions_a)
    _check_aligned(instances, predictions_b)
    truths = ground_truth_labels(instances)
    out = []
    for index, (instance, a, b, truth) in enumerate(
        zip(instances, predictions_a, predictions_b, truths)
    ):
        same = (
            values_match(str(a), str(b))
            if isinstance(instance, DIInstance)
            else bool(a) == bool(b)
        )
        if not same:
            out.append(Disagreement(index=index, instance=instance,
                                    prediction_a=a, prediction_b=b,
                                    truth=truth))
    return out


@dataclass(frozen=True)
class ErrorCase:
    """One mistake: the instance, the wrong answer, the right one."""

    index: int
    instance: Instance
    prediction: object
    truth: object
    kind: str  # "false_positive" / "false_negative" / "wrong_value"


def error_cases(
    instances: Sequence[Instance],
    predictions: Sequence,
) -> list[ErrorCase]:
    """Every mistake one method makes, typed for reading."""
    _check_aligned(instances, predictions)
    truths = ground_truth_labels(instances)
    out = []
    for index, (instance, prediction, truth) in enumerate(
        zip(instances, predictions, truths)
    ):
        if _is_correct(instance, prediction, truth):
            continue
        if isinstance(instance, DIInstance):
            kind = "wrong_value"
        elif bool(prediction):
            kind = "false_positive"
        else:
            kind = "false_negative"
        out.append(ErrorCase(index=index, instance=instance,
                             prediction=prediction, truth=truth, kind=kind))
    return out
