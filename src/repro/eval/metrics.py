"""Metrics: accuracy for data imputation, F1 for the binary tasks.

Exactly the paper's scoring: DI is accuracy on normalized string equality;
ED/SM/EM are F1 of the positive class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.instances import Task
from repro.errors import EvaluationError
from repro.text.normalize import normalize_text


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion counts and the derived precision/recall/F1."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0


def confusion_counts(
    predictions: Sequence[bool], labels: Sequence[bool]
) -> BinaryMetrics:
    if len(predictions) != len(labels):
        raise EvaluationError(
            f"{len(predictions)} predictions for {len(labels)} labels"
        )
    tp = fp = fn = tn = 0
    for predicted, actual in zip(predictions, labels):
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif not predicted and actual:
            fn += 1
        else:
            tn += 1
    return BinaryMetrics(tp=tp, fp=fp, fn=fn, tn=tn)


def precision_recall_f1(
    predictions: Sequence[bool], labels: Sequence[bool]
) -> tuple[float, float, float]:
    metrics = confusion_counts(predictions, labels)
    return metrics.precision, metrics.recall, metrics.f1


def f1_score(predictions: Sequence[bool], labels: Sequence[bool]) -> float:
    """F1 of the positive class, in [0, 1]."""
    return confusion_counts(predictions, labels).f1


def values_match(predicted: str, truth: str) -> bool:
    """DI correctness: normalized string equality.

    Case, punctuation, and whitespace are forgiven (as human evaluation
    of LLM answers does); content is not.
    """
    return normalize_text(str(predicted)) == normalize_text(str(truth))


def accuracy(predictions: Sequence[str], truths: Sequence[str]) -> float:
    """Imputation accuracy in [0, 1]."""
    if len(predictions) != len(truths):
        raise EvaluationError(
            f"{len(predictions)} predictions for {len(truths)} truths"
        )
    if not predictions:
        raise EvaluationError("cannot score zero predictions")
    correct = sum(
        1 for p, t in zip(predictions, truths) if values_match(p, t)
    )
    return correct / len(predictions)


def score_predictions(
    task: Task,
    predictions: Sequence[bool | str],
    labels: Sequence[bool | str],
) -> float:
    """The paper's headline number for one run: accuracy (DI) or F1."""
    if task is Task.DATA_IMPUTATION:
        return accuracy([str(p) for p in predictions], [str(t) for t in labels])
    return f1_score([bool(p) for p in predictions], [bool(t) for t in labels])


def score_answered(
    task: Task,
    predictions: Sequence[bool | str | None],
    labels: Sequence[bool | str],
) -> tuple[float | None, int]:
    """Score only the instances the run actually answered.

    Quarantined instances carry ``None`` predictions (the degradation
    ladder gave up on them rather than guessing); they are excluded from
    the metric instead of silently counted as wrong answers.  Returns
    ``(score, n_answered)``; the score is ``None`` when nothing was
    answered at all.  With full coverage this is exactly
    :func:`score_predictions`.
    """
    if len(predictions) != len(labels):
        raise EvaluationError(
            f"{len(predictions)} predictions for {len(labels)} labels"
        )
    answered = [
        (predicted, truth)
        for predicted, truth in zip(predictions, labels)
        if predicted is not None
    ]
    if not answered:
        return None, 0
    kept_predictions = [pair[0] for pair in answered]
    kept_labels = [pair[1] for pair in answered]
    return score_predictions(task, kept_predictions, kept_labels), len(answered)
