"""Plain-text table rendering for experiment results.

Produces the paper's tables as aligned monospace text so benchmark runs
print rows directly comparable to the published ones.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.executor import ExecutionReport
from repro.errors import EvaluationError


def render_table(
    title: str,
    column_names: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Render an aligned text table with a title line."""
    if not column_names:
        raise EvaluationError("a table needs at least one column")
    for row in rows:
        if len(row) != len(column_names):
            raise EvaluationError(
                f"row {row!r} has {len(row)} cells, expected {len(column_names)}"
            )
    widths = [
        max(len(str(column_names[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(column_names[i]))
        for i in range(len(column_names))
    ]
    lines = [title]
    header = "  ".join(str(n).ljust(w) for n, w in zip(column_names, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_score(score: float | None) -> str:
    """The paper's cell format: one decimal percent, or N/A."""
    if score is None:
        return "N/A"
    return f"{score * 100:.1f}"


def format_score_with_coverage(score: float | None, coverage: float) -> str:
    """A score cell that is honest about partial coverage.

    Full-coverage runs print exactly as :func:`format_score`; a run in
    which the degradation ladder quarantined instances prints the
    answered fraction alongside, e.g. ``87.5 @ 95.0% coverage`` — the
    score is over the answered instances only, never over guesses.
    """
    text = format_score(score)
    if coverage >= 1.0:
        return text
    return f"{text} @ {coverage * 100:.1f}% coverage"


def side_by_side(measured: str, paper: float | str | None) -> str:
    """A ``measured (paper X)`` cell for reproduction comparisons."""
    if paper is None:
        return measured
    return f"{measured} ({paper})"


def render_execution_report(report: ExecutionReport) -> str:
    """Render an executor run as a per-lane utilization table.

    One row per lane (calls, busy time, utilization, retries, timeouts,
    rate-limit waits, breaker trips) plus a summary line comparing the
    makespan against the single-lane sequential estimate.
    """
    rows = [
        [
            str(lane.lane),
            str(lane.n_calls),
            f"{lane.busy_s:.1f}",
            f"{lane.utilization * 100:.0f}%",
            str(lane.n_retries),
            str(lane.n_timeouts),
            str(lane.n_rate_limit_waits),
            str(lane.n_breaker_trips),
        ]
        for lane in report.lanes
    ]
    table = render_table(
        f"Execution — {report.concurrency} lane(s)",
        ["lane", "calls", "busy s", "util", "retries", "timeouts",
         "rl-waits", "breaker"],
        rows,
    )
    summary = (
        f"makespan {report.makespan_s:.1f}s vs sequential "
        f"{report.sequential_s:.1f}s (speedup {report.speedup:.2f}x); "
        f"{report.n_giveups} give-up(s), "
        f"{report.n_fallback_splits} fallback split(s)"
    )
    lines = [table, summary]
    if report.n_cache_hits or report.n_cache_misses:
        lines.append(
            f"cache: {report.n_cache_hits} hit(s), "
            f"{report.n_cache_misses} miss(es) "
            f"(hit rate {report.cache_hit_rate * 100:.0f}%)"
        )
    return "\n".join(lines)
