"""String similarity measures.

These are the classical measures that traditional data-preprocessing systems
(Magellan-style entity matching, similarity-matrix schema matching) are
built from, implemented from scratch on the stdlib.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.text.normalize import normalize_text


def levenshtein(a: str, b: str) -> int:
    """Edit distance with unit insert/delete/substitute costs.

    Uses the two-row dynamic program: O(len(a) * len(b)) time, O(len(b)) space.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance scaled into [0, 1]; 1.0 means identical."""
    if not a and not b:
        return 1.0
    denom = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / denom


def _jaro(a: str, b: str) -> float:
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * la
    b_flags = [False] * lb
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    # Count transpositions among matched characters.
    transpositions = 0
    j = 0
    for i in range(la):
        if a_flags[i]:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / la + matches / lb + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro with a bonus for a shared prefix.

    ``prefix_scale`` is capped at 0.25 so the result stays within [0, 1].
    """
    if prefix_scale > 0.25:
        raise ValueError("prefix_scale must be <= 0.25 to keep results in [0,1]")
    jaro = _jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """Szymkiewicz-Simpson overlap: |A ∩ B| / min(|A|, |B|)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 1.0 if not sa and not sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine of the angle between two dense vectors; 0.0 for a zero vector."""
    dot = sum(x * y for x, y in zip(a, b))
    na = math.sqrt(sum(x * x for x in a))
    nb = math.sqrt(sum(y * y for y in b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return dot / (na * nb)


def cosine_token_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Cosine similarity of token multisets (bag-of-words, raw counts)."""
    ca, cb = Counter(a), Counter(b)
    if not ca or not cb:
        return 1.0 if not ca and not cb else 0.0
    dot = sum(count * cb.get(token, 0) for token, count in ca.items())
    na = math.sqrt(sum(c * c for c in ca.values()))
    nb = math.sqrt(sum(c * c for c in cb.values()))
    return dot / (na * nb)


def monge_elkan(
    a_tokens: Sequence[str],
    b_tokens: Sequence[str],
    inner=jaro_winkler,
) -> float:
    """Monge-Elkan: average best inner-similarity of each left token.

    A hybrid measure that tolerates token reordering and small typos at the
    same time — the workhorse of classical entity matching.
    """
    if not a_tokens:
        return 1.0 if not b_tokens else 0.0
    if not b_tokens:
        return 0.0
    total = 0.0
    for ta in a_tokens:
        total += max(inner(ta, tb) for tb in b_tokens)
    return total / len(a_tokens)


def token_set_ratio(a: str, b: str) -> float:
    """Normalized token-set similarity of two raw strings.

    Normalizes both strings, then combines Jaccard on token sets with
    Monge-Elkan to tolerate typos.  Returns a value in [0, 1].
    """
    ta = normalize_text(a).split()
    tb = normalize_text(b).split()
    if not ta and not tb:
        return 1.0
    return 0.5 * jaccard(ta, tb) + 0.5 * monge_elkan(ta, tb)


def ngrams(text: str, n: int = 3) -> list[str]:
    """Character n-grams of ``text`` with boundary padding."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not text:
        return []
    padded = f"{'#' * (n - 1)}{text}{'#' * (n - 1)}" if n > 1 else text
    if len(padded) < n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]
