"""Text-processing substrate: normalization, similarity, tokens, embeddings.

Everything here is implemented from scratch (stdlib + numpy) because the
reproduction environment has no network access: these modules stand in for
the external NLP tooling (tokenizers, Sentence-BERT) the paper relies on.
"""

from repro.text.normalize import normalize_text, normalize_token, strip_accents
from repro.text.similarity import (
    cosine_similarity,
    jaccard,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    overlap_coefficient,
    token_set_ratio,
)
from repro.text.tokenize import count_tokens, word_tokens
from repro.text.tfidf import TfidfVectorizer
from repro.text.embeddings import HashingEmbedder
from repro.text.phonetic import soundex

__all__ = [
    "normalize_text",
    "normalize_token",
    "strip_accents",
    "levenshtein",
    "levenshtein_similarity",
    "jaro_winkler",
    "jaccard",
    "overlap_coefficient",
    "cosine_similarity",
    "monge_elkan",
    "token_set_ratio",
    "count_tokens",
    "word_tokens",
    "TfidfVectorizer",
    "HashingEmbedder",
    "soundex",
]
