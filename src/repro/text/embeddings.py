"""Hashing-trick text embeddings: the offline Sentence-BERT substitute.

The paper's cluster batching (Section 3.5) clusters data instances with
k-means over Sentence-BERT embeddings.  Offline we replace the transformer
with a feature-hashing embedder over character n-grams and words: texts with
shared surface vocabulary land near each other in cosine space, which is the
property cluster batching needs (homogeneous batches of similar instances).

The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.text.normalize import normalize_text
from repro.text.similarity import ngrams


def _stable_hash(term: str) -> int:
    """A hash that is stable across processes (unlike built-in ``hash``)."""
    digest = hashlib.blake2b(term.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingEmbedder:
    """Embed texts into a fixed-dimensional space via feature hashing.

    Each word and character trigram of the normalized text is hashed to a
    coordinate; a second hash bit decides the sign (the classic hashing
    trick, which keeps inner products unbiased).  Rows are L2-normalized so
    cosine similarity equals the dot product.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 256 — plenty for clustering).
    ngram:
        Character n-gram size mixed in alongside words (0 disables n-grams).
    """

    def __init__(self, dim: int = 256, ngram: int = 3):
        if dim <= 0:
            raise ValueError("dim must be positive")
        if ngram < 0:
            raise ValueError("ngram must be >= 0")
        self.dim = dim
        self.ngram = ngram

    def _terms(self, text: str) -> list[str]:
        normalized = normalize_text(text)
        terms = normalized.split()
        if self.ngram:
            terms.extend(ngrams(normalized, self.ngram))
        return terms

    def embed(self, text: str) -> np.ndarray:
        """Embed one text; the zero vector for empty/blank input."""
        vector = np.zeros(self.dim, dtype=np.float64)
        for term in self._terms(text):
            h = _stable_hash(term)
            index = h % self.dim
            sign = 1.0 if (h >> 32) & 1 else -1.0
            vector[index] += sign
        norm = np.linalg.norm(vector)
        if norm > 0.0:
            vector /= norm
        return vector

    def embed_all(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts into a (n, dim) matrix."""
        rows = [self.embed(t) for t in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two texts under this embedder."""
        return float(np.dot(self.embed(a), self.embed(b)))


def nearest_neighbors(
    query: np.ndarray, matrix: np.ndarray, k: int = 5
) -> list[int]:
    """Indices of the ``k`` rows of ``matrix`` most cosine-similar to ``query``.

    Rows are assumed L2-normalized (as produced by :class:`HashingEmbedder`).
    """
    if matrix.shape[0] == 0:
        return []
    scores = matrix @ query
    k = min(k, matrix.shape[0])
    top = np.argpartition(-scores, k - 1)[:k]
    return sorted(top.tolist(), key=lambda i: -float(scores[i]))


def average_pairwise_similarity(matrix: np.ndarray) -> float:
    """Mean cosine similarity over all unordered row pairs.

    Used to verify that cluster batching produces more homogeneous batches
    than random batching.  Returns 1.0 for fewer than two rows.
    """
    n = matrix.shape[0]
    if n < 2:
        return 1.0
    gram = matrix @ matrix.T
    total = (gram.sum() - np.trace(gram)) / 2.0
    return float(total / (n * (n - 1) / 2.0))
