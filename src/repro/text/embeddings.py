"""Hashing-trick text embeddings: the offline Sentence-BERT substitute.

The paper's cluster batching (Section 3.5) clusters data instances with
k-means over Sentence-BERT embeddings.  Offline we replace the transformer
with a feature-hashing embedder over character n-grams and words: texts with
shared surface vocabulary land near each other in cosine space, which is the
property cluster batching needs (homogeneous batches of similar instances).

Two embedding kernels produce bit-identical vectors:

- the **scalar** reference path (:meth:`HashingEmbedder.embed`,
  :meth:`HashingEmbedder.embed_all_scalar`) hashes one term at a time in a
  Python loop — simple, obviously correct, and what the property tests
  anchor on;
- the **vectorized** path (:meth:`HashingEmbedder.embed_all`) extracts all
  terms up front, resolves term hashes through a process-level memo (one
  ``blake2b`` per *unique* term per process, ever), and scatter-adds the
  signs into the whole ``(n, dim)`` matrix with ``np.add.at``.

Bit-identity holds because every accumulated value is a signed unit count:
sums of ``±1.0`` are exact in float64 regardless of accumulation order, so
the scalar per-row norms and the batched row norms agree to the last bit.

The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.text.normalize import normalize_text
from repro.text.similarity import ngrams


def _stable_hash(term: str) -> int:
    """A hash that is stable across processes (unlike built-in ``hash``)."""
    digest = hashlib.blake2b(term.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


#: process-level memo of term -> stable 64-bit hash.  The hash is
#: dimension-independent (coordinate and sign are derived from it per
#: embedder), so one cache serves every ``HashingEmbedder`` in the process.
_HASH_CACHE: dict[str, int] = {}

#: process-level memo of packed ASCII n-gram code -> stable hash, one dict
#: per gram size (the integer codes of different sizes would collide)
_GRAM_CACHE: dict[int, dict[int, int]] = {}

#: the full alphabet of normalized text plus the n-gram padding character;
#: small enough that every n-gram of size <= 4 indexes a dense hash table
_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789 #"
_BYTE_TO_SYMBOL = np.full(256, 255, dtype=np.uint8)
for _position, _char in enumerate(_ALPHABET):
    _BYTE_TO_SYMBOL[ord(_char)] = _position

#: n -> (hash table of size len(_ALPHABET)**n, filled mask); filled lazily
_GRAM_TABLES: dict[int, tuple[np.ndarray, np.ndarray]] = {}

#: drop the memos rather than let an adversarial corpus grow them unboundedly
_HASH_CACHE_MAX = 2_000_000


def hash_cache_size() -> int:
    """Number of distinct terms memoized process-wide (for tests/metrics)."""
    dense = sum(int(filled.sum()) for __, filled in _GRAM_TABLES.values())
    return len(_HASH_CACHE) + sum(len(c) for c in _GRAM_CACHE.values()) + dense


def clear_hash_cache() -> None:
    """Reset the process-level term-hash memos (benchmarks use this to
    measure the cold path)."""
    _HASH_CACHE.clear()
    _GRAM_CACHE.clear()
    _GRAM_TABLES.clear()


def _hash_terms(terms: list[str]) -> np.ndarray:
    """Stable hashes for ``terms`` as a uint64 array, via the process memo.

    Each unique term is hashed at most once per process; repeats — the
    common case for record serializations sharing attribute names and
    vocabulary — resolve through one C-speed ``map`` pass.
    """
    if len(_HASH_CACHE) > _HASH_CACHE_MAX:
        _HASH_CACHE.clear()
    cache = _HASH_CACHE
    try:
        return np.fromiter(
            map(cache.__getitem__, terms), dtype=np.uint64, count=len(terms)
        )
    except KeyError:
        for term in terms:
            if term not in cache:
                cache[term] = _stable_hash(term)
        return np.fromiter(
            map(cache.__getitem__, terms), dtype=np.uint64, count=len(terms)
        )


def _hash_gram_codes(codes: np.ndarray, n: int) -> np.ndarray:
    """Stable hashes for packed ASCII ``n``-gram codes (uint64 array).

    Only the *unique* codes touch Python: new ones are decoded back to
    their n-character string and blake2b-hashed exactly as the scalar path
    would, then memoized process-wide; the full array is rebuilt by
    vectorized gather.
    """
    cache = _GRAM_CACHE.setdefault(n, {})
    if len(cache) > _HASH_CACHE_MAX:
        cache.clear()
    unique, inverse = np.unique(codes, return_inverse=True)
    unique_list = unique.tolist()
    missing = [code for code in unique_list if code not in cache]
    for code in missing:
        gram = code.to_bytes(n, "big").decode("ascii")
        cache[code] = _stable_hash(gram)
    unique_hashes = np.fromiter(
        map(cache.__getitem__, unique_list),
        dtype=np.uint64,
        count=len(unique_list),
    )
    return unique_hashes[inverse]


def _hash_gram_symbols(symbols: np.ndarray, n: int) -> np.ndarray:
    """Stable hashes for ``(m, n)`` alphabet-symbol n-grams, dense-table path.

    With the ~38-symbol alphabet of normalized text, every gram of size
    ``n <= 4`` maps to a compact integer that indexes a process-level hash
    table directly — the warm path is three vectorized gathers with no
    sorting and no per-occurrence Python.  Unseen grams are decoded back to
    their exact string and blake2b-hashed once, ever.
    """
    base = len(_ALPHABET)
    codes = np.zeros(symbols.shape[0], dtype=np.intp)
    for j in range(n):
        codes = codes * base + symbols[:, j]
    entry = _GRAM_TABLES.get(n)
    if entry is None:
        entry = (
            np.zeros(base**n, dtype=np.uint64),
            np.zeros(base**n, dtype=bool),
        )
        _GRAM_TABLES[n] = entry
    table, filled = entry
    missing_mask = ~filled[codes]
    if missing_mask.any():
        seen = np.bincount(codes[missing_mask], minlength=table.shape[0])
        for code in np.flatnonzero(seen).tolist():
            chars, remainder = [], code
            for __ in range(n):
                remainder, symbol = divmod(remainder, base)
                chars.append(_ALPHABET[symbol])
            gram = "".join(reversed(chars))
            table[code] = _stable_hash(gram)
            filled[code] = True
    return table[codes]


class HashingEmbedder:
    """Embed texts into a fixed-dimensional space via feature hashing.

    Each word and character trigram of the normalized text is hashed to a
    coordinate; a second hash bit decides the sign (the classic hashing
    trick, which keeps inner products unbiased).  Rows are L2-normalized so
    cosine similarity equals the dot product.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 256 — plenty for clustering).
    ngram:
        Character n-gram size mixed in alongside words (0 disables n-grams).
    """

    def __init__(self, dim: int = 256, ngram: int = 3):
        if dim <= 0:
            raise ValueError("dim must be positive")
        if ngram < 0:
            raise ValueError("ngram must be >= 0")
        self.dim = dim
        self.ngram = ngram

    @property
    def params(self) -> tuple[int, int]:
        """The cache-key identity of this embedder: ``(dim, ngram)``."""
        return (self.dim, self.ngram)

    def _terms(self, text: str) -> list[str]:
        normalized = normalize_text(text)
        terms = normalized.split()
        if self.ngram:
            terms.extend(ngrams(normalized, self.ngram))
        return terms

    def embed(self, text: str) -> np.ndarray:
        """Embed one text; the zero vector for empty/blank input.

        This is the scalar reference kernel: one hash per term, one
        scatter-add per term.  :meth:`embed_all` must match it bit for bit.
        """
        vector = np.zeros(self.dim, dtype=np.float64)
        for term in self._terms(text):
            h = _stable_hash(term)
            index = h % self.dim
            sign = 1.0 if (h >> 32) & 1 else -1.0
            vector[index] += sign
        norm = np.linalg.norm(vector)
        if norm > 0.0:
            vector /= norm
        return vector

    def embed_all_scalar(self, texts: Iterable[str]) -> np.ndarray:
        """The pre-kernel reference: embed row by row via :meth:`embed`."""
        rows = [self.embed(t) for t in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)

    def embed_all(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts into a ``(n, dim)`` matrix — vectorized.

        Words are hashed through the process-level term memo; character
        n-grams are packed into integer codes with a sliding window over
        one shared byte buffer and resolved per *unique* gram, so only new
        vocabulary ever reaches ``blake2b``.  Everything lands in the
        matrix via ``np.add.at`` scatter-adds and rows are normalized in
        one shot.  Output is bit-identical to :meth:`embed_all_scalar`
        (property-tested): accumulated values are sums of ``±1.0``, which
        float64 represents exactly in any order.
        """
        texts = list(texts)
        n_texts = len(texts)
        if n_texts == 0:
            return np.zeros((0, self.dim), dtype=np.float64)
        normalized = [normalize_text(t) for t in texts]
        row_parts: list[np.ndarray] = []
        hash_parts: list[np.ndarray] = []
        word_lists = [s.split() for s in normalized]
        flat_words: list[str] = []
        for words in word_lists:
            flat_words.extend(words)
        if flat_words:
            row_parts.append(np.repeat(
                np.arange(n_texts, dtype=np.intp),
                np.fromiter(
                    (len(w) for w in word_lists), dtype=np.intp, count=n_texts
                ),
            ))
            hash_parts.append(_hash_terms(flat_words))
        if self.ngram:
            gram_rows, gram_hashes = self._ngram_hashes(normalized)
            if gram_hashes.size:
                row_parts.append(gram_rows)
                hash_parts.append(gram_hashes)
        if not row_parts:
            return np.zeros((n_texts, self.dim), dtype=np.float64)
        rows = np.concatenate(row_parts)
        hashes = np.concatenate(hash_parts)
        indices = (hashes % np.uint64(self.dim)).astype(np.intp)
        signs = np.where((hashes >> np.uint64(32)) & np.uint64(1), 1.0, -1.0)
        # One weighted bincount is the whole scatter-add: cell sums of
        # ±1.0 are exact in float64, so accumulation order cannot matter.
        matrix = np.bincount(
            rows * self.dim + indices,
            weights=signs,
            minlength=n_texts * self.dim,
        ).reshape(n_texts, self.dim)
        norms = np.linalg.norm(matrix, axis=1)
        np.divide(
            matrix, norms[:, None], out=matrix, where=norms[:, None] > 0.0
        )
        return matrix

    def _ngram_hashes(
        self, normalized: list[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row ids and stable hashes of every text's character n-grams.

        Normalized text is pure ASCII (``normalize_text`` maps everything
        else to spaces), so each n-gram of up to 8 characters packs into a
        ``uint64`` code; codes come from one sliding window over a
        ``\\x00``-joined buffer, with window starts chosen so no gram ever
        spans two texts.  Non-ASCII input or ``ngram > 8`` falls back to
        hashing gram strings through the term memo.
        """
        n = self.ngram
        empty_result = (
            np.empty(0, dtype=np.intp), np.empty(0, dtype=np.uint64)
        )
        nonempty = [
            (row, text) for row, text in enumerate(normalized) if text
        ]
        if not nonempty:
            return empty_result
        if n > 8 or not all(text.isascii() for __, text in nonempty):
            flat: list[str] = []
            counts_list: list[int] = []
            for __, text in nonempty:
                grams = ngrams(text, n)
                counts_list.append(len(grams))
                flat.extend(grams)
            rows = np.repeat(
                np.fromiter(
                    (row for row, __ in nonempty),
                    dtype=np.intp, count=len(nonempty),
                ),
                np.array(counts_list, dtype=np.intp),
            )
            return rows, _hash_terms(flat)
        pad = "#" * (n - 1)
        padded = [f"{pad}{text}{pad}" for __, text in nonempty]
        buffer = np.frombuffer(
            "\x00".join(padded).encode("ascii"), dtype=np.uint8
        )
        lengths = np.fromiter(
            (len(p) for p in padded), dtype=np.intp, count=len(padded)
        )
        counts = lengths - n + 1
        offsets = np.zeros(len(padded), dtype=np.intp)
        offsets[1:] = np.cumsum(lengths + 1)[:-1]
        total = int(counts.sum())
        starts = (
            np.arange(total, dtype=np.intp)
            - np.repeat(np.cumsum(counts) - counts, counts)
            + np.repeat(offsets, counts)
        )
        windows = np.lib.stride_tricks.sliding_window_view(buffer, n)[starts]
        rows = np.repeat(
            np.fromiter(
                (row for row, __ in nonempty),
                dtype=np.intp, count=len(nonempty),
            ),
            counts,
        )
        symbols = _BYTE_TO_SYMBOL[windows]
        if n <= 4 and (total == 0 or int(symbols.max()) < len(_ALPHABET)):
            hashes = _hash_gram_symbols(symbols, n)
        else:
            codes = np.zeros(total, dtype=np.uint64)
            for j in range(n):
                codes = (codes << np.uint64(8)) | windows[:, j]
            hashes = _hash_gram_codes(codes, n)
        return rows, hashes

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two texts under this embedder."""
        return float(np.dot(self.embed(a), self.embed(b)))


def nearest_neighbors(
    query: np.ndarray, matrix: np.ndarray, k: int = 5
) -> list[int]:
    """Indices of the ``k`` rows of ``matrix`` most cosine-similar to ``query``.

    Rows are assumed L2-normalized (as produced by :class:`HashingEmbedder`).
    Ties are broken by row index (ascending), so the result is a pure
    function of the scores — ``argpartition``'s internal ordering never
    leaks into the output.
    """
    if matrix.shape[0] == 0:
        return []
    scores = matrix @ query
    k = min(k, matrix.shape[0])
    top = np.argpartition(-scores, k - 1)[:k]
    return sorted(top.tolist(), key=lambda i: (-float(scores[i]), i))


def average_pairwise_similarity(matrix: np.ndarray) -> float:
    """Mean cosine similarity over all unordered row pairs.

    Used to verify that cluster batching produces more homogeneous batches
    than random batching.  Returns 1.0 for fewer than two rows.
    """
    n = matrix.shape[0]
    if n < 2:
        return 1.0
    gram = matrix @ matrix.T
    total = (gram.sum() - np.trace(gram)) / 2.0
    return float(total / (n * (n - 1) / 2.0))
