"""Phonetic encoding (Soundex), used by blocking and error detection.

Typos usually keep a word's sound; Soundex keys collide for phonetically
similar spellings, which makes them useful both as a cheap blocking key for
entity matching and as evidence that a token is a misspelling of a known
vocabulary word rather than a novel word.
"""

from __future__ import annotations

_SOUNDEX_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2",
    "q": "2", "s": "2", "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code of ``word`` (e.g. ``robert`` -> ``R163``).

    Non-alphabetic characters are ignored; the empty string encodes to
    ``0000`` so it never collides with a real word.
    """
    letters = [c for c in word.lower() if c.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    encoded = [first.upper()]
    previous_code = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if ch in ("h", "w"):
            # h/w are transparent: they do not reset the previous code.
            continue
        if code and code != previous_code:
            encoded.append(code)
            if len(encoded) == 4:
                break
        previous_code = code
    return "".join(encoded).ljust(4, "0")


def sounds_like(a: str, b: str) -> bool:
    """Whether two words share a Soundex code (cheap typo evidence)."""
    return soundex(a) == soundex(b)
