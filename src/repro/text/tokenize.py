"""Token counting and word tokenization.

Stands in for the OpenAI tokenizer in the billing/latency accounting
(paper Table 3).  The estimator is deterministic and calibrated to the
familiar "one token per ~4 characters of English / one word ≈ 1.3 tokens"
rule, which is accurate enough to reproduce the *relative* token savings of
batch prompting — the quantity Table 3 is about.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?|[^\sA-Za-z0-9]")
_SUBWORD_CHARS = 6  # long words are split into ~6-character pieces by BPE


def word_tokens(text: str) -> list[str]:
    """Split text into word-level tokens; punctuation marks are tokens too."""
    return _WORD_RE.findall(text)


def count_tokens(text: str) -> int:
    """Estimate the number of BPE tokens in ``text``.

    Each short word costs one token; words longer than ``_SUBWORD_CHARS``
    characters cost one token per started 6-character piece (mimicking BPE
    splitting rare words into subwords); punctuation costs one token each.
    Whitespace is free (absorbed into word tokens, as in real BPE).
    """
    if not text:
        return 0
    total = 0
    for token in _WORD_RE.findall(text):
        if len(token) <= _SUBWORD_CHARS:
            total += 1
        else:
            total += -(-len(token) // _SUBWORD_CHARS)  # ceil division
    return total


def count_message_tokens(messages: list[tuple[str, str]]) -> int:
    """Token count of a chat transcript.

    ``messages`` is a list of ``(role, content)`` pairs.  Chat APIs charge a
    small per-message framing overhead (role markers, separators); we use 4
    tokens per message plus 3 for the reply priming, matching the commonly
    documented ChatML accounting.
    """
    total = 3  # reply is primed with <|assistant|>
    for role, content in messages:
        total += 4  # <|im_start|>{role}\n ... <|im_end|>\n
        total += count_tokens(role)
        total += count_tokens(content)
    return total
