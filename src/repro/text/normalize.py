"""Text normalization used throughout the matching and cleaning stacks."""

from __future__ import annotations

import re
import unicodedata

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[^\w\s]")
_NON_ALNUM_RE = re.compile(r"[^a-z0-9\s]")

#: ASCII fast path for ``normalize_text``: after lowercasing, keep
#: ``[a-z0-9]`` and whitespace (``str.split`` collapses it), map everything
#: else to a space — exactly what the regex pipeline below produces.
_ASCII_CLEAN_TABLE = str.maketrans({
    code: chr(code)
    if "a" <= chr(code) <= "z" or "0" <= chr(code) <= "9" or chr(code).isspace()
    else " "
    for code in range(128)
})


def strip_accents(text: str) -> str:
    """Remove diacritics: ``café`` -> ``cafe``."""
    if text.isascii():
        # ASCII has no combining characters and is an NFKD fixed point, so
        # the decomposition pass would be an identity — skip it.  This is
        # the common case for record serializations and keeps the batched
        # embedding kernel out of the per-character Python loop below.
        return text
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize_text(text: str, keep_punct: bool = False) -> str:
    """Lowercase, strip accents, collapse whitespace; optionally drop punctuation.

    This is the canonical normalization applied before any string-similarity
    computation so that superficial differences (case, spacing, accents) do
    not masquerade as semantic differences.
    """
    if not keep_punct and text.isascii():
        # One C-speed translate-and-split pass; bit-identical to the regex
        # pipeline for ASCII input (accent stripping is an identity there).
        return " ".join(text.lower().translate(_ASCII_CLEAN_TABLE).split())
    text = strip_accents(text).lower()
    if not keep_punct:
        text = _NON_ALNUM_RE.sub(" ", text)
    return _WHITESPACE_RE.sub(" ", text).strip()


def normalize_token(token: str) -> str:
    """Normalize a single token: lowercase, accent-free, punctuation-free."""
    return _PUNCT_RE.sub("", strip_accents(token).lower())


_ABBREVIATIONS = {
    "st": "street",
    "st.": "street",
    "ave": "avenue",
    "ave.": "avenue",
    "blvd": "boulevard",
    "blvd.": "boulevard",
    "rd": "road",
    "rd.": "road",
    "dr": "drive",
    "dr.": "drive",
    "hwy": "highway",
    "ln": "lane",
    "pkwy": "parkway",
    "e": "east",
    "e.": "east",
    "w": "west",
    "w.": "west",
    "n": "north",
    "n.": "north",
    "s": "south",
    "s.": "south",
    "inc": "incorporated",
    "inc.": "incorporated",
    "corp": "corporation",
    "corp.": "corporation",
    "co": "company",
    "co.": "company",
    "intl": "international",
    "dept": "department",
    "univ": "university",
}


def expand_abbreviations(text: str) -> str:
    """Expand common address/company abbreviations token-by-token.

    Used by entity matching to align e.g. ``powers ferry rd.`` with
    ``powers ferry road``.
    """
    out = []
    for token in text.split():
        out.append(_ABBREVIATIONS.get(token.lower(), token))
    return " ".join(out)


_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")


def extract_numbers(text: str) -> list[float]:
    """All numbers mentioned in ``text``, in order of appearance."""
    return [float(m) for m in _NUMBER_RE.findall(text)]


_YEAR_RE = re.compile(r"\b(19\d{2}|20\d{2})\b")


def extract_years(text: str) -> list[int]:
    """Four-digit years (1900-2099) mentioned in ``text``."""
    return [int(m) for m in _YEAR_RE.findall(text)]


_PHONE_RE = re.compile(r"(\d{3})[\s\-./()]*(\d{3})[\s\-./()]*(\d{4})")


def extract_phone(text: str) -> str | None:
    """Canonicalize the first US-style phone number found, or ``None``.

    Returns ``AAA-BBB-CCCC`` so that formatting variants compare equal.
    """
    match = _PHONE_RE.search(text)
    if match is None:
        return None
    return "-".join(match.groups())
