"""A small TF-IDF vectorizer (numpy-backed).

Used by the Ditto-style entity-matching baseline and by blocking.  The API
mirrors the scikit-learn vectorizer narrowly: ``fit``, ``transform``,
``fit_transform`` over an iterable of raw strings.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ReproError
from repro.text.normalize import normalize_text
from repro.text.similarity import ngrams


def _default_analyzer(text: str) -> list[str]:
    return normalize_text(text).split()


def char_ngram_analyzer(n: int = 3) -> Callable[[str], list[str]]:
    """An analyzer producing character n-grams of the normalized text."""

    def analyze(text: str) -> list[str]:
        return ngrams(normalize_text(text), n)

    return analyze


class TfidfVectorizer:
    """TF-IDF with smooth IDF and L2-normalized rows.

    Parameters
    ----------
    analyzer:
        Callable mapping a raw string to a list of terms.  Defaults to
        whitespace words of the normalized text.
    min_df:
        Terms appearing in fewer than ``min_df`` documents are dropped.
    """

    def __init__(
        self,
        analyzer: Callable[[str], list[str]] | None = None,
        min_df: int = 1,
    ):
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        self._analyzer = analyzer or _default_analyzer
        self._min_df = min_df
        self.vocabulary_: dict[str, int] = {}
        self.idf_: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.idf_ is not None

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``documents``."""
        if not documents:
            raise ReproError("cannot fit TfidfVectorizer on zero documents")
        doc_freq: Counter[str] = Counter()
        for doc in documents:
            doc_freq.update(set(self._analyzer(doc)))
        terms = sorted(t for t, df in doc_freq.items() if df >= self._min_df)
        self.vocabulary_ = {t: i for i, t in enumerate(terms)}
        n_docs = len(documents)
        idf = np.empty(len(terms), dtype=np.float64)
        for term, index in self.vocabulary_.items():
            # Smooth IDF: never zero, never negative.
            idf[index] = math.log((1 + n_docs) / (1 + doc_freq[term])) + 1.0
        self.idf_ = idf
        return self

    def transform(self, documents: Iterable[str]) -> np.ndarray:
        """Map documents to L2-normalized TF-IDF rows (dense ndarray)."""
        if not self.is_fitted:
            raise ReproError("TfidfVectorizer.transform called before fit")
        docs = list(documents)
        matrix = np.zeros((len(docs), len(self.vocabulary_)), dtype=np.float64)
        for row, doc in enumerate(docs):
            counts = Counter(self._analyzer(doc))
            for term, count in counts.items():
                col = self.vocabulary_.get(term)
                if col is not None:
                    matrix[row, col] = count
        matrix *= self.idf_
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return matrix / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)


def cosine_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``.

    Assumes rows may not be normalized; normalizes defensively.
    """
    a_norm = np.linalg.norm(a, axis=1, keepdims=True)
    b_norm = np.linalg.norm(b, axis=1, keepdims=True)
    a_norm[a_norm == 0.0] = 1.0
    b_norm[b_norm == 0.0] = 1.0
    return (a / a_norm) @ (b / b_norm).T
