"""Binary logistic regression trained with full-batch gradient descent.

This is the classifier behind the Magellan-style entity matcher and the
HoloDetect-style error detector.  Full-batch gradient descent with L2
regularization is entirely adequate at benchmark scale (thousands of rows,
tens of features) and keeps the implementation auditable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() finite; gradients saturate there anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """L2-regularized binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    n_iter:
        Number of full-batch iterations.
    l2:
        L2 penalty strength (0 disables regularization).
    class_weight:
        ``"balanced"`` reweights examples inversely to class frequency —
        important for entity matching, where matches are rare.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iter: int = 500,
        l2: float = 1e-3,
        class_weight: str | None = "balanced",
        nonnegative: bool = False,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_iter <= 0:
            raise ValueError("n_iter must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.class_weight = class_weight
        #: projected gradient onto w >= 0: for models whose features are
        #: similarities, monotonicity is a domain-transferable prior (more
        #: similar can never mean less matching)
        self.nonnegative = nonnegative
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on features ``X`` (n, d) and binary labels ``y`` (n,)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ReproError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ReproError(
                f"y shape {y.shape} incompatible with X shape {X.shape}"
            )
        unique = set(np.unique(y).tolist())
        if not unique <= {0.0, 1.0}:
            raise ReproError(f"labels must be 0/1, got {sorted(unique)}")

        n, d = X.shape
        weights = np.ones(n)
        if self.class_weight == "balanced":
            positives = float(y.sum())
            negatives = n - positives
            if positives > 0 and negatives > 0:
                weights = np.where(y == 1.0, n / (2 * positives), n / (2 * negatives))

        w = np.zeros(d)
        b = 0.0
        for __ in range(self.n_iter):
            p = _sigmoid(X @ w + b)
            error = (p - y) * weights
            grad_w = X.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            if self.nonnegative:
                np.maximum(w, 0.0, out=w)
        self.coef_ = w
        self.intercept_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of class 1 for each row of ``X``."""
        if not self.is_fitted:
            raise ReproError("predict_proba called before fit")
        X = np.asarray(X, dtype=np.float64)
        return _sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits (useful for ranking candidates)."""
        if not self.is_fitted:
            raise ReproError("decision_function called before fit")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_
