"""k-means clustering with k-means++ initialization.

Used by cluster batching (paper Section 3.5): data instances are clustered
over their embeddings, then batches are drawn within each cluster.

The assignment step is a single matmul: with row norms ``|x|^2`` computed
once per fit and centroid norms ``|c|^2`` once per iteration, squared
distances are ``|x|^2 - 2 x.c + |c|^2`` — no ``(n, k, d)`` broadcast
allocation, which is what makes 10k-point fits cheap.  Lloyd iterations
stop as soon as labels converge (the fixed point of the update step), which
is provably identical to running out the full iteration budget: once labels
repeat, centroids recompute to the same means and labels never move again.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Deterministic for a fixed ``seed``.  Empty clusters are re-seeded to the
    point farthest from its current centroid, so ``fit`` always produces
    exactly ``k`` non-degenerate clusters when there are at least ``k``
    distinct points.

    ``early_stop=False`` disables the convergence exit and runs all
    ``n_iter`` iterations — the pre-kernel reference behavior, kept so the
    property suite can prove the exit changes nothing.
    """

    def __init__(
        self, k: int, n_iter: int = 50, seed: int = 0, early_stop: bool = True
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if n_iter <= 0:
            raise ValueError("n_iter must be positive")
        self.k = k
        self.n_iter = n_iter
        self.seed = seed
        self.early_stop = early_stop
        self.centroids_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("inf")
        #: Lloyd iterations actually run by the last ``fit``
        self.n_iter_: int = 0

    @staticmethod
    def _pairwise_sq_distances(
        X: np.ndarray, x_norms: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        """Squared Euclidean distances via one matmul; clipped at zero so
        cancellation noise never produces a negative distance."""
        c_norms = (centroids * centroids).sum(axis=1)
        distances = x_norms[:, None] - 2.0 * (X @ centroids.T) + c_norms[None, :]
        np.maximum(distances, 0.0, out=distances)
        return distances

    def _init_centroids(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids apart."""
        n = X.shape[0]
        centroids = np.empty((self.k, X.shape[1]), dtype=np.float64)
        first = int(rng.integers(n))
        centroids[0] = X[first]
        closest_sq = ((X - centroids[0]) ** 2).sum(axis=1)
        for i in range(1, self.k):
            total = closest_sq.sum()
            if total <= 0.0:
                # All remaining points coincide with a centroid; pick any.
                centroids[i] = X[int(rng.integers(n))]
                continue
            probs = closest_sq / total
            choice = int(rng.choice(n, p=probs))
            centroids[i] = X[choice]
            dist_sq = ((X - centroids[i]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, dist_sq)
        return centroids

    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster the rows of ``X``; stores ``labels_`` and ``centroids_``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ReproError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if n == 0:
            raise ReproError("cannot cluster zero points")
        if n < self.k:
            # Degenerate but common in small tests: one point per cluster.
            self.centroids_ = X.copy()
            self.labels_ = np.arange(n)
            self.inertia_ = 0.0
            self.n_iter_ = 0
            return self

        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(X, rng)
        x_norms = (X * X).sum(axis=1)
        labels = np.zeros(n, dtype=np.int64)
        self.n_iter_ = 0
        for iteration in range(self.n_iter):
            # Assignment step: one matmul against the current centroids.
            distances = self._pairwise_sq_distances(X, x_norms, centroids)
            new_labels = distances.argmin(axis=1)
            self.n_iter_ = iteration + 1
            if (
                self.early_stop
                and iteration > 0
                and np.array_equal(new_labels, labels)
            ):
                break
            labels = new_labels
            # Update step, re-seeding empty clusters.
            for c in range(self.k):
                members = X[labels == c]
                if len(members) == 0:
                    farthest = int(distances.min(axis=1).argmax())
                    centroids[c] = X[farthest]
                else:
                    centroids[c] = members.mean(axis=0)
        distances = self._pairwise_sq_distances(X, x_norms, centroids)
        self.labels_ = distances.argmin(axis=1)
        self.inertia_ = float(distances.min(axis=1).sum())
        self.centroids_ = centroids
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign each row of ``X`` to its nearest learned centroid."""
        if self.centroids_ is None:
            raise ReproError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        x_norms = (X * X).sum(axis=1)
        distances = self._pairwise_sq_distances(X, x_norms, self.centroids_)
        return distances.argmin(axis=1)

    def clusters(self) -> list[list[int]]:
        """Indices of the fitted points grouped by cluster label."""
        if self.labels_ is None:
            raise ReproError("clusters() called before fit")
        groups: list[list[int]] = [[] for __ in range(int(self.labels_.max()) + 1)]
        for index, label in enumerate(self.labels_):
            groups[int(label)].append(index)
        return [g for g in groups if g]
