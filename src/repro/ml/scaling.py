"""Feature scaling."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class StandardScaler:
    """Zero-mean, unit-variance scaling; constant columns pass through.

    Logistic regression with gradient descent is sensitive to feature scale,
    so the baselines standardize before fitting.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ReproError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # (Near-)constant columns: dividing by an std of ~1e-17 only
        # amplifies float rounding noise, so treat them as constant.
        floor = 1e-9 * np.maximum(np.abs(self.mean_), 1.0)
        std[std <= floor] = 1.0
        self.std_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise ReproError("transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
