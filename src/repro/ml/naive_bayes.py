"""Multinomial naive Bayes over term counts.

A light classifier for text columns; the HoloDetect-style error detector
uses it to decide whether a cell's character n-grams look like the clean
population of its column.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Hashable, Iterable, Sequence

from repro.errors import ReproError


class MultinomialNB:
    """Multinomial naive Bayes with Laplace smoothing over string terms.

    Operates directly on term lists (no vectorizer needed), which keeps the
    call sites simple for small vocabularies.
    """

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._class_counts: Counter[Hashable] = Counter()
        self._term_counts: dict[Hashable, Counter[str]] = {}
        self._class_totals: dict[Hashable, int] = {}
        self._vocabulary: set[str] = set()
        self._n_docs = 0

    @property
    def is_fitted(self) -> bool:
        return self._n_docs > 0

    @property
    def classes(self) -> list[Hashable]:
        return sorted(self._class_counts, key=str)

    def fit(
        self, documents: Sequence[Iterable[str]], labels: Sequence[Hashable]
    ) -> "MultinomialNB":
        if len(documents) != len(labels):
            raise ReproError(
                f"{len(documents)} documents but {len(labels)} labels"
            )
        if not documents:
            raise ReproError("cannot fit naive Bayes on zero documents")
        self._class_counts = Counter(labels)
        self._term_counts = defaultdict(Counter)
        for terms, label in zip(documents, labels):
            self._term_counts[label].update(terms)
        self._term_counts = dict(self._term_counts)
        self._vocabulary = {
            t for counts in self._term_counts.values() for t in counts
        }
        self._class_totals = {
            label: sum(counts.values())
            for label, counts in self._term_counts.items()
        }
        self._n_docs = len(documents)
        return self

    def log_likelihood(self, terms: Iterable[str], label: Hashable) -> float:
        """log P(terms, label) under the fitted model."""
        if not self.is_fitted:
            raise ReproError("log_likelihood called before fit")
        if label not in self._class_counts:
            raise ReproError(f"unknown class {label!r}")
        vocab_size = max(len(self._vocabulary), 1)
        counts = self._term_counts.get(label, Counter())
        total = self._class_totals.get(label, 0)
        log_prob = math.log(self._class_counts[label] / self._n_docs)
        denominator = total + self.alpha * vocab_size
        for term in terms:
            log_prob += math.log((counts.get(term, 0) + self.alpha) / denominator)
        return log_prob

    def predict_one(self, terms: Iterable[str]) -> Hashable:
        terms = list(terms)
        return max(self.classes, key=lambda c: self.log_likelihood(terms, c))

    def predict(self, documents: Sequence[Iterable[str]]) -> list[Hashable]:
        return [self.predict_one(doc) for doc in documents]
