"""k-nearest-neighbour classifier and imputer.

The IMP-style imputation baseline retrieves similar records and votes on
the missing value; both pieces live here, parameterized by any vector
representation the caller chooses.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Sequence

import numpy as np

from repro.errors import ReproError


def _validate(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ReproError(f"X must be 2-D, got shape {X.shape}")
    return X


class KNNClassifier:
    """Majority-vote k-NN with optional cosine or euclidean metric."""

    def __init__(self, k: int = 5, metric: str = "cosine"):
        if k <= 0:
            raise ValueError("k must be positive")
        if metric not in ("cosine", "euclidean"):
            raise ValueError("metric must be 'cosine' or 'euclidean'")
        self.k = k
        self.metric = metric
        self._X: np.ndarray | None = None
        self._y: list[Hashable] = []

    def fit(self, X: np.ndarray, y: Sequence[Hashable]) -> "KNNClassifier":
        X = _validate(X)
        if len(y) != X.shape[0]:
            raise ReproError(
                f"{len(y)} labels for {X.shape[0]} rows"
            )
        if X.shape[0] == 0:
            raise ReproError("cannot fit k-NN on zero rows")
        self._X = X
        self._y = list(y)
        return self

    def _neighbor_indices(self, x: np.ndarray) -> list[int]:
        assert self._X is not None
        if self.metric == "cosine":
            norms = np.linalg.norm(self._X, axis=1) * (np.linalg.norm(x) or 1.0)
            norms[norms == 0.0] = 1.0
            scores = (self._X @ x) / norms
            order = np.argsort(-scores)
        else:
            dists = ((self._X - x) ** 2).sum(axis=1)
            order = np.argsort(dists)
        return order[: min(self.k, len(self._y))].tolist()

    def predict_one(self, x: np.ndarray) -> Hashable:
        """Label of the majority among the k nearest training rows."""
        if self._X is None:
            raise ReproError("predict called before fit")
        votes = Counter(self._y[i] for i in self._neighbor_indices(np.asarray(x)))
        return votes.most_common(1)[0][0]

    def predict(self, X: np.ndarray) -> list[Hashable]:
        X = _validate(X)
        return [self.predict_one(row) for row in X]


class KNNImputer:
    """Impute a categorical/text value from the nearest complete records.

    ``fit`` takes vectors for records whose target value is known plus those
    values; ``impute`` votes among neighbours, weighting by similarity so a
    single very-close record can outvote several distant ones.
    """

    def __init__(self, k: int = 5):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._X: np.ndarray | None = None
        self._values: list[str] = []

    def fit(self, X: np.ndarray, values: Sequence[str]) -> "KNNImputer":
        X = _validate(X)
        if len(values) != X.shape[0]:
            raise ReproError(f"{len(values)} values for {X.shape[0]} rows")
        if X.shape[0] == 0:
            raise ReproError("cannot fit imputer on zero rows")
        self._X = X
        self._values = list(values)
        return self

    def impute_one(self, x: np.ndarray) -> str:
        """Similarity-weighted vote for the missing value."""
        if self._X is None:
            raise ReproError("impute called before fit")
        x = np.asarray(x, dtype=np.float64)
        norms = np.linalg.norm(self._X, axis=1) * (np.linalg.norm(x) or 1.0)
        norms[norms == 0.0] = 1.0
        scores = (self._X @ x) / norms
        order = np.argsort(-scores)[: min(self.k, len(self._values))]
        weights: Counter[str] = Counter()
        for i in order:
            weights[self._values[int(i)]] += max(float(scores[int(i)]), 1e-6)
        return weights.most_common(1)[0][0]

    def impute(self, X: np.ndarray) -> list[str]:
        X = _validate(X)
        return [self.impute_one(row) for row in X]
