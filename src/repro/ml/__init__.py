"""Minimal machine-learning substrate (numpy only).

Implements exactly the learners the baselines and the framework need:
logistic regression (Magellan/HoloDetect-style classifiers), k-means
(cluster batching), k-nearest neighbours (IMP-style imputation), and a
multinomial naive Bayes (categorical error detection).
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.kmeans import KMeans
from repro.ml.knn import KNNClassifier, KNNImputer
from repro.ml.naive_bayes import MultinomialNB
from repro.ml.scaling import StandardScaler

__all__ = [
    "LogisticRegression",
    "KMeans",
    "KNNClassifier",
    "KNNImputer",
    "MultinomialNB",
    "StandardScaler",
]
