"""Schemas and attributes.

The paper's data model (Section 2.1) operates on relational tables specified
by schemas; attributes are numerical (including binary) or textual (including
categorical).  Schema matching additionally represents each attribute as a
``(name, description)`` pair, so :class:`Attribute` carries an optional
human-readable description.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SchemaError


class AttrType(enum.Enum):
    """Type of an attribute in the paper's data model."""

    NUMERIC = "numeric"
    TEXT = "text"
    CATEGORICAL = "categorical"
    BINARY = "binary"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type are numbers (binary counts as numeric)."""
        return self in (AttrType.NUMERIC, AttrType.BINARY)

    @property
    def is_textual(self) -> bool:
        """Whether values of this type are text (categorical counts as text)."""
        return self in (AttrType.TEXT, AttrType.CATEGORICAL)


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relational schema.

    Parameters
    ----------
    name:
        Column name as it appears in prompts and CSV headers.
    type:
        One of :class:`AttrType`.
    description:
        Optional natural-language description.  Used by schema matching,
        where each attribute is presented as ``(name, description)``.
    """

    name: str
    type: AttrType = AttrType.TEXT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named attributes.

    Supports lookup by name or position and projection onto a subset of
    attributes (used by feature selection).
    """

    name: str
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("schema name must be non-empty")
        seen: set[str] = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in schema {self.name!r}"
                )
            seen.add(attr.name)

    @classmethod
    def from_names(
        cls,
        name: str,
        attribute_names: list[str] | tuple[str, ...],
        types: dict[str, AttrType] | None = None,
    ) -> Schema:
        """Build a schema from bare attribute names.

        ``types`` optionally maps attribute names to :class:`AttrType`;
        unmapped attributes default to :data:`AttrType.TEXT`.
        """
        types = types or {}
        attrs = tuple(
            Attribute(n, types.get(n, AttrType.TEXT)) for n in attribute_names
        )
        return cls(name=name, attributes=attrs)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Attribute):
            name = name.name
        return name in self.attribute_names

    def __getitem__(self, key: str | int) -> Attribute:
        if isinstance(key, int):
            try:
                return self.attributes[key]
            except IndexError:
                raise SchemaError(
                    f"attribute index {key} out of range for schema {self.name!r} "
                    f"with {len(self)} attributes"
                ) from None
        for attr in self.attributes:
            if attr.name == key:
                return attr
        raise SchemaError(f"schema {self.name!r} has no attribute {key!r}")

    def index_of(self, name: str) -> int:
        """Position of attribute ``name`` in this schema."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def project(self, names: list[str] | tuple[str, ...]) -> Schema:
        """Return a new schema restricted to ``names``, preserving their order.

        Raises :class:`SchemaError` if any name is absent.  This is the
        schema-level operation behind feature selection (paper Section 3.4).
        """
        attrs = tuple(self[n] for n in names)
        return Schema(name=self.name, attributes=attrs)
