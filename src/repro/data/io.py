"""CSV / JSONL persistence for tables.

Kept dependency-free (stdlib ``csv`` and ``json``) so generated benchmark
datasets can be exported for inspection or reuse by external tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.data.records import Record, Table, infer_schema
from repro.data.schema import Schema
from repro.errors import DatasetError

_MISSING_TOKEN = ""


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row; missing cells are empty."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(table.schema.attribute_names)
        for record in table:
            writer.writerow(
                [
                    _MISSING_TOKEN if value is None else value
                    for __, value in record
                ]
            )


def read_csv(path: str | Path, schema: Schema | None = None) -> Table:
    """Read a table from CSV.

    If ``schema`` is omitted, one is inferred from the data (numeric if every
    non-empty value parses as a number).
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path} is empty: no header row") from None
        rows = [dict(zip(header, row)) for row in reader]
    if schema is None:
        if not rows:
            raise DatasetError(
                f"{path} has a header but no rows; pass an explicit schema"
            )
        schema = infer_schema(path.stem, rows)
    return Table.from_rows(schema, rows, id_prefix=f"{path.stem}-")


def write_jsonl(records: Iterable[Record], path: str | Path) -> int:
    """Write records as JSON Lines; returns the number of lines written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record.to_dict(), ensure_ascii=False))
            f.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path, schema: Schema) -> Table:
    """Read records from JSON Lines into a table with the given schema."""
    path = Path(path)
    rows = []
    with path.open("r", encoding="utf-8") as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
    return Table.from_rows(schema, rows, id_prefix=f"{path.stem}-")
