"""Task definitions and labeled data instances.

The paper (Section 2.1) defines four tasks and calls each input object a
*data instance*: a record ``r`` for error detection and data imputation, an
attribute pair ``(j, j')`` for schema matching, and a record pair
``(r, r')`` for entity matching.  The classes here couple each instance with
its ground-truth label; the label never reaches an LLM — it lives only in
the evaluation harness.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.data.records import AttributePair, Record, RecordPair
from repro.data.schema import Schema
from repro.errors import DatasetError


class Task(enum.Enum):
    """The four data preprocessing tasks studied in the paper."""

    ERROR_DETECTION = "error_detection"
    DATA_IMPUTATION = "data_imputation"
    SCHEMA_MATCHING = "schema_matching"
    ENTITY_MATCHING = "entity_matching"

    @property
    def short_name(self) -> str:
        return {
            Task.ERROR_DETECTION: "ED",
            Task.DATA_IMPUTATION: "DI",
            Task.SCHEMA_MATCHING: "SM",
            Task.ENTITY_MATCHING: "EM",
        }[self]

    @property
    def is_binary(self) -> bool:
        """Whether the task's answer is yes/no (scored with F1)."""
        return self is not Task.DATA_IMPUTATION

    @property
    def metric_name(self) -> str:
        """Accuracy for DI, F1 for the binary tasks — as in the paper."""
        return "accuracy" if self is Task.DATA_IMPUTATION else "f1"


@dataclass
class EDInstance:
    """Error detection: is cell ``record[target_attribute]`` erroneous?"""

    record: Record
    target_attribute: str
    label: bool
    clean_value: str | None = None  # what the cell should have been, if erroneous
    instance_id: str = ""

    task = Task.ERROR_DETECTION


@dataclass
class DIInstance:
    """Data imputation: infer the missing value of ``target_attribute``.

    ``record`` has the target cell already blanked; ``true_value`` is the
    held-out ground truth.
    """

    record: Record
    target_attribute: str
    true_value: str
    instance_id: str = ""

    task = Task.DATA_IMPUTATION

    def __post_init__(self) -> None:
        if self.record[self.target_attribute] is not None:
            raise DatasetError(
                f"DI instance {self.instance_id or '<unnamed>'}: target cell "
                f"{self.target_attribute!r} must be missing in the record"
            )


@dataclass
class SMInstance:
    """Schema matching: do attributes ``pair.left`` and ``pair.right`` refer
    to the same real-world attribute?"""

    pair: AttributePair
    label: bool
    instance_id: str = ""

    task = Task.SCHEMA_MATCHING


@dataclass
class EMInstance:
    """Entity matching: do ``pair.left`` and ``pair.right`` refer to the same
    real-world entity?"""

    pair: RecordPair
    label: bool
    instance_id: str = ""

    task = Task.ENTITY_MATCHING


Instance = Union[EDInstance, DIInstance, SMInstance, EMInstance]


@dataclass
class PreprocessingDataset:
    """A named benchmark: test instances plus a pool for few-shot examples.

    ``fewshot_pool`` mirrors the paper's setup where a handful of instances
    are manually selected and labeled as few-shot examples (Section 3.2);
    it is disjoint from ``instances`` so evaluation never scores an example
    the model was conditioned on.
    """

    name: str
    task: Task
    instances: list[Instance]
    fewshot_pool: list[Instance] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        for inst in list(self.instances) + list(self.fewshot_pool):
            if inst.task is not self.task:
                raise DatasetError(
                    f"dataset {self.name!r} declared task {self.task} but "
                    f"contains a {inst.task} instance"
                )

    def __len__(self) -> int:
        return len(self.instances)

    def sample_fewshot(self, k: int, seed: int = 0) -> list[Instance]:
        """Deterministically sample ``k`` few-shot examples from the pool.

        The paper uses 3 examples for SM and 10 for the other tasks; the
        examples are hand-picked, and a human demonstrating a yes/no task
        always shows both classes — so for binary tasks the sample is
        stratified (roughly half positives) whenever the pool allows.
        """
        if k <= 0:
            return []
        if k >= len(self.fewshot_pool):
            return list(self.fewshot_pool)
        rng = random.Random(seed)
        if self.task is Task.DATA_IMPUTATION:
            return rng.sample(self.fewshot_pool, k)
        positives = [i for i in self.fewshot_pool if i.label]
        negatives = [i for i in self.fewshot_pool if not i.label]
        n_positive = min(max(1, k // 2), len(positives))
        n_negative = min(k - n_positive, len(negatives))
        picked = rng.sample(positives, n_positive)
        picked += rng.sample(negatives, n_negative)
        if len(picked) < k:
            remaining = [
                i for i in self.fewshot_pool
                if all(i is not p for p in picked)
            ]
            picked += rng.sample(remaining, min(k - len(picked), len(remaining)))
        rng.shuffle(picked)
        return picked

    @property
    def positive_rate(self) -> float:
        """Fraction of positive labels among binary instances (0.0 for DI)."""
        if self.task is Task.DATA_IMPUTATION or not self.instances:
            return 0.0
        positives = sum(1 for inst in self.instances if inst.label)
        return positives / len(self.instances)

    def subset(self, n: int, seed: int = 0) -> PreprocessingDataset:
        """A smaller dataset with ``n`` instances sampled deterministically.

        Useful for quick experiments and tests; preserves the few-shot pool.
        """
        if n >= len(self.instances):
            return self
        rng = random.Random(seed)
        picked = rng.sample(self.instances, n)
        return PreprocessingDataset(
            name=self.name,
            task=self.task,
            instances=picked,
            fewshot_pool=list(self.fewshot_pool),
            description=self.description,
        )


def ground_truth_labels(instances: Sequence[Instance]) -> list[bool | str]:
    """Extract the label / true value of each instance, in order."""
    labels: list[bool | str] = []
    for inst in instances:
        if isinstance(inst, DIInstance):
            labels.append(inst.true_value)
        else:
            labels.append(inst.label)
    return labels


def schema_of(instance: Instance) -> Schema:
    """The (left) schema an instance's textual content lives in."""
    if isinstance(instance, (EDInstance, DIInstance)):
        return instance.record.schema
    if isinstance(instance, EMInstance):
        return instance.pair.left.schema
    if isinstance(instance, SMInstance):
        return Schema.from_names("attribute_pair", ["name", "description"])
    raise DatasetError(f"unknown instance type: {type(instance).__name__}")
