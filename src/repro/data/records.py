"""Records, record pairs, attribute pairs, and tables.

A :class:`Record` is a mapping from attribute names to cell values, tied to a
:class:`~repro.data.schema.Schema`.  Missing values are represented by
``None`` (rendered as ``???`` by contextualization, paper Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.data.schema import Attribute, AttrType, Schema
from repro.errors import RecordError, SchemaError

#: Cell values are numbers, strings, or missing.
CellValue = float | int | str | None


def coerce_cell(value: Any, attr: Attribute) -> CellValue:
    """Coerce a raw value into a cell value consistent with ``attr``.

    Strings are stripped; empty strings become ``None`` (missing).  Numeric
    attributes accept ints/floats and numeric-looking strings; anything else
    is kept as text so that *erroneous* cells (the subject of error
    detection) can be represented faithfully.
    """
    if value is None:
        return None
    if isinstance(value, str):
        value = value.strip()
        if value == "" or value == "???":
            return None
        if attr.type.is_numeric:
            try:
                as_float = float(value)
            except ValueError:
                return value  # an out-of-type value is data, not an error here
            return int(as_float) if as_float.is_integer() else as_float
        return value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        if attr.type.is_numeric:
            return value
        return str(value)
    raise RecordError(
        f"unsupported cell value {value!r} of type {type(value).__name__} "
        f"for attribute {attr.name!r}"
    )


@dataclass
class Record:
    """A single row of a relational table.

    Access cells with ``record[name]``; missing cells read as ``None``.
    Records are mutable (error injection and imputation update them) but
    always validated against their schema on construction and assignment.
    """

    schema: Schema
    values: dict[str, CellValue] = field(default_factory=dict)
    record_id: str = ""

    def __post_init__(self) -> None:
        coerced: dict[str, CellValue] = {}
        for name, value in self.values.items():
            if name not in self.schema:
                raise RecordError(
                    f"value for unknown attribute {name!r} "
                    f"(schema {self.schema.name!r})"
                )
            coerced[name] = coerce_cell(value, self.schema[name])
        # Ensure every schema attribute has a slot so iteration is total.
        for attr in self.schema:
            coerced.setdefault(attr.name, None)
        self.values = coerced

    def __getitem__(self, name: str) -> CellValue:
        if name not in self.schema:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {name!r}"
            )
        return self.values.get(name)

    def __setitem__(self, name: str, value: Any) -> None:
        if name not in self.schema:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {name!r}"
            )
        self.values[name] = coerce_cell(value, self.schema[name])

    def __contains__(self, name: object) -> bool:
        return name in self.schema

    def __iter__(self) -> Iterator[tuple[str, CellValue]]:
        for attr in self.schema:
            yield attr.name, self.values.get(attr.name)

    def is_missing(self, name: str) -> bool:
        """Whether the cell for ``name`` is missing."""
        return self[name] is None

    @property
    def missing_attributes(self) -> tuple[str, ...]:
        return tuple(name for name, value in self if value is None)

    def copy(self) -> Record:
        """A deep-enough copy: cell values are immutable scalars."""
        return Record(
            schema=self.schema, values=dict(self.values), record_id=self.record_id
        )

    def project(self, names: list[str] | tuple[str, ...]) -> Record:
        """Record restricted to ``names`` (feature selection, Section 3.4)."""
        projected_schema = self.schema.project(names)
        return Record(
            schema=projected_schema,
            values={n: self.values.get(n) for n in names},
            record_id=self.record_id,
        )

    def with_missing(self, name: str) -> Record:
        """Copy of this record with the cell for ``name`` blanked out.

        Used to pose data-imputation questions without mutating the source.
        """
        out = self.copy()
        out.values[name] = None
        return out

    def to_dict(self) -> dict[str, CellValue]:
        return {name: value for name, value in self}

    def __str__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in self)
        return f"Record({inner})"


@dataclass(frozen=True)
class RecordPair:
    """A pair of records, the unit of entity matching."""

    left: Record
    right: Record

    def __iter__(self) -> Iterator[Record]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class AttributePair:
    """A pair of attributes from two schemas, the unit of schema matching."""

    left: Attribute
    right: Attribute

    def __iter__(self) -> Iterator[Attribute]:
        yield self.left
        yield self.right


class Table:
    """A schema plus an ordered collection of records."""

    def __init__(self, schema: Schema, records: list[Record] | None = None):
        self.schema = schema
        self._records: list[Record] = []
        for record in records or []:
            self.append(record)

    def append(self, record: Record) -> None:
        if record.schema.attribute_names != self.schema.attribute_names:
            raise RecordError(
                f"record schema {record.schema.attribute_names} does not match "
                f"table schema {self.schema.attribute_names}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    @property
    def records(self) -> tuple[Record, ...]:
        return tuple(self._records)

    def column(self, name: str) -> list[CellValue]:
        """All values of attribute ``name`` in row order."""
        if name not in self.schema:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {name!r}"
            )
        return [r[name] for r in self._records]

    def distinct(self, name: str) -> set[CellValue]:
        """Distinct non-missing values of attribute ``name``."""
        return {v for v in self.column(name) if v is not None}

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: list[Mapping[str, Any]],
        id_prefix: str = "r",
    ) -> Table:
        """Build a table from a list of dict-like rows."""
        records = [
            Record(schema=schema, values=dict(row), record_id=f"{id_prefix}{i}")
            for i, row in enumerate(rows)
        ]
        return cls(schema, records)


def infer_schema(name: str, rows: list[Mapping[str, Any]]) -> Schema:
    """Infer a schema from raw rows: numeric if every non-missing value parses.

    Intended for loading external CSVs whose types are unknown.
    """
    if not rows:
        raise SchemaError("cannot infer a schema from zero rows")
    names: list[str] = list(rows[0].keys())
    types: dict[str, AttrType] = {}
    for attr_name in names:
        numeric = True
        saw_value = False
        for row in rows:
            value = row.get(attr_name)
            if value is None or value == "":
                continue
            saw_value = True
            try:
                float(value)
            except (TypeError, ValueError):
                numeric = False
                break
        types[attr_name] = (
            AttrType.NUMERIC if (numeric and saw_value) else AttrType.TEXT
        )
    return Schema.from_names(name, names, types)
