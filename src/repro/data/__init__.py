"""Relational data substrate: schemas, records, tables, and task instances.

This package provides the data model the paper operates on (Section 2.1):
relational tables specified by schemas, where every attribute is either
numerical (including binary) or textual (including categorical).
"""

from repro.data.schema import Attribute, AttrType, Schema
from repro.data.records import AttributePair, Record, RecordPair, Table
from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    PreprocessingDataset,
    SMInstance,
    Task,
)
from repro.data.io import (
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)

__all__ = [
    "Attribute",
    "AttrType",
    "Schema",
    "Record",
    "RecordPair",
    "AttributePair",
    "Table",
    "Task",
    "EDInstance",
    "DIInstance",
    "SMInstance",
    "EMInstance",
    "PreprocessingDataset",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
]
