"""Conformance tooling: golden snapshots, differential replay, fuzzing.

This subpackage is the repo's answer to "did that refactor change
behavior?".  Three layers, each cheaper than the last:

* :mod:`repro.testing.golden` — byte-exact recordings of full pipeline
  runs (prompts, raw replies, predictions, metrics) with a structured
  diff and a record/verify CLI (``python -m repro.eval golden``);
* :mod:`repro.testing.replay` — re-runs only the parsing stack over the
  replies a snapshot recorded, so parser refactors are validated in
  milliseconds, plus the mutation-canary loader that proves the harness
  catches single-character parser edits;
* :mod:`repro.testing.fuzz` — seeded generation of malformed replies
  (``python -m repro.eval fuzz``) checking the parser's crash-freedom
  and shape invariants.
"""

from repro.testing.fuzz import (
    OPERATORS,
    FuzzCase,
    FuzzReport,
    FuzzViolation,
    generate_case,
    run_fuzz,
)
from repro.testing.golden import (
    ALL_GOLDEN_CELLS,
    FACTORY_GOLDEN_CELLS,
    FLOW_GOLDEN_CELLS,
    GOLDEN_CELLS,
    GOLDEN_VERSION,
    RESILIENCE_GOLDEN_CELLS,
    SERVING_GOLDEN_CELLS,
    FactoryGoldenCell,
    FlowGoldenCell,
    GoldenCell,
    ResilienceGoldenCell,
    ServingGoldenCell,
    GoldenDiff,
    GoldenError,
    GoldenStore,
    capture_snapshot,
    cell_by_name,
    default_store_root,
    diff_payloads,
    flow_cell_fixture,
    render_diffs,
    write_diff_artifact,
)
from repro.testing.replay import (
    ReplayError,
    ReplayMismatch,
    ReplayReport,
    load_mutated_parsing,
    parse_outcomes,
    replay_exchanges,
    replay_snapshot,
)

__all__ = [
    "ALL_GOLDEN_CELLS",
    "FACTORY_GOLDEN_CELLS",
    "FLOW_GOLDEN_CELLS",
    "GOLDEN_CELLS",
    "GOLDEN_VERSION",
    "RESILIENCE_GOLDEN_CELLS",
    "SERVING_GOLDEN_CELLS",
    "FactoryGoldenCell",
    "FlowGoldenCell",
    "GoldenCell",
    "ResilienceGoldenCell",
    "ServingGoldenCell",
    "GoldenDiff",
    "GoldenError",
    "GoldenStore",
    "capture_snapshot",
    "cell_by_name",
    "default_store_root",
    "diff_payloads",
    "flow_cell_fixture",
    "render_diffs",
    "write_diff_artifact",
    "ReplayError",
    "ReplayMismatch",
    "ReplayReport",
    "load_mutated_parsing",
    "parse_outcomes",
    "replay_exchanges",
    "replay_snapshot",
    "OPERATORS",
    "FuzzCase",
    "FuzzReport",
    "FuzzViolation",
    "generate_case",
    "run_fuzz",
]
