"""Differential replay: re-run the parsing stack over recorded replies.

A golden snapshot (:mod:`repro.testing.golden`) stores, for every
completion call of a recorded run, the raw model reply together with the
outcome the parsing stack produced at capture time — the strict
:func:`~repro.core.parsing.parse_batch_answers` result (or the
:class:`~repro.errors.AnswerFormatError` it raised) and the lenient
:func:`~repro.core.parsing.parse_batch_answers_lenient` salvage.  The
replay runner re-feeds those replies through the *current* parser and
diffs the outcomes, so a parser refactor is checked in milliseconds
without re-running any pipeline.

The runner accepts an alternative parsing module, which is how the
mutation canary works: :func:`load_mutated_parsing` compiles
``core/parsing.py`` with a single edit applied into a throwaway module,
and the canary test asserts the replay suite *fails* against the mutant
and stays green against the real module.  That proves the harness detects
single-character parser drift rather than vacuously passing.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType

from repro.core import parsing as _live_parsing
from repro.data.instances import Task
from repro.errors import AnswerFormatError, ReproError
from repro.obs.manifest import jsonable


class ReplayError(ReproError):
    """A recorded reply could not be replayed (malformed snapshot, bad mutant)."""


def parse_outcomes(
    reply: str,
    task: Task,
    expected: int,
    parsing_module: ModuleType | None = None,
) -> dict:
    """Run the strict and lenient parser stacks over one recorded reply.

    Returns a JSON-native record — ``{"strict": {"ok": [...]}}`` or
    ``{"strict": {"error": "..."}}`` plus ``{"lenient": [...]}`` — so the
    result compares ``==`` against what a snapshot loaded from disk holds.
    Any exception other than :class:`AnswerFormatError` propagates: the
    strict parser raising something else is itself a conformance bug.
    """
    module = parsing_module if parsing_module is not None else _live_parsing
    strict: dict
    try:
        strict = {"ok": module.parse_batch_answers(reply, task, expected)}
    except AnswerFormatError as err:
        strict = {"error": str(err)}
    lenient = module.parse_batch_answers_lenient(reply, task, expected)
    return {"strict": jsonable(strict), "lenient": jsonable(lenient)}


@dataclass(frozen=True)
class ReplayMismatch:
    """One recorded reply whose replayed parse diverged from the recording."""

    exchange: int
    layer: str          # "strict" or "lenient"
    recorded: object
    replayed: object
    reply: str

    def render(self) -> str:
        preview = self.reply if len(self.reply) <= 240 else self.reply[:240] + "…"
        return (
            f"exchange[{self.exchange}].{self.layer}:\n"
            f"  recorded: {self.recorded!r}\n"
            f"  replayed: {self.replayed!r}\n"
            f"  reply:    {preview!r}"
        )


@dataclass
class ReplayReport:
    """The outcome of replaying one snapshot's recorded replies."""

    snapshot: str
    n_exchanges: int
    mismatches: list[ReplayMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return (
                f"replay {self.snapshot}: OK "
                f"({self.n_exchanges} recorded replies)"
            )
        head = (
            f"replay {self.snapshot}: {len(self.mismatches)} mismatch(es) "
            f"over {self.n_exchanges} recorded replies"
        )
        return "\n".join([head] + [m.render() for m in self.mismatches])


def replay_exchanges(
    exchanges: list[dict],
    task: Task,
    snapshot: str = "<exchanges>",
    parsing_module: ModuleType | None = None,
) -> ReplayReport:
    """Replay recorded exchange dicts through the (given) parsing stack."""
    report = ReplayReport(snapshot=snapshot, n_exchanges=len(exchanges))
    for index, exchange in enumerate(exchanges):
        try:
            reply = exchange["reply"]
            expected = exchange["n_expected"]
            recorded_strict = exchange["strict"]
            recorded_lenient = exchange["lenient"]
        except (TypeError, KeyError) as err:
            raise ReplayError(
                f"snapshot {snapshot!r}: exchange {index} is missing "
                f"field {err}"
            ) from err
        outcome = parse_outcomes(reply, task, expected, parsing_module)
        if outcome["strict"] != recorded_strict:
            report.mismatches.append(ReplayMismatch(
                exchange=index, layer="strict",
                recorded=recorded_strict, replayed=outcome["strict"],
                reply=reply,
            ))
        if outcome["lenient"] != recorded_lenient:
            report.mismatches.append(ReplayMismatch(
                exchange=index, layer="lenient",
                recorded=recorded_lenient, replayed=outcome["lenient"],
                reply=reply,
            ))
    return report


def replay_snapshot(
    payload: dict,
    snapshot: str = "<snapshot>",
    parsing_module: ModuleType | None = None,
) -> ReplayReport:
    """Replay one golden snapshot payload (as stored on disk)."""
    try:
        task = Task[payload["manifest"]["dataset"]["task"]]
        exchanges = payload["exchanges"]
    except (TypeError, KeyError) as err:
        raise ReplayError(
            f"snapshot {snapshot!r} is not a golden payload: missing {err}"
        ) from err
    return replay_exchanges(
        exchanges, task, snapshot=snapshot, parsing_module=parsing_module
    )


def load_mutated_parsing(old: str, new: str) -> ModuleType:
    """Compile ``core/parsing.py`` with ``old`` → ``new`` (first occurrence).

    The returned throwaway module shares the real
    :class:`~repro.errors.AnswerFormatError` and
    :class:`~repro.data.instances.Task` (its imports resolve normally), so
    it drops into :func:`parse_outcomes` as a faithful single-edit mutant
    of the production parser.
    """
    path = Path(_live_parsing.__file__)
    source = path.read_text(encoding="utf-8")
    if old not in source:
        raise ReplayError(
            f"mutation target {old!r} does not occur in {path.name}"
        )
    mutated = source.replace(old, new, 1)
    if mutated == source:
        raise ReplayError(f"mutation {old!r} -> {new!r} is a no-op")
    name = f"repro.core.parsing__mutant{next(_MUTANT_COUNTER)}"
    module = ModuleType(name)
    module.__file__ = f"{path}<mutant>"
    # Dataclass machinery resolves string annotations through sys.modules
    # at class-creation time, so the mutant must be registered before exec.
    sys.modules[name] = module
    try:
        exec(compile(mutated, f"{path.name}<mutant>", "exec"), module.__dict__)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


_MUTANT_COUNTER = itertools.count()
