"""Golden snapshot store: byte-exact recordings of pipeline behavior.

A *golden cell* is one (task, config) point — dataset, size, model, seed,
batching, concurrency — small enough to run in well under a second but
rich enough to exercise prompt assembly, batching, the simulated model,
answer parsing, salvage, scoring, and accounting.  Capturing a cell runs
the full pipeline (observability on, raw replies kept) and freezes:

* the run manifest (config, model profile, dataset identity, evaluation
  metrics, deterministic metrics snapshot, execution report) minus the
  span trace, which belongs to the observability tests;
* every completion call as an *exchange*: the exact prompt messages, the
  raw simulated reply, the expected answer count, and the strict/lenient
  parse outcomes of that reply (the differential-replay corpus);
* the final predictions.

Snapshots are canonical JSON (:func:`repro.obs.manifest.canonical_json`):
equal behavior serializes to identical bytes, so *any* drift — one token
of a prompt, one field of the cost model, one parsed answer — shows up as
a structured diff with a JSON path.  ``python -m repro.eval golden``
verifies; ``--update`` re-records after an intentional behavior change.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.errors import ReproError
from repro.obs.manifest import canonical_json
from repro.testing.replay import parse_outcomes

GOLDEN_VERSION = 1

#: where ``GOLDEN_DIFF.txt`` (the CI failure artifact) is written
GOLDEN_DIFF_ENV = "REPRO_GOLDEN_DIFF_PATH"


class GoldenError(ReproError):
    """A golden snapshot could not be captured, stored, or compared."""


@dataclass(frozen=True)
class GoldenCell:
    """One recorded (task, config) point of the pipeline's behavior."""

    name: str
    dataset: str
    size: int
    model: str = "gpt-3.5"
    seed: int = 0
    batching: str = "random"
    concurrency: int = 1

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            model=self.model,
            seed=self.seed,
            batching=self.batching,
            concurrency=self.concurrency,
            observability=True,
        )


#: the recorded cells: all four tasks, both batching modes, a weak model
#: (rich in format violations, so the replay corpus covers the lenient
#: and salvage paths), and a concurrent run
GOLDEN_CELLS: tuple[GoldenCell, ...] = (
    GoldenCell("ed_adult_gpt35", dataset="adult", size=40),
    GoldenCell("ed_hospital_vicuna", dataset="hospital", size=24,
               model="vicuna-13b"),
    GoldenCell("di_restaurant_gpt4", dataset="restaurant", size=30,
               model="gpt-4"),
    GoldenCell("sm_synthea_gpt35", dataset="synthea", size=40),
    GoldenCell("em_beer_gpt4_cluster", dataset="beer", size=40,
               model="gpt-4", batching="cluster"),
    GoldenCell("em_amazon_google_conc2", dataset="amazon_google", size=40,
               concurrency=2),
)


@dataclass(frozen=True)
class ServingGoldenCell:
    """One recorded serving trace: tenants, budgets, scheduler, answers.

    Mirrors :class:`GoldenCell` for the online layer — a fixed synthetic
    multi-tenant trace replayed through the full admission → coalescer →
    executor path with the scheduler's config pinned, freezing batch
    composition, per-request answers and sources, typed rejections, and
    the deterministic metrics registry.  Budgets are deliberately tight
    enough that the fastest tenant draws some ``tenant_rpm`` rejections,
    so the snapshot exercises the refusal path too.
    """

    name: str
    dataset: str
    size: int
    n_requests: int
    n_tenants: int = 3
    model: str = "gpt-3.5"
    seed: int = 0
    concurrency: int = 2
    max_batch: int = 8
    max_wait_s: float = 2.0
    coalesce: str = "window"
    rate_rps: float = 10.0
    requests_per_minute: int = 40
    tokens_per_minute: int = 100_000


SERVING_GOLDEN_CELLS: tuple[ServingGoldenCell, ...] = (
    ServingGoldenCell(
        "serving_ed_adult_3tenants", dataset="adult", size=60,
        n_requests=150,
    ),
)


@dataclass(frozen=True)
class FlowGoldenCell:
    """One recorded two-stage flow: ED → DI with staged degradation.

    The cell plants a marker string in one cell of a small Adult table
    and garbles every model reply whose prompt mentions it
    (:class:`~repro.llm.faults.GarblingClient`), so the detect stage's
    degradation ladder quarantines exactly that instance; the same row
    also has its imputation target blanked, so the impute stage must
    visibly *exclude* the row rather than fill it.  The snapshot freezes
    the full flow payload — per-stage prompts and raw replies, flagged /
    imputed cells, the quarantine, its downstream exclusion, and the
    provenance trail — so any drift in cross-stage propagation is a
    golden diff, not a silent behavior change.
    """

    name: str
    dataset: str = "adult"
    rows: int = 12
    model: str = "gpt-3.5"
    seed: int = 0
    detect_attribute: str = "occupation"
    impute_attribute: str = "workclass"
    poison_row: int = 5
    marker: str = "!!GARBLED-CELL!!"
    missing_rows: tuple[int, ...] = (2, 5, 8)


FLOW_GOLDEN_CELLS: tuple[FlowGoldenCell, ...] = (
    FlowGoldenCell("flow_ed_di_adult"),
)


@dataclass(frozen=True)
class FactoryGoldenCell:
    """One recorded pipeline run over a schema-factory dataset.

    Mirrors :class:`GoldenCell` with the dataset swapped for a factory
    *preset* (:func:`repro.factory.presets.preset`) — the schema lives in
    code, not YAML, so capture needs no YAML parser.  The snapshot pins
    the whole chain schema → streamed rows → injected errors → instances
    → prompts → replies → parsing: a drift in any distribution sampler,
    corruption family, or the OCR channel shows up as a golden diff.  The
    schema fingerprint is frozen inside the cell dict, so even a change
    that happens to produce identical instances is still caught as an
    (intentional) schema revision.
    """

    name: str
    preset: str
    size: int
    model: str = "gpt-3.5"
    seed: int = 0
    batching: str = "random"
    concurrency: int = 1

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            model=self.model,
            seed=self.seed,
            batching=self.batching,
            concurrency=self.concurrency,
            observability=True,
        )


#: factory cells: ED over a schema-generated table (all error families)
#: and DI over the OCR noisy-document channel
FACTORY_GOLDEN_CELLS: tuple[FactoryGoldenCell, ...] = (
    FactoryGoldenCell("factory_ed_schema_gpt35", preset="adult_replica",
                      size=32),
    FactoryGoldenCell("factory_di_ocr_gpt4", preset="ocr_invoices",
                      size=24, model="gpt-4"),
)

@dataclass(frozen=True)
class ResilienceGoldenCell:
    """One recorded run through a scripted backend brownout.

    The cell drives an ED run through the full resilience stack — a
    failover router over a degraded primary and a secondary that shares
    the blackout window — with the adaptive executor on.  That one run
    exercises every resilience mechanism: the latency phase produces
    hedges (the secondary is still healthy then), the 429 storm produces
    throttle signals and AIMD narrowing, and the shared blackout exhausts
    failover *and* retries, so the degradation ladder quarantines the
    instances caught inside it and the lane breakers cycle.  The snapshot
    freezes predictions, the quarantine set, the manifest (including the
    ``backend_health`` and ``breaker_transitions`` evaluation keys), the
    per-backend degradation counters, and the router's hedge/failover
    accounting — any drift in adaptive scheduling is a golden diff.
    """

    name: str
    dataset: str = "adult"
    size: int = 90
    model: str = "gpt-3.5"
    seed: int = 0
    concurrency: int = 2

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            model=self.model,
            seed=self.seed,
            concurrency=self.concurrency,
            observability=True,
            degradation="ladder",
        )


RESILIENCE_GOLDEN_CELLS: tuple[ResilienceGoldenCell, ...] = (
    ResilienceGoldenCell("resilience_ed_brownout"),
)

#: any recorded cell kind — the union the store and CLI dispatch over
AnyGoldenCell = (
    GoldenCell | ServingGoldenCell | FlowGoldenCell | FactoryGoldenCell
    | ResilienceGoldenCell
)

#: every recorded cell: offline, serving, flow, factory, and resilience
ALL_GOLDEN_CELLS: tuple[AnyGoldenCell, ...] = (
    GOLDEN_CELLS + SERVING_GOLDEN_CELLS + FLOW_GOLDEN_CELLS
    + FACTORY_GOLDEN_CELLS + RESILIENCE_GOLDEN_CELLS
)


def cell_by_name(name: str) -> AnyGoldenCell:
    for cell in ALL_GOLDEN_CELLS:
        if cell.name == name:
            return cell
    known = ", ".join(cell.name for cell in ALL_GOLDEN_CELLS)
    raise GoldenError(f"unknown golden cell {name!r}; known cells: {known}")


def flow_cell_fixture(cell: FlowGoldenCell):
    """The client, config, graph, and poisoned table for one flow cell.

    Shared between snapshot capture and the flow tests, so both exercise
    the exact same scenario.
    """
    from repro.core.config import PipelineConfig
    from repro.data.records import Table
    from repro.flow.graph import FlowGraph, StageNode
    from repro.flow.tables import dataset_table
    from repro.llm.faults import GarblingClient
    from repro.llm.simulated import SimulatedLLM

    base = dataset_table(cell.dataset, size=4 * cell.rows, seed=cell.seed)
    records = [record.copy() for record in list(base)[: cell.rows]]
    table = Table(base.schema, records)
    table[cell.poison_row][cell.detect_attribute] = cell.marker
    for row in cell.missing_rows:
        table[row][cell.impute_attribute] = None
    graph = FlowGraph(
        [
            StageNode.make(
                "detect", "detect_errors",
                inputs={"table": "inputs.dirty"},
                params={"attributes": [cell.detect_attribute]},
            ),
            StageNode.make(
                "impute", "impute_missing",
                inputs={"table": "detect"},
                params={"attribute": cell.impute_attribute},
            ),
        ],
        inputs=("dirty",),
    )
    client = GarblingClient(
        SimulatedLLM(cell.model, seed=cell.seed), triggers=[cell.marker]
    )
    config = PipelineConfig(
        model=cell.model, seed=cell.seed, degradation="ladder"
    )
    return client, config, graph, table


def _capture_flow_snapshot(cell: FlowGoldenCell) -> dict:
    """Run the cell's two-stage flow and freeze the full flow payload."""
    from repro.flow.engine import FlowEngine

    client, config, graph, table = flow_cell_fixture(cell)
    result = FlowEngine(client, config).run(
        graph, {"dirty": table}, keep_raw=True
    )
    payload = {
        "golden_version": GOLDEN_VERSION,
        "cell": {**dataclasses.asdict(cell), "kind": "flow"},
        "flow": result.payload(include_timing=True),
        "n_garbled": client.n_garbled,
    }
    return json.loads(canonical_json(payload))


def _capture_serving_snapshot(cell: ServingGoldenCell) -> dict:
    """Replay the cell's serving trace and freeze the full report."""
    from repro.core.config import PipelineConfig
    from repro.datasets import load_dataset
    from repro.llm.simulated import SimulatedLLM
    from repro.serving import (
        PreprocessingService,
        ServeConfig,
        TenantBudget,
        default_tenants,
        generate_trace,
    )

    dataset = load_dataset(cell.dataset, size=cell.size, seed=cell.seed)
    tenants = default_tenants(
        cell.n_tenants, cell.n_requests, rate_rps=cell.rate_rps
    )
    trace = generate_trace(dataset, tenants, seed=cell.seed)
    service = PreprocessingService(
        SimulatedLLM(cell.model, seed=cell.seed),
        dataset,
        [
            TenantBudget(
                name=spec.name,
                requests_per_minute=cell.requests_per_minute,
                tokens_per_minute=cell.tokens_per_minute,
            )
            for spec in tenants
        ],
        serve_config=ServeConfig(
            max_batch=cell.max_batch,
            max_wait_s=cell.max_wait_s,
            coalesce=cell.coalesce,
        ),
        pipeline_config=PipelineConfig(
            model=cell.model, seed=cell.seed, concurrency=cell.concurrency,
        ),
    )
    report = service.serve(trace)
    payload = {
        "golden_version": GOLDEN_VERSION,
        "cell": {**dataclasses.asdict(cell), "kind": "serving"},
        "serve": report.payload(),
    }
    return json.loads(canonical_json(payload))


def _pipeline_payload(cell_name: str, cell_dict: dict, dataset, run) -> dict:
    """Freeze one pipeline run (manifest, exchanges, predictions, quarantine).

    Shared between classic :class:`GoldenCell` capture and the factory
    cells, which differ only in how the dataset and the cell dict are
    built.
    """
    if run.manifest is None or run.result is None:
        raise GoldenError(
            f"cell {cell_name!r} produced no manifest/result — "
            f"observability or keep_raw was lost on the way down"
        )
    manifest = run.manifest.to_dict()
    manifest.pop("trace", None)  # span drift belongs to the obs tests
    exchanges = []
    for recorded in run.result.exchanges:
        outcome = parse_outcomes(recorded.reply, dataset.task, recorded.n_expected)
        exchanges.append({
            "prompt": [
                {"role": role, "content": content}
                for role, content in recorded.messages
            ],
            "reply": recorded.reply,
            "n_expected": recorded.n_expected,
            "strict": outcome["strict"],
            "lenient": outcome["lenient"],
        })
    payload = {
        "golden_version": GOLDEN_VERSION,
        "cell": cell_dict,
        "manifest": manifest,
        "exchanges": exchanges,
        "predictions": run.result.predictions,
        # Quarantined instances (index/reason/detail).  Empty for every
        # recorded cell today (they run with degradation off); the field
        # exists so a ladder regression that starts quarantining — or
        # stops — shows up as golden drift, not silently.
        "quarantine": [
            {"index": q.index, "reason": q.reason, "detail": q.detail}
            for q in run.result.quarantine
        ],
    }
    # One normalization pass so in-memory payloads compare == against
    # payloads read back from disk (tuples->lists, enums->names, ...).
    return json.loads(canonical_json(payload))


def _capture_factory_snapshot(cell: FactoryGoldenCell) -> dict:
    """Generate the cell's preset schema and freeze a full pipeline run."""
    from repro.eval.harness import evaluate_pipeline
    from repro.factory import SchemaGenerator, preset
    from repro.llm.simulated import SimulatedLLM

    schema = preset(cell.preset)
    generator = SchemaGenerator(schema)
    dataset = generator.generate(size=cell.size, seed=cell.seed)
    run = evaluate_pipeline(
        SimulatedLLM(cell.model, seed=cell.seed),
        cell.config(),
        dataset,
        keep_raw=True,
    )
    cell_dict = {
        **dataclasses.asdict(cell),
        "kind": "factory",
        "fingerprint": schema.fingerprint,
    }
    return _pipeline_payload(cell.name, cell_dict, dataset, run)


def resilience_cell_fixture(cell: ResilienceGoldenCell):
    """The degraded failover stack for one resilience cell.

    Shared between snapshot capture and the resilience tests.  Returns
    ``(client, executor_config, primary, secondary)`` where ``client`` is
    the failover router and ``primary``/``secondary`` the degraded
    wrappers underneath (exposed so callers can read their counters).
    """
    from repro.core.executor import ExecutorConfig
    from repro.llm.faults import DegradedClient
    from repro.llm.simulated import SimulatedLLM
    from repro.resilience.config import ResilienceConfig
    from repro.resilience.degradation import DegradationPlan, Episode
    from repro.resilience.router import FailoverClient

    # The scripted brownout: throttle (failovers, throttle signals), then
    # slow (hedges win), then a blackout both backends share — long
    # enough that retries, breaker cooldowns, and the bisection cascade
    # all exhaust inside it, so the ladder quarantines what the outage
    # caught.  Storm before slowdown: a 6x-slowed call fast-forwards its
    # lane far past a short storm window, so the reverse order would
    # leave the throttle path unexercised.
    blackout = Episode(kind="blackout", start_s=20.0, duration_s=600.0,
                       intensity=1.0, retry_after_s=1.0)
    primary_plan = DegradationPlan(seed=cell.seed, episodes=(
        # Mild storm: throttles a call or two (exercising the throttle
        # signal and failover paths) without two consecutive failures,
        # which would open the primary's circuit and skip the brownout.
        Episode(kind="rate_limit_storm", start_s=2.0, duration_s=6.0,
                intensity=0.4, retry_after_s=2.0),
        Episode(kind="latency_brownout", start_s=8.0, duration_s=12.0,
                intensity=1.0, latency_factor=6.0),
        blackout,
    ))
    secondary_plan = DegradationPlan(seed=cell.seed + 1, episodes=(blackout,))
    primary = DegradedClient(
        SimulatedLLM(cell.model, seed=cell.seed),
        primary_plan, backend_name="primary",
    )
    secondary = DegradedClient(
        SimulatedLLM(cell.model, seed=cell.seed + 1),
        secondary_plan, backend_name="secondary",
    )
    resilience = ResilienceConfig()
    client = FailoverClient(
        [("primary", 0, primary), ("secondary", 1, secondary)], resilience
    )
    return client, ExecutorConfig(resilience=resilience), primary, secondary


def _degradation_counters(client) -> dict:
    """The scripted-degradation counters of one DegradedClient."""
    return {
        "n_calls": client.n_calls,
        "n_throttled": client.n_throttled,
        "n_overloads": client.n_overloads,
        "n_blackouts": client.n_blackouts,
        "n_slowed": client.n_slowed,
    }


def _capture_resilience_snapshot(cell: ResilienceGoldenCell) -> dict:
    """Run the cell's brownout scenario and freeze the adaptive behavior."""
    from repro.datasets import load_dataset
    from repro.eval.harness import evaluate_pipeline

    client, executor_config, primary, secondary = resilience_cell_fixture(cell)
    dataset = load_dataset(cell.dataset, size=cell.size, seed=cell.seed)
    run = evaluate_pipeline(
        client, cell.config(), dataset, keep_raw=True,
        executor_config=executor_config,
    )
    payload = _pipeline_payload(
        cell.name, {**dataclasses.asdict(cell), "kind": "resilience"},
        dataset, run,
    )
    payload["degradation"] = {
        "primary": _degradation_counters(primary),
        "secondary": _degradation_counters(secondary),
    }
    payload["router"] = client.health_payload()
    return json.loads(canonical_json(payload))


def capture_snapshot(cell: AnyGoldenCell) -> dict:
    """Run ``cell`` end to end and freeze its behavior as a JSON payload."""
    if isinstance(cell, ServingGoldenCell):
        return _capture_serving_snapshot(cell)
    if isinstance(cell, ResilienceGoldenCell):
        return _capture_resilience_snapshot(cell)
    if isinstance(cell, FlowGoldenCell):
        return _capture_flow_snapshot(cell)
    if isinstance(cell, FactoryGoldenCell):
        return _capture_factory_snapshot(cell)
    # Imported here so the conformance layer stays importable without
    # dragging the dataset/LLM stack in at module-import time.
    from repro.datasets import load_dataset
    from repro.eval.harness import evaluate_pipeline
    from repro.llm.simulated import SimulatedLLM

    dataset = load_dataset(cell.dataset, size=cell.size, seed=cell.seed)
    run = evaluate_pipeline(
        SimulatedLLM(cell.model, seed=cell.seed),
        cell.config(),
        dataset,
        keep_raw=True,
    )
    return _pipeline_payload(cell.name, dataclasses.asdict(cell), dataset, run)


@dataclass(frozen=True)
class GoldenDiff:
    """One divergence between a stored snapshot and fresh behavior."""

    path: str
    kind: str        # "changed" | "missing" | "added" | "type"
    expected: object
    actual: object

    def render(self) -> str:
        def clip(value: object) -> str:
            text = repr(value)
            return text if len(text) <= 160 else text[:160] + "…"
        return (
            f"{self.path} [{self.kind}]\n"
            f"  golden:  {clip(self.expected)}\n"
            f"  current: {clip(self.actual)}"
        )


def diff_payloads(expected: object, actual: object, path: str = "$") -> list[GoldenDiff]:
    """Structured diff of two JSON payloads, one entry per divergent path."""
    if type(expected) is not type(actual) and not (
        isinstance(expected, (int, float)) and isinstance(actual, (int, float))
        and not isinstance(expected, bool) and not isinstance(actual, bool)
    ):
        return [GoldenDiff(path, "type", expected, actual)]
    if isinstance(expected, dict):
        diffs: list[GoldenDiff] = []
        for key in sorted(expected.keys() | actual.keys()):
            sub = f"{path}.{key}"
            if key not in actual:
                diffs.append(GoldenDiff(sub, "missing", expected[key], None))
            elif key not in expected:
                diffs.append(GoldenDiff(sub, "added", None, actual[key]))
            else:
                diffs.extend(diff_payloads(expected[key], actual[key], sub))
        return diffs
    if isinstance(expected, list):
        diffs = []
        for index in range(max(len(expected), len(actual))):
            sub = f"{path}[{index}]"
            if index >= len(actual):
                diffs.append(GoldenDiff(sub, "missing", expected[index], None))
            elif index >= len(expected):
                diffs.append(GoldenDiff(sub, "added", None, actual[index]))
            else:
                diffs.extend(diff_payloads(expected[index], actual[index], sub))
        return diffs
    if expected != actual:
        return [GoldenDiff(path, "changed", expected, actual)]
    return []


def render_diffs(name: str, diffs: list[GoldenDiff], limit: int = 25) -> str:
    """A readable drift report for one snapshot."""
    if not diffs:
        return f"golden {name}: OK"
    head = f"golden {name}: DRIFT at {len(diffs)} path(s)"
    body = [diff.render() for diff in diffs[:limit]]
    if len(diffs) > limit:
        body.append(f"… and {len(diffs) - limit} more path(s)")
    tail = (
        "If this change is intentional, re-record with "
        "`python -m repro.eval golden --update`."
    )
    return "\n".join([head] + body + [tail])


def default_store_root() -> Path:
    """The checked-in snapshot directory (resolved from this file)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "snapshots"


class GoldenStore:
    """Canonical-JSON snapshot files, one per golden cell."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_store_root()

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def save(self, name: str, payload: dict) -> Path:
        target = self.path_for(name)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(canonical_json(payload), encoding="utf-8")
        return target

    def load(self, name: str) -> dict:
        source = self.path_for(name)
        try:
            text = source.read_text(encoding="utf-8")
        except FileNotFoundError as err:
            raise GoldenError(
                f"no golden snapshot {name!r} at {source} — record it with "
                f"`python -m repro.eval golden --update`"
            ) from err
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise GoldenError(f"snapshot {source} is not valid JSON: {err}") from err
        if payload.get("golden_version") != GOLDEN_VERSION:
            raise GoldenError(
                f"snapshot {source} has version "
                f"{payload.get('golden_version')!r}; this build reads "
                f"{GOLDEN_VERSION} — re-record with --update"
            )
        if text != canonical_json(payload):
            raise GoldenError(
                f"snapshot {source} is not canonical JSON — it was edited "
                f"by hand; re-record with --update"
            )
        return payload

    def verify(self, name: str, actual: dict) -> list[GoldenDiff]:
        """Diff a freshly captured payload against the stored snapshot."""
        expected = self.load(name)
        return diff_payloads(expected, json.loads(canonical_json(actual)))


def write_diff_artifact(text: str, path: str | Path | None = None) -> Path:
    """Persist a drift report where CI can pick it up as an artifact."""
    target = Path(
        path
        if path is not None
        else os.environ.get(GOLDEN_DIFF_ENV, "GOLDEN_DIFF.txt")
    )
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(text.rstrip("\n") + "\n\n")
    return target
