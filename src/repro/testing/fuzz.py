"""Deterministic reply fuzzer: seeded corruption of the answer contract.

The pipeline's weakest joint is the free-text reply parsed back into
predictions, so this module manufactures *malformed* replies on purpose
and checks the parser's two hard invariants:

* the strict parser (:func:`~repro.core.parsing.parse_batch_answers`)
  either returns exactly ``expected`` predictions or raises
  :class:`~repro.errors.AnswerFormatError` — never any other exception;
* the lenient parser
  (:func:`~repro.core.parsing.parse_batch_answers_lenient`) never raises
  and always returns exactly ``expected`` entries of the right type
  (``bool``/``None`` for the binary tasks, non-empty ``str``/``None``
  for imputation).

Every case derives from ``random.Random(f"repro-fuzz:{seed}:{index}")``,
so a corpus is a pure function of ``(seed, n_cases)``: CI can re-run the
same ≥200 cases forever, and any violation reproduces from its case index
alone.  Well-formed cases (one in ``WELLFORMED_EVERY``) additionally
assert the strict parser recovers the intended answers byte-exactly.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core import parsing
from repro.data.instances import Task
from repro.errors import AnswerFormatError
from repro.factory.ocr import broken_line, garble_glyphs, merged_column

#: every Nth case skips corruption and must parse exactly
WELLFORMED_EVERY = 10

_DI_VALUES = (
    "tokyo", "new york", "blue ridge", "manager", "41017", "st. francis",
    "classical", "private", "male", "los angeles", "teacher", "7th ave",
)
_REASONS = (
    "the records share every key field",
    "the values disagree on the city attribute",
    "this value is outside the attribute's domain",
    "both titles refer to the same product",
    "the attribute names describe the same concept",
)
_UNICODE_NOISE = "​ “”‘’«»。．！？…"
_ECHO_PREFIXES = ("The answer is ", "Answer: ", "Value: ", "the answer is ")


def _make_reply(
    rng: random.Random, task: Task, expected: int, reasoning: bool
) -> tuple[str, tuple[bool | str, ...]]:
    """A contract-conformant reply plus the answers it encodes."""
    lines: list[str] = []
    answers: list[bool | str] = []
    for number in range(1, expected + 1):
        if task is Task.DATA_IMPUTATION:
            value = rng.choice(_DI_VALUES)
            answers.append(value)
            answer_text = value
        else:
            verdict = rng.random() < 0.5
            answers.append(verdict)
            answer_text = "Yes" if verdict else "No"
        if reasoning:
            lines.append(f"Answer {number}: {rng.choice(_REASONS)}")
            lines.append(answer_text)
        else:
            lines.append(f"Answer {number}: {answer_text}")
    return "\n".join(lines), tuple(answers)


# --- corruption operators ------------------------------------------------
# Each operator maps (text, rng) -> text and must itself be deterministic
# given the rng.  They model the drift classes real models exhibit.

def _op_case_shuffle(text: str, rng: random.Random) -> str:
    return "".join(
        ch.upper() if rng.random() < 0.5 else ch.lower() for ch in text
    )


def _op_drop_marker(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    marked = [i for i, line in enumerate(lines)
              if parsing._ANSWER_RE.match(line)]
    if not marked:
        return text
    target = rng.choice(marked)
    match = parsing._ANSWER_RE.match(lines[target])
    lines[target] = match.group(2)
    return "\n".join(lines)


def _op_renumber_markers(text: str, rng: random.Random) -> str:
    replacement = rng.choice((0, 1, 99))
    lines = []
    for line in text.splitlines():
        match = parsing._ANSWER_RE.match(line)
        if match:
            lines.append(f"Answer {replacement}: {match.group(2)}")
        else:
            lines.append(line)
    return "\n".join(lines)


def _op_merge_blocks(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    marked = [i for i, line in enumerate(lines)
              if i > 0 and parsing._ANSWER_RE.match(line)]
    if not marked:
        return text
    target = rng.choice(marked)
    merged = lines[target - 1] + " " + lines[target]
    return "\n".join(lines[:target - 1] + [merged] + lines[target + 1:])


def _op_unicode_noise(text: str, rng: random.Random) -> str:
    out = list(text)
    for _ in range(rng.randint(1, 4)):
        out.insert(rng.randint(0, len(out)), rng.choice(_UNICODE_NOISE))
    return "".join(out)


def _op_echo_label(text: str, rng: random.Random) -> str:
    prefix = rng.choice(_ECHO_PREFIXES)
    lines = []
    for line in text.splitlines():
        match = parsing._ANSWER_RE.match(line)
        if match and match.group(2):
            lines.append(f"Answer {match.group(1)}: {prefix}{match.group(2)}")
        elif line.strip() and not match:
            lines.append(prefix + line)
        else:
            lines.append(line)
    return "\n".join(lines)


def _op_duplicate_block(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    if not lines:
        return text
    target = rng.randrange(len(lines))
    return "\n".join(lines[:target + 1] + [lines[target]] + lines[target + 1:])


def _op_truncate_tail(text: str, rng: random.Random) -> str:
    if not text:
        return text
    return text[: rng.randint(0, len(text))]


def _op_blank_noise(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    for _ in range(rng.randint(1, 3)):
        filler = rng.choice(("", "   ", "\t"))
        lines.insert(rng.randint(0, len(lines)), filler)
    return "\n".join(lines)


# The OCR document-noise operators model a reply that passed through a
# scan-and-recognize loop (screenshots of chat transcripts, PDFs of model
# output): confused glyphs can hit the Yes/No verdicts and the "Answer N:"
# markers themselves, merged lines collapse two answer blocks into one,
# and broken lines split a verdict mid-token.  They reuse the factory's
# corruptors (:mod:`repro.factory.ocr`) so reply noise and cell noise stay
# one implementation.

def _op_ocr_garbled_glyphs(text: str, rng: random.Random) -> str:
    if not text.strip():
        return text
    return garble_glyphs(text, rng, intensity=0.2).corrupted


def _op_ocr_broken_line(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    candidates = [i for i, line in enumerate(lines) if len(line.strip()) >= 2]
    if not candidates:
        return text
    target = rng.choice(candidates)
    lines[target] = broken_line(lines[target], rng).corrupted
    return "\n".join(lines)


def _op_ocr_merged_column(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    if len(lines) < 2:
        if not text.strip():
            return text
        return garble_glyphs(text, rng).corrupted
    target = rng.randrange(len(lines) - 1)
    first, second = lines[target], lines[target + 1]
    if first.strip() and second.strip():
        merged = merged_column(first, second, rng).corrupted
    else:
        merged = f"{first} {second}".strip()
    return "\n".join(lines[:target] + [merged] + lines[target + 2:])


OPERATORS: dict[str, Callable[[str, random.Random], str]] = {
    "case_shuffle": _op_case_shuffle,
    "drop_marker": _op_drop_marker,
    "renumber_markers": _op_renumber_markers,
    "merge_blocks": _op_merge_blocks,
    "unicode_noise": _op_unicode_noise,
    "echo_label": _op_echo_label,
    "duplicate_block": _op_duplicate_block,
    "truncate_tail": _op_truncate_tail,
    "blank_noise": _op_blank_noise,
    "ocr_garbled_glyphs": _op_ocr_garbled_glyphs,
    "ocr_broken_line": _op_ocr_broken_line,
    "ocr_merged_column": _op_ocr_merged_column,
}

_TASKS = (
    Task.ENTITY_MATCHING,
    Task.ERROR_DETECTION,
    Task.SCHEMA_MATCHING,
    Task.DATA_IMPUTATION,
)


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic fuzz input: a (corrupted) reply and its intent."""

    index: int
    seed: int
    task: Task
    expected: int
    ops: tuple[str, ...]
    text: str
    answers: tuple[bool | str, ...]

    @property
    def wellformed(self) -> bool:
        return not self.ops


def generate_case(index: int, seed: int = 0) -> FuzzCase:
    """Case ``index`` of corpus ``seed`` — a pure function of both."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    task = rng.choice(_TASKS)
    expected = rng.randint(1, 8)
    reasoning = rng.random() < 0.5
    text, answers = _make_reply(rng, task, expected, reasoning)
    ops: tuple[str, ...] = ()
    if index % WELLFORMED_EVERY:
        names = sorted(OPERATORS)
        ops = tuple(rng.choice(names) for _ in range(rng.randint(1, 3)))
        for name in ops:
            text = OPERATORS[name](text, rng)
    return FuzzCase(
        index=index, seed=seed, task=task, expected=expected,
        ops=ops, text=text, answers=answers,
    )


@dataclass(frozen=True)
class FuzzViolation:
    """One broken invariant, with everything needed to reproduce it."""

    case: FuzzCase
    invariant: str
    detail: str

    def render(self) -> str:
        preview = (
            self.case.text if len(self.case.text) <= 240
            else self.case.text[:240] + "…"
        )
        return (
            f"case {self.case.index} (seed {self.case.seed}, "
            f"task {self.case.task.name}, expected {self.case.expected}, "
            f"ops {list(self.case.ops)}): {self.invariant}\n"
            f"  {self.detail}\n"
            f"  reply: {preview!r}"
        )


@dataclass
class FuzzReport:
    """The outcome of one deterministic fuzz run."""

    seed: int
    n_cases: int
    n_wellformed: int = 0
    n_strict_ok: int = 0
    n_strict_rejected: int = 0
    op_counts: dict[str, int] = field(default_factory=dict)
    violations: list[FuzzViolation] = field(default_factory=list)
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        ops = ", ".join(
            f"{name}×{count}" for name, count in sorted(self.op_counts.items())
        )
        head = (
            f"fuzz seed={self.seed}: {self.n_cases} cases "
            f"({self.n_wellformed} well-formed; strict parsed "
            f"{self.n_strict_ok}, rejected {self.n_strict_rejected}), "
            f"{len(self.violations)} violation(s)\n"
            f"  operators: {ops}\n"
            f"  corpus digest: {self.digest}"
        )
        if self.ok:
            return head
        return "\n".join([head] + [v.render() for v in self.violations])


def _check_case(case: FuzzCase, report: FuzzReport) -> None:
    expected_types: tuple[type, ...] = (
        (str,) if case.task is Task.DATA_IMPUTATION else (bool,)
    )
    # Invariant 1: strict parses fully or raises AnswerFormatError.
    try:
        strict = parsing.parse_batch_answers(case.text, case.task, case.expected)
    except AnswerFormatError:
        strict = None
        report.n_strict_rejected += 1
        if case.wellformed:
            report.violations.append(FuzzViolation(
                case, "strict-accepts-wellformed",
                "a contract-conformant reply was rejected",
            ))
    except Exception as err:  # noqa: BLE001 — the invariant under test
        strict = None
        report.violations.append(FuzzViolation(
            case, "strict-only-raises-AnswerFormatError",
            f"raised {type(err).__name__}: {err}",
        ))
    else:
        report.n_strict_ok += 1
        if len(strict) != case.expected:
            report.violations.append(FuzzViolation(
                case, "strict-length",
                f"returned {len(strict)} predictions for {case.expected}",
            ))
        if case.wellformed and strict != list(case.answers):
            report.violations.append(FuzzViolation(
                case, "strict-roundtrip",
                f"expected {list(case.answers)!r}, got {strict!r}",
            ))
    # Invariant 2: lenient never raises and keeps the shape.
    try:
        lenient = parsing.parse_batch_answers_lenient(
            case.text, case.task, case.expected
        )
    except Exception as err:  # noqa: BLE001 — the invariant under test
        report.violations.append(FuzzViolation(
            case, "lenient-never-raises",
            f"raised {type(err).__name__}: {err}",
        ))
        return
    if len(lenient) != case.expected:
        report.violations.append(FuzzViolation(
            case, "lenient-length",
            f"returned {len(lenient)} entries for {case.expected}",
        ))
    for position, entry in enumerate(lenient):
        if entry is None:
            continue
        if not isinstance(entry, expected_types) or (
            isinstance(entry, str) and not entry
        ):
            report.violations.append(FuzzViolation(
                case, "lenient-entry-type",
                f"entry {position} is {entry!r}",
            ))
            break


def run_fuzz(n_cases: int = 200, seed: int = 0) -> FuzzReport:
    """Generate and check ``n_cases`` deterministic cases for ``seed``."""
    report = FuzzReport(seed=seed, n_cases=n_cases)
    corpus_hash = hashlib.sha256()
    for index in range(n_cases):
        case = generate_case(index, seed)
        corpus_hash.update(case.text.encode("utf-8"))
        corpus_hash.update(b"\x00")
        if case.wellformed:
            report.n_wellformed += 1
        for name in case.ops:
            report.op_counts[name] = report.op_counts.get(name, 0) + 1
        _check_case(case, report)
    report.digest = corpus_hash.hexdigest()
    return report
