"""Resilience configuration: one frozen knob-set for the whole stack.

A single :class:`ResilienceConfig` travels from the CLI through
:class:`~repro.core.executor.ExecutorConfig` down to the AIMD controller,
the hedging schedule, and the failover router, so every layer reads the
same tuning and a config fingerprint pins the whole behaviour.  The
default ``None`` (no resilience) keeps every existing run bit-identical;
constructing the config only ever *adds* adaptive behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for adaptive concurrency, hedging, failover, and shedding.

    Parameters
    ----------
    aimd:
        Adapt the executor's lane width: widen additively on success,
        shrink multiplicatively on throttle signals (AIMD, the TCP
        congestion-control scheme).
    aimd_increase:
        Lanes added per successful call (fractional; the integer width is
        the floor).
    aimd_decrease:
        Multiplicative factor applied on a throttle signal (0 < f < 1).
    hedge:
        Fire a duplicate request to the next healthy backend when the
        primary's reply would land later than the hedge delay; the first
        valid reply wins and the loser's usage is accounted separately.
    hedge_quantile:
        Latency quantile of the primary's recent samples that sets the
        hedge delay (the classic tail-at-scale p95 rule).
    hedge_warmup:
        Samples required per backend before the quantile replaces the
        default delay.
    hedge_default_delay_s:
        Hedge delay used until warmup completes; sits above a healthy
        batch call's modeled latency so warmup itself does not hedge.
    hedge_min_delay_s:
        Floor under the derived delay, so a fast backend never hedges
        every single call.
    failover:
        Route around unhealthy backends: on failure retry the call on the
        next healthy backend in the pool before surfacing the error.
    health_alpha:
        EWMA weight for per-backend error-rate and latency scores.
    circuit_error_threshold:
        EWMA error rate at which a backend's circuit opens.
    circuit_cooldown_s:
        How long an open circuit stays unroutable before probes begin.
    probe_interval_s:
        Spacing of recovery probes once the cooldown has passed.
    shed_enter / shed_exit:
        Stress levels (EWMA failure rate) at which the serving layer
        starts and stops shedding load (hysteresis: enter > exit).
    shed_alpha:
        EWMA weight of the serving-level stress signal.
    """

    aimd: bool = True
    aimd_increase: float = 0.25
    aimd_decrease: float = 0.5
    hedge: bool = True
    hedge_quantile: float = 0.95
    hedge_warmup: int = 8
    hedge_default_delay_s: float = 10.0
    hedge_min_delay_s: float = 0.05
    failover: bool = True
    health_alpha: float = 0.3
    circuit_error_threshold: float = 0.5
    circuit_cooldown_s: float = 20.0
    probe_interval_s: float = 10.0
    shed_enter: float = 0.5
    shed_exit: float = 0.25
    shed_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.aimd_increase <= 0:
            raise ValueError(
                f"aimd_increase must be positive, got {self.aimd_increase}"
            )
        if not 0.0 < self.aimd_decrease < 1.0:
            raise ValueError(
                f"aimd_decrease must be in (0, 1), got {self.aimd_decrease}"
            )
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1], got {self.hedge_quantile}"
            )
        if self.hedge_warmup < 1:
            raise ValueError(
                f"hedge_warmup must be >= 1, got {self.hedge_warmup}"
            )
        if self.hedge_default_delay_s < 0 or self.hedge_min_delay_s < 0:
            raise ValueError("hedge delays cannot be negative")
        if not 0.0 < self.health_alpha <= 1.0:
            raise ValueError(
                f"health_alpha must be in (0, 1], got {self.health_alpha}"
            )
        if not 0.0 < self.circuit_error_threshold <= 1.0:
            raise ValueError(
                "circuit_error_threshold must be in (0, 1], got "
                f"{self.circuit_error_threshold}"
            )
        if self.circuit_cooldown_s < 0 or self.probe_interval_s < 0:
            raise ValueError("circuit timings cannot be negative")
        if not 0.0 < self.shed_exit <= self.shed_enter <= 1.0:
            raise ValueError(
                "shedding thresholds need 0 < shed_exit <= shed_enter <= 1, "
                f"got exit={self.shed_exit} enter={self.shed_enter}"
            )
        if not 0.0 < self.shed_alpha <= 1.0:
            raise ValueError(
                f"shed_alpha must be in (0, 1], got {self.shed_alpha}"
            )
