"""Health-scored failover routing and hedged requests over a backend pool.

:class:`FailoverClient` looks like one :class:`~repro.llm.base.LLMClient`
but fronts an ordered pool of them:

- **Routing**: calls go to the highest-priority backend whose circuit is
  routable (see :class:`~repro.resilience.health.BackendHealth`); ties in
  priority break on name, so the routing order is a pure function of the
  pool *contents* — permuting the constructor sequence changes nothing.
- **Failover**: when the primary fails with a retryable fault, the call
  is retried on the next routable backend before the error surfaces; the
  failed attempt's burned time is charged into the winning reply's
  modeled latency.
- **Hedging**: when the primary *serves* but slower than the hedge delay
  (the p95 of its recent latencies on the simulated clock), a duplicate
  fires to the next backend; the first reply to land wins and the
  loser's token usage is accounted separately, never billed to the run.

Everything runs on the virtual clock fed in through ``observe_time`` —
no wall time, no RNG — so routing, hedging, and circuit transitions
replay bit-identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.errors import LLMError, RateLimitError, TransientLLMError
from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient, Usage
from repro.resilience.config import ResilienceConfig
from repro.resilience.health import BackendHealth
from repro.resilience.signals import ThrottleSignal, attach, throttle_of

#: latency samples kept per backend for the hedge-delay quantile
_SAMPLE_WINDOW = 64


class FailoverClient:
    """Routes completions across an ordered, health-scored backend pool.

    ``backends`` is a sequence of ``(name, priority, client)`` triples;
    lower priority routes first, ties break on name.  The sequence order
    itself never matters.
    """

    def __init__(
        self,
        backends: Sequence[tuple[str, int, LLMClient]],
        config: ResilienceConfig | None = None,
    ):
        if not backends:
            raise LLMError("FailoverClient needs at least one backend")
        names = [name for name, __, __ in backends]
        if len(set(names)) != len(names):
            raise LLMError(f"duplicate backend names in pool: {sorted(names)}")
        self._config = config or ResilienceConfig()
        ordered = sorted(backends, key=lambda entry: (entry[1], entry[0]))
        self._order: tuple[str, ...] = tuple(name for name, __, __ in ordered)
        self._priority = {name: prio for name, prio, __ in ordered}
        self._clients = {name: client for name, __, client in ordered}
        self._health = {
            name: BackendHealth(name, self._config) for name in self._order
        }
        self._samples: dict[str, list[float]] = {
            name: [] for name in self._order
        }
        self._now = 0.0
        self._stress = 0.0
        self._shedding = False
        self.n_calls = 0
        self.n_failovers = 0
        self.n_hedges = 0
        self.n_hedge_wins = 0
        self.n_hedge_losses = 0
        self.n_exhausted = 0
        self.hedge_loser_usage = Usage(0, 0)
        self.n_shed_windows = 0

    @property
    def order(self) -> tuple[str, ...]:
        return self._order

    def observe_time(self, now: float) -> None:
        """Adopt the attempt's virtual start time (fed by the executor).

        Not a running maximum: a late-finishing lane must not fast-forward
        circuit cooldowns or probe timers past outages its siblings are
        still inside.  The executor's announcement order is deterministic,
        so health bookkeeping replays bit-identically.
        """
        self._now = now
        for client in self._clients.values():
            forward = getattr(client, "observe_time", None)
            if callable(forward):
                forward(self._now)

    def hedge_delay(self, name: str) -> float:
        """The deterministic hedge delay for ``name`` at this instant.

        The configured quantile of the backend's recent latency samples,
        floored at ``hedge_min_delay_s``; before ``hedge_warmup`` samples
        exist the configured default delay applies.  A pure function of
        the samples observed so far, hence of (plan seed, clock).
        """
        samples = self._samples[name]
        config = self._config
        if len(samples) < config.hedge_warmup:
            return max(config.hedge_min_delay_s, config.hedge_default_delay_s)
        ranked = sorted(samples)
        index = max(0, min(len(ranked) - 1,
                           int(config.hedge_quantile * len(ranked) + 0.999999) - 1))
        return max(config.hedge_min_delay_s, ranked[index])

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        now = self._now
        routable = [
            name for name in self._order if self._health[name].routable(now)
        ]
        if not routable:
            self.n_exhausted += 1
            raise attach(
                TransientLLMError("every backend circuit is open", latency_s=0.0),
                ThrottleSignal(kind="overloaded", retry_after_s=0.0),
            )
        self.n_calls += 1
        primary = routable[0]
        health = self._health[primary]
        if health.state != "closed":
            health.begin_probe(now)
        try:
            reply = self._clients[primary].complete(request)
        except (RateLimitError, TransientLLMError) as exc:
            return self._failover(request, exc, primary, routable[1:], now)
        health.record_success(now, reply.latency_s)
        self._note_stress(0.0)
        winner = self._maybe_hedge(request, reply, primary, routable[1:], now)
        self._note_sample(primary, reply.latency_s)
        return winner

    def _failover(
        self,
        request: CompletionRequest,
        exc: Exception,
        primary: str,
        fallbacks: list[str],
        now: float,
    ) -> CompletionResponse:
        """Retry a failed call down the pool; re-raise if everyone fails."""
        burned = self._failure_cost(exc)
        self._health[primary].record_failure(now, burned)
        self._note_stress(1.0)
        if self._config.failover:
            for name in fallbacks:
                health = self._health[name]
                if health.state != "closed":
                    health.begin_probe(now)
                try:
                    reply = self._clients[name].complete(request)
                except (RateLimitError, TransientLLMError) as fallback_exc:
                    cost = self._failure_cost(fallback_exc)
                    health.record_failure(now + burned, cost)
                    burned += cost
                    continue
                health.record_success(now + burned, reply.latency_s)
                self._note_sample(name, reply.latency_s)
                self.n_failovers += 1
                return replace(reply, latency_s=burned + reply.latency_s)
        if throttle_of(exc) is None:
            attach(exc, ThrottleSignal(
                kind="overloaded", retry_after_s=burned, backend=primary,
            ))
        raise exc

    def _maybe_hedge(
        self,
        request: CompletionRequest,
        reply: CompletionResponse,
        primary: str,
        fallbacks: list[str],
        now: float,
    ) -> CompletionResponse:
        """Fire the duplicate when the primary reply lands past the delay."""
        if not self._config.hedge or not fallbacks:
            return reply
        delay = self.hedge_delay(primary)
        if reply.latency_s <= delay:
            return reply
        self.n_hedges += 1
        secondary = fallbacks[0]
        health = self._health[secondary]
        if health.state != "closed":
            health.begin_probe(now + delay)
        try:
            duplicate = self._clients[secondary].complete(request)
        except (RateLimitError, TransientLLMError) as exc:
            # The hedge itself failed: the primary reply stands alone.
            health.record_failure(now + delay, self._failure_cost(exc))
            self.n_hedge_losses += 1
            return reply
        health.record_success(now + delay, duplicate.latency_s)
        self._note_sample(secondary, duplicate.latency_s)
        hedged_finish = delay + duplicate.latency_s
        if hedged_finish < reply.latency_s:
            self.n_hedge_wins += 1
            self.hedge_loser_usage = self.hedge_loser_usage + reply.usage
            return replace(duplicate, latency_s=hedged_finish)
        self.n_hedge_losses += 1
        self.hedge_loser_usage = self.hedge_loser_usage + duplicate.usage
        return reply

    def should_shed(self, now: float | None = None) -> bool:
        """Whether sustained degradation warrants shedding new load.

        EWMA failure stress with hysteresis: starts shedding at
        ``shed_enter``, stops only once stress decays below ``shed_exit``.
        """
        if self._shedding and self._stress <= self._config.shed_exit:
            self._shedding = False
        elif not self._shedding and self._stress >= self._config.shed_enter:
            self._shedding = True
            self.n_shed_windows += 1
        return self._shedding

    def health_payload(self) -> dict:
        """JSON-ready per-backend health plus router counters."""
        return {
            "backends": [
                dict(self._health[name].payload(),
                     priority=self._priority[name])
                for name in self._order
            ],
            "router": {
                "n_calls": self.n_calls,
                "n_failovers": self.n_failovers,
                "n_hedges": self.n_hedges,
                "n_hedge_wins": self.n_hedge_wins,
                "n_hedge_losses": self.n_hedge_losses,
                "n_exhausted": self.n_exhausted,
                "n_shed_windows": self.n_shed_windows,
                "hedge_loser_prompt_tokens": self.hedge_loser_usage.prompt_tokens,
                "hedge_loser_completion_tokens": (
                    self.hedge_loser_usage.completion_tokens
                ),
            },
        }

    def checkpoint_state(self) -> dict:
        return {
            "now": self._now,
            "stress": self._stress,
            "shedding": self._shedding,
            "samples": {
                name: list(samples) for name, samples in self._samples.items()
            },
            "health": {
                name: health.checkpoint_state()
                for name, health in self._health.items()
            },
            "counters": {
                "n_calls": self.n_calls,
                "n_failovers": self.n_failovers,
                "n_hedges": self.n_hedges,
                "n_hedge_wins": self.n_hedge_wins,
                "n_hedge_losses": self.n_hedge_losses,
                "n_exhausted": self.n_exhausted,
                "n_shed_windows": self.n_shed_windows,
                "hedge_loser_prompt_tokens": self.hedge_loser_usage.prompt_tokens,
                "hedge_loser_completion_tokens": (
                    self.hedge_loser_usage.completion_tokens
                ),
            },
            "inner": {
                name: (
                    client.checkpoint_state()
                    if callable(getattr(client, "checkpoint_state", None))
                    else None
                )
                for name, client in self._clients.items()
            },
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self._now = float(state["now"])
        self._stress = float(state["stress"])
        self._shedding = bool(state["shedding"])
        for name, samples in state["samples"].items():
            self._samples[name] = [float(sample) for sample in samples]
        for name, payload in state["health"].items():
            self._health[name].restore_checkpoint_state(payload)
        counters = state["counters"]
        self.n_calls = int(counters["n_calls"])
        self.n_failovers = int(counters["n_failovers"])
        self.n_hedges = int(counters["n_hedges"])
        self.n_hedge_wins = int(counters["n_hedge_wins"])
        self.n_hedge_losses = int(counters["n_hedge_losses"])
        self.n_exhausted = int(counters["n_exhausted"])
        self.n_shed_windows = int(counters["n_shed_windows"])
        self.hedge_loser_usage = Usage(
            prompt_tokens=int(counters["hedge_loser_prompt_tokens"]),
            completion_tokens=int(counters["hedge_loser_completion_tokens"]),
        )
        for name, inner_state in state["inner"].items():
            if inner_state is None:
                continue
            restore = getattr(
                self._clients[name], "restore_checkpoint_state", None
            )
            if callable(restore):
                restore(inner_state)

    def _note_sample(self, name: str, latency_s: float) -> None:
        samples = self._samples[name]
        samples.append(latency_s)
        if len(samples) > _SAMPLE_WINDOW:
            del samples[: len(samples) - _SAMPLE_WINDOW]

    def _note_stress(self, sample: float) -> None:
        alpha = self._config.shed_alpha
        self._stress = (1.0 - alpha) * self._stress + alpha * sample

    @staticmethod
    def _failure_cost(exc: Exception) -> float:
        """Virtual seconds one failed attempt burns before the next try."""
        if isinstance(exc, RateLimitError):
            return max(0.0, exc.retry_after)
        if isinstance(exc, TransientLLMError):
            return max(0.0, exc.latency_s)
        return 0.0
