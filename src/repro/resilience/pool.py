"""A picklable backend-pool factory for failover routing.

:class:`PoolBackend` is the shard-safe counterpart of
:class:`~repro.resilience.router.FailoverClient`: a frozen description of
an ordered pool of member backends (any PR 8 ``Backend``, including
:class:`~repro.llm.backend.DegradedBackend` wrappers) that each worker
process rebuilds into a live router with ``build()``.  Priorities are
explicit on the members, and the router sorts on ``(priority, name)``,
so the tuple order used to construct the pool never affects routing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.resilience.config import ResilienceConfig
from repro.resilience.router import FailoverClient


@dataclass(frozen=True)
class PoolMember:
    """One backend in a failover pool."""

    name: str
    backend: Any
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a pool member needs a non-empty name")
        if not callable(getattr(self.backend, "build", None)):
            raise TypeError(
                f"pool member {self.name!r} backend has no build(); "
                "expected a Backend factory"
            )


@dataclass(frozen=True)
class PoolBackend:
    """Builds a :class:`FailoverClient` over the member backends."""

    members: tuple[PoolMember, ...]
    resilience: ResilienceConfig = ResilienceConfig()

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a pool needs at least one member")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pool member names: {sorted(names)}")

    def build(self) -> FailoverClient:
        return FailoverClient(
            [
                (member.name, member.priority, member.backend.build())
                for member in self.members
            ],
            self.resilience,
        )

    def describe(self) -> dict:
        ordered = sorted(
            self.members, key=lambda member: (member.priority, member.name)
        )
        return {
            "kind": "pool",
            "members": [
                {
                    "name": member.name,
                    "priority": member.priority,
                    "backend": member.backend.describe(),
                }
                for member in ordered
            ],
            "resilience": dataclasses.asdict(self.resilience),
        }
