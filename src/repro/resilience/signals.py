"""Typed throttle signals threaded from backend to executor lane.

A backend that rejects or degrades a call knows *why*; the executor's
AIMD controller needs that reason to distinguish "the upstream is telling
us to back off" (shrink the lane width) from an ordinary transient fault
(retry, keep the width).  A :class:`ThrottleSignal` rides on the raised
exception as a plain attribute — no new exception hierarchy, so existing
``except RateLimitError`` / ``except TransientLLMError`` handlers keep
working untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RateLimitError

#: signal kinds an upstream can send
SIGNAL_KINDS = ("rate_limit", "overloaded")


@dataclass(frozen=True)
class ThrottleSignal:
    """Why a backend pushed back on one call."""

    kind: str
    retry_after_s: float = 0.0
    backend: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SIGNAL_KINDS:
            raise ValueError(
                f"unknown throttle signal kind {self.kind!r}; "
                f"expected one of {SIGNAL_KINDS}"
            )
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s cannot be negative")


def attach(exc: BaseException, signal: ThrottleSignal) -> BaseException:
    """Pin ``signal`` onto ``exc`` and return it (for ``raise attach(...)``)."""
    exc.throttle = signal  # type: ignore[attr-defined]
    return exc


def throttle_of(exc: BaseException) -> ThrottleSignal | None:
    """The signal carried by ``exc``, synthesized for a bare 429.

    A :class:`~repro.errors.RateLimitError` without an explicit signal is
    still unambiguously a throttle — backends that predate this module
    (or real SDK adapters) keep feeding the AIMD loop correctly.
    """
    signal = getattr(exc, "throttle", None)
    if isinstance(signal, ThrottleSignal):
        return signal
    if isinstance(exc, RateLimitError):
        return ThrottleSignal(kind="rate_limit", retry_after_s=exc.retry_after)
    return None
