"""Deterministic backend-degradation model: scripted sickness, not death.

The chaos harness (PR 4/5/8) proves the system recovers from a *killed*
process; real endpoints more often get *sick*: 429 storms, latency
brownouts, overload shedding, short blackouts.  A
:class:`DegradationPlan` scripts those episodes on the **simulated
clock**: which episode is active is a pure function of the virtual time a
call starts at, and whether a given call inside an episode is hit is a
pure function of ``(plan seed, episode index, call ordinal)``.  No global
RNG is consumed, so the same plan replays bit-identically at any
concurrency, any retry order, and across journal resume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: episode kinds a plan may script
EPISODE_KINDS = ("rate_limit_storm", "latency_brownout", "overload", "blackout")


@dataclass(frozen=True)
class Episode:
    """One contiguous window of scripted misbehaviour.

    ``intensity`` is the per-call hit probability inside the window
    (decided hash-deterministically, see :meth:`DegradationPlan.decide`);
    ``retry_after_s`` scripts the 429 Retry-After / burned latency of a
    rejected call; ``latency_factor`` multiplies served latency during a
    brownout.
    """

    kind: str
    start_s: float
    duration_s: float
    intensity: float = 1.0
    retry_after_s: float = 2.0
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EPISODE_KINDS:
            raise ValueError(
                f"unknown episode kind {self.kind!r}; "
                f"expected one of {EPISODE_KINDS}"
            )
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("episode window must be non-negative and non-empty")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(
                f"intensity must be in [0, 1], got {self.intensity}"
            )
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s cannot be negative")
        if self.latency_factor < 1.0:
            raise ValueError(
                f"latency_factor must be >= 1, got {self.latency_factor}"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        """Whether this episode covers virtual time ``now``."""
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class DegradationPlan:
    """A seeded script of degradation episodes on the simulated clock."""

    seed: int = 0
    episodes: tuple[Episode, ...] = ()

    def episode_at(self, now: float) -> tuple[int, Episode] | None:
        """The first active episode at ``now`` (index, episode), if any."""
        for index, episode in enumerate(self.episodes):
            if episode.active(now):
                return index, episode
        return None

    def decide(self, episode_index: int, ordinal: int, probability: float) -> bool:
        """Whether call ``ordinal`` inside episode ``episode_index`` is hit.

        A keyed blake2b hash maps ``(seed, episode, ordinal)`` onto [0, 1)
        and compares against ``probability`` — deterministic, stateless,
        and independent of every other random stream in the system.
        """
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        digest = hashlib.blake2b(
            f"{self.seed}:{episode_index}:{ordinal}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2.0**64 < probability

    def payload(self) -> dict:
        """JSON-ready description (manifests, journals, shard tasks)."""
        return {
            "seed": self.seed,
            "episodes": [
                {
                    "kind": episode.kind,
                    "start_s": episode.start_s,
                    "duration_s": episode.duration_s,
                    "intensity": episode.intensity,
                    "retry_after_s": episode.retry_after_s,
                    "latency_factor": episode.latency_factor,
                }
                for episode in self.episodes
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DegradationPlan":
        return cls(
            seed=int(payload["seed"]),
            episodes=tuple(
                Episode(
                    kind=str(entry["kind"]),
                    start_s=float(entry["start_s"]),
                    duration_s=float(entry["duration_s"]),
                    intensity=float(entry["intensity"]),
                    retry_after_s=float(entry["retry_after_s"]),
                    latency_factor=float(entry["latency_factor"]),
                )
                for entry in payload["episodes"]
            ),
        )


def brownout_plan(
    seed: int = 0,
    start_s: float = 5.0,
    duration_s: float = 30.0,
    retry_after_s: float = 3.0,
    latency_factor: float = 4.0,
    storm_intensity: float = 0.7,
) -> DegradationPlan:
    """The scripted 30-second brownout used by benchmarks and golden cells.

    Three back-to-back phases: a 429 storm, a latency brownout (slow but
    correct replies — hedging territory), then an overload window of
    ``overloaded`` rejections.
    """
    third = duration_s / 3.0
    return DegradationPlan(
        seed=seed,
        episodes=(
            Episode(
                kind="rate_limit_storm",
                start_s=start_s,
                duration_s=third,
                intensity=storm_intensity,
                retry_after_s=retry_after_s,
            ),
            Episode(
                kind="latency_brownout",
                start_s=start_s + third,
                duration_s=third,
                intensity=1.0,
                latency_factor=latency_factor,
            ),
            Episode(
                kind="overload",
                start_s=start_s + 2.0 * third,
                duration_s=third,
                intensity=storm_intensity,
                retry_after_s=retry_after_s,
            ),
        ),
    )


def blackout_plan(
    seed: int = 0,
    start_s: float = 5.0,
    duration_s: float = 30.0,
    retry_after_s: float = 1.0,
) -> DegradationPlan:
    """A total outage window: every call fails until the window closes."""
    return DegradationPlan(
        seed=seed,
        episodes=(
            Episode(
                kind="blackout",
                start_s=start_s,
                duration_s=duration_s,
                intensity=1.0,
                retry_after_s=retry_after_s,
            ),
        ),
    )
