"""Per-backend health scoring with a deterministic circuit breaker.

Each backend in a failover pool carries an EWMA error rate and latency
score plus a three-state circuit (``closed`` → ``open`` →
``half_open`` → ``closed``).  All timings live on the simulated clock,
and probes fire on a deterministic schedule (cooldown then fixed probe
interval), so two identical runs open, probe, and close circuits at
exactly the same virtual instants.
"""

from __future__ import annotations

from repro.resilience.config import ResilienceConfig

CIRCUIT_STATES = ("closed", "open", "half_open")


class BackendHealth:
    """EWMA health score and circuit state for one backend."""

    def __init__(self, name: str, config: ResilienceConfig):
        self.name = name
        self._alpha = config.health_alpha
        self._error_threshold = config.circuit_error_threshold
        self._cooldown_s = config.circuit_cooldown_s
        self._probe_interval_s = config.probe_interval_s
        self.error_rate = 0.0
        self.latency_ewma = 0.0
        self.state = "closed"
        self.open_until = 0.0
        self.last_probe_at: float | None = None
        self.n_success = 0
        self.n_failure = 0
        #: circuit transition counters (open / half_open / close events)
        self.transitions = {"open": 0, "half_open": 0, "close": 0}

    def record_success(self, now: float, latency_s: float) -> None:
        self.n_success += 1
        self.error_rate = (1.0 - self._alpha) * self.error_rate
        self.latency_ewma = (
            (1.0 - self._alpha) * self.latency_ewma + self._alpha * latency_s
        )
        if self.state != "closed":
            # A half-open probe (or a success racing the open window)
            # proves recovery: close the circuit and reset the score so
            # one stale storm does not instantly re-open it.
            self.state = "closed"
            self.transitions["close"] += 1
            self.error_rate = 0.0

    def record_failure(self, now: float, latency_s: float = 0.0) -> None:
        self.n_failure += 1
        self.error_rate = (
            (1.0 - self._alpha) * self.error_rate + self._alpha
        )
        if latency_s > 0:
            self.latency_ewma = (
                (1.0 - self._alpha) * self.latency_ewma
                + self._alpha * latency_s
            )
        if self.state == "half_open" or (
            self.state == "closed"
            and self.error_rate >= self._error_threshold
        ):
            # A failed probe re-opens; a sick closed circuit opens.
            self.state = "open"
            self.open_until = now + self._cooldown_s
            self.transitions["open"] += 1

    def routable(self, now: float) -> bool:
        """Whether the router may send a call here at virtual time ``now``.

        Closed circuits always route.  Open circuits route only once the
        cooldown has passed *and* the probe interval since the last probe
        has elapsed — the deterministic recovery-probe schedule.
        """
        if self.state == "closed":
            return True
        if now < self.open_until:
            return False
        if self.last_probe_at is None:
            return True
        return now >= self.last_probe_at + self._probe_interval_s

    def begin_probe(self, now: float) -> None:
        """Mark the call about to be routed as a half-open recovery probe."""
        if self.state != "half_open":
            self.state = "half_open"
            self.transitions["half_open"] += 1
        self.last_probe_at = now

    def payload(self) -> dict:
        """JSON-ready health summary for manifests and reports."""
        return {
            "name": self.name,
            "state": self.state,
            "error_rate": round(self.error_rate, 6),
            "latency_ewma_s": round(self.latency_ewma, 6),
            "n_success": self.n_success,
            "n_failure": self.n_failure,
            "transitions": dict(self.transitions),
        }

    def checkpoint_state(self) -> dict:
        return {
            "error_rate": self.error_rate,
            "latency_ewma": self.latency_ewma,
            "state": self.state,
            "open_until": self.open_until,
            "last_probe_at": self.last_probe_at,
            "n_success": self.n_success,
            "n_failure": self.n_failure,
            "transitions": dict(self.transitions),
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self.error_rate = float(state["error_rate"])
        self.latency_ewma = float(state["latency_ewma"])
        self.state = str(state["state"])
        if self.state not in CIRCUIT_STATES:
            raise ValueError(f"unknown circuit state {self.state!r}")
        self.open_until = float(state["open_until"])
        raw_probe = state.get("last_probe_at")
        self.last_probe_at = None if raw_probe is None else float(raw_probe)
        self.n_success = int(state["n_success"])
        self.n_failure = int(state["n_failure"])
        self.transitions = {
            key: int(value) for key, value in state["transitions"].items()
        }
