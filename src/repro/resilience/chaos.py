"""Chaos drills through *degraded* backends: crash a sick run, resume it.

The PR 4/5 chaos matrix proves crash-resume bit-identity over a healthy
client.  These trials run the same three crash sites through the full
resilience stack — a scripted-degradation primary, a healthy secondary,
the failover router, and an AIMD executor — so a run that is throttling,
hedging, and failing over when it dies must *still* resume to the exact
bytes of its uninterrupted baseline.  Every layer's checkpoint chain
(fault injector → router → degraded client → simulated model) is what
makes that possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from typing import TYPE_CHECKING

from repro.resilience.config import ResilienceConfig
from repro.resilience.degradation import (
    DegradationPlan,
    blackout_plan,
    brownout_plan,
)

if TYPE_CHECKING:  # runtime imports stay lazy: llm.faults imports this
    from repro.runtime.chaos import ChaosTrial  # package via resilience

#: the single-run crash sites, re-stated here so importing this module
#: does not pull the runtime package in at import time (cycle through
#: llm.faults → resilience → runtime → llm.backend)
CRASH_SITES: tuple[str, ...] = ("mid_batch", "pre_journal", "mid_journal")

#: the degradation scenarios the resilience chaos matrix sweeps
SCENARIOS: tuple[str, ...] = ("brownout", "blackout")


@dataclass(frozen=True)
class ResilienceChaosCell:
    """One (scenario, config) point of the degraded crash matrix."""

    name: str
    dataset: str
    size: int
    scenario: str = "brownout"
    model: str = "gpt-3.5"
    seed: int = 0
    concurrency: int = 2

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {SCENARIOS}"
            )

    def plan(self) -> DegradationPlan:
        if self.scenario == "blackout":
            return blackout_plan(seed=self.seed, start_s=5.0, duration_s=20.0)
        return brownout_plan(seed=self.seed)

    def config(self):
        from repro.core.config import PipelineConfig

        return PipelineConfig(
            model=self.model,
            seed=self.seed,
            concurrency=self.concurrency,
            observability=True,
            degradation="ladder",
        )

    def executor_config(self):
        from repro.core.executor import ExecutorConfig

        return ExecutorConfig(resilience=ResilienceConfig())


def default_resilience_chaos_cells() -> tuple[ResilienceChaosCell, ...]:
    """The CI matrix: both scenarios, sequential and concurrent."""
    return tuple(
        ResilienceChaosCell(
            f"ed_adult_{scenario}_c{concurrency}",
            dataset="adult",
            size=24,
            scenario=scenario,
            concurrency=concurrency,
        )
        for scenario in SCENARIOS
        for concurrency in (1, 2)
    )


def build_degraded_stack(cell: ResilienceChaosCell, crash_plan=None):
    """The full resilience client stack for one cell.

    fault injector (crash chaos) → failover router → {degraded primary,
    healthy secondary}.  Rebuilt identically for baseline, crash, and
    resume runs — the journal restores each layer's state through the
    checkpoint chain.
    """
    from repro.llm.faults import DegradedClient, FaultInjectingClient
    from repro.llm.simulated import SimulatedLLM
    from repro.resilience.router import FailoverClient

    primary = DegradedClient(
        SimulatedLLM(cell.model, seed=cell.seed),
        cell.plan(),
        backend_name="primary",
    )
    secondary = SimulatedLLM(cell.model, seed=cell.seed + 1)
    router = FailoverClient(
        [("primary", 0, primary), ("secondary", 1, secondary)],
        ResilienceConfig(),
    )
    return FaultInjectingClient(router, plan=crash_plan or {})


def run_resilience_trial(
    cell: ResilienceChaosCell, site: str, workdir: str | Path
) -> ChaosTrial:
    """Crash one degraded cell at ``site``, resume, compare bit for bit."""
    from repro.datasets import load_dataset
    from repro.errors import InjectedCrashError, LLMError
    from repro.eval.harness import evaluate_pipeline
    from repro.llm.faults import Fault
    from repro.runtime.chaos import ChaosTrial, result_payload
    from repro.runtime.checkpoint import JournalChaos, RunCheckpoint
    from repro.runtime.journal import RunJournal
    from repro.testing.golden import diff_payloads

    if site not in CRASH_SITES:
        raise LLMError(
            f"unknown crash site {site!r}; expected one of {CRASH_SITES}"
        )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    dataset = load_dataset(cell.dataset, size=cell.size, seed=cell.seed)
    config = cell.config()
    executor_config = cell.executor_config()

    baseline_journal = workdir / f"{cell.name}.baseline.journal"
    baseline_journal.unlink(missing_ok=True)
    baseline = evaluate_pipeline(
        build_degraded_stack(cell), config, dataset, keep_raw=True,
        checkpoint=RunCheckpoint(baseline_journal),
        executor_config=executor_config,
    )
    __, baseline_records = RunJournal.load(baseline_journal)
    n_batches = len(baseline_records)
    n_calls = baseline.result.n_requests

    crash_journal = workdir / f"{cell.name}.{site}.journal"
    crash_journal.unlink(missing_ok=True)
    if site == "mid_batch":
        at_call = max(1, n_calls // 2)
        crash_client = build_degraded_stack(cell, crash_plan={
            at_call: Fault(kind="crash", message=f"chaos at call {at_call}"),
        })
        checkpoint = RunCheckpoint(crash_journal)
    else:
        crash_client = build_degraded_stack(cell)
        checkpoint = RunCheckpoint(
            crash_journal,
            chaos=JournalChaos(site=site, at_seq=max(1, n_batches // 2)),
        )
    crashed = False
    try:
        evaluate_pipeline(
            crash_client, config, dataset, keep_raw=True,
            checkpoint=checkpoint, executor_config=executor_config,
        )
    except InjectedCrashError:
        crashed = True

    __, crash_records, __ = RunJournal.recover(crash_journal)

    resumed = evaluate_pipeline(
        build_degraded_stack(cell), config, dataset, keep_raw=True,
        checkpoint=RunCheckpoint(crash_journal),
        executor_config=executor_config,
    )
    diffs = diff_payloads(result_payload(baseline), result_payload(resumed))
    rendered = [diff.render() for diff in diffs]
    if not crashed:
        rendered.insert(0, "the injected crash never fired")
    return ChaosTrial(
        cell=cell.name,
        site=site,
        crashed=crashed,
        identical=not diffs,
        n_batches_journaled=len(crash_records),
        diffs=rendered,
        journal=str(crash_journal),
    )


def run_resilience_matrix(
    cells: tuple[ResilienceChaosCell, ...] | None = None,
    sites: tuple[str, ...] | None = None,
    workdir: str | Path = ".chaos-resilience",
    artifact: str | Path | None = None,
) -> list[ChaosTrial]:
    """Sweep every (cell, site) pair of the degraded crash matrix."""
    import os

    from repro.runtime.chaos import CHAOS_DIFF_ENV
    from repro.testing.golden import write_diff_artifact

    trials: list[ChaosTrial] = []
    artifact_path = (
        artifact
        if artifact is not None
        else os.environ.get(CHAOS_DIFF_ENV, "CHAOS_DIFF.txt")
    )
    for cell in cells or default_resilience_chaos_cells():
        for site in sites or CRASH_SITES:
            trial = run_resilience_trial(cell, site, workdir)
            trials.append(trial)
            if not trial.ok:
                write_diff_artifact(trial.render(), path=artifact_path)
    return trials
