"""AIMD lane-width controller (TCP congestion control for LLM lanes).

The executor owns ``concurrency`` lanes but should not *use* them all
while the upstream is throttling: every throttled call burns a
rate-limit wait and pushes real work behind backoff.  The controller
keeps a fractional width in ``[1, concurrency]``; each successful call
adds ``aimd_increase`` lanes, each throttle signal multiplies the width
by ``aimd_decrease`` — the classic additive-increase /
multiplicative-decrease scheme that converges to the upstream's actual
capacity and drains instantly when a 429 storm starts.
"""

from __future__ import annotations

from repro.resilience.config import ResilienceConfig


class AimdController:
    """Tracks the adaptive lane width for one executor run."""

    def __init__(self, config: ResilienceConfig, concurrency: int):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self._increase = config.aimd_increase
        self._decrease = config.aimd_decrease
        self._max = float(concurrency)
        self._width = float(concurrency)
        self.n_throttle_events = 0
        self.n_success_events = 0

    @property
    def width(self) -> int:
        """Usable lane count right now — always within [1, concurrency]."""
        return max(1, min(int(self._max), int(self._width)))

    @property
    def fractional_width(self) -> float:
        return self._width

    def on_success(self) -> None:
        self.n_success_events += 1
        self._width = min(self._max, self._width + self._increase)

    def on_throttle(self) -> None:
        self.n_throttle_events += 1
        self._width = max(1.0, self._width * self._decrease)

    def checkpoint_state(self) -> dict:
        return {
            "width": self._width,
            "n_throttle_events": self.n_throttle_events,
            "n_success_events": self.n_success_events,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self._width = max(1.0, min(self._max, float(state["width"])))
        self.n_throttle_events = int(state["n_throttle_events"])
        self.n_success_events = int(state["n_success_events"])
