"""Backend resilience: surviving sick upstreams, deterministically.

The chaos stack proves the pipeline recovers from *death* (killed
processes, torn journals); this package makes it survive *sickness* —
429 storms, latency brownouts, overload windows, blackouts — while every
adaptive decision (lane width, hedge timing, failover order, circuit
transitions) stays a pure function of the simulated clock and seeded
plans, so degraded runs replay bit-identically.
"""

from repro.resilience.aimd import AimdController
from repro.resilience.bench import bench_plan, render_bench, run_resilience_bench
from repro.resilience.chaos import (
    ResilienceChaosCell,
    default_resilience_chaos_cells,
    run_resilience_matrix,
    run_resilience_trial,
)
from repro.resilience.config import ResilienceConfig
from repro.resilience.degradation import (
    EPISODE_KINDS,
    DegradationPlan,
    Episode,
    blackout_plan,
    brownout_plan,
)
from repro.resilience.health import BackendHealth
from repro.resilience.pool import PoolBackend, PoolMember
from repro.resilience.router import FailoverClient
from repro.resilience.signals import ThrottleSignal, attach, throttle_of

__all__ = [
    "AimdController",
    "BackendHealth",
    "DegradationPlan",
    "EPISODE_KINDS",
    "Episode",
    "FailoverClient",
    "PoolBackend",
    "PoolMember",
    "ResilienceChaosCell",
    "ResilienceConfig",
    "ThrottleSignal",
    "attach",
    "bench_plan",
    "blackout_plan",
    "brownout_plan",
    "default_resilience_chaos_cells",
    "render_bench",
    "run_resilience_bench",
    "run_resilience_matrix",
    "run_resilience_trial",
    "throttle_of",
]
