"""The resilience benchmark: what adaptivity buys under a scripted brownout.

Three arms run the *same* dataset against the *same* scripted degradation
(a brownout — throttle storm, latency spike, overload — followed by a
full blackout):

- ``unmitigated``: the degraded backend alone, default executor.  Retries
  exhaust inside the outage windows and the degradation ladder
  quarantines the affected instances.
- ``resilient``: the full stack — failover router with a healthy
  secondary, AIMD lane adaptation, hedged requests.  The run completes
  with near-full coverage because failures route around the outage.
- ``unhedged``: the resilient stack with hedging disabled — isolates the
  tail-latency contribution of hedging (p95 of ``llm.call_latency_s``).

Everything is virtual-clock simulated, so the numbers are deterministic
and the assertions in ``benchmarks/test_resilience.py`` are exact, not
flaky thresholds.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.resilience.config import ResilienceConfig
from repro.resilience.degradation import DegradationPlan, Episode

#: p-quantile reported for the hedged-vs-unhedged tail comparison
TAIL_QUANTILE = 0.95


def bench_plan(seed: int = 0) -> DegradationPlan:
    """The scripted outage both arms face: brownout, then blackout.

    Ordering matters: the latency brownout comes *first*, while the
    primary's circuit is still closed, so the resilient arm actually
    routes slow calls through the primary and hedging has something to
    win.  The blackout then outlasts the non-adaptive executor's whole
    recovery apparatus — retries, breaker cooldowns, and the degradation
    ladder's bisection cascade — which is what turns the outage into
    quarantined instances on the unmitigated arm.
    """
    return DegradationPlan(seed=seed, episodes=(
        Episode(kind="latency_brownout", start_s=5.0, duration_s=20.0,
                intensity=1.0, latency_factor=6.0),
        Episode(kind="rate_limit_storm", start_s=25.0, duration_s=8.0,
                intensity=0.7, retry_after_s=3.0),
        Episode(kind="blackout", start_s=33.0, duration_s=600.0,
                intensity=1.0, retry_after_s=1.0),
    ))


def _degraded_primary(model: str, seed: int, plan: DegradationPlan):
    from repro.llm.faults import DegradedClient
    from repro.llm.simulated import SimulatedLLM

    return DegradedClient(
        SimulatedLLM(model, seed=seed), plan, backend_name="primary"
    )


def _resilient_stack(
    model: str, seed: int, plan: DegradationPlan, config: ResilienceConfig
):
    from repro.llm.simulated import SimulatedLLM
    from repro.resilience.router import FailoverClient

    return FailoverClient(
        [
            ("primary", 0, _degraded_primary(model, seed, plan)),
            ("secondary", 1, SimulatedLLM(model, seed=seed + 1)),
        ],
        config,
    )


def _arm_payload(run, extra: dict | None = None) -> dict:
    """The comparable core of one arm: coverage, cost, clock, tail."""
    metrics = run.result.observation.metrics
    payload = {
        "score": run.score,
        "coverage": round(run.coverage, 6),
        "n_instances": run.n_instances,
        "n_quarantined": run.n_quarantined,
        "n_requests": run.n_requests,
        "total_tokens": run.total_tokens,
        "makespan_s": round(run.hours * 3600.0, 6),
        "p95_call_latency_s": round(
            metrics.histogram("llm.call_latency_s").quantile(TAIL_QUANTILE), 6
        ),
        "throughput_rph": round(
            run.n_requests / run.hours if run.hours > 0 else 0.0, 3
        ),
        "goodput_iph": round(
            (run.n_instances - run.n_quarantined) / run.hours
            if run.hours > 0 else 0.0,
            3,
        ),
    }
    if extra:
        payload.update(extra)
    return payload


def run_resilience_bench(
    out_path: str | Path | None = "BENCH_resilience.json",
    dataset_name: str = "adult",
    size: int = 360,
    seed: int = 0,
    concurrency: int = 4,
    model: str = "gpt-3.5",
) -> dict:
    """Run all three arms and (optionally) write ``BENCH_resilience.json``."""
    from repro.core.config import PipelineConfig
    from repro.core.executor import ExecutorConfig
    from repro.datasets import load_dataset
    from repro.eval.harness import evaluate_pipeline
    from repro.obs.manifest import canonical_json

    dataset = load_dataset(dataset_name, size=size, seed=seed)
    config = PipelineConfig(
        model=model,
        seed=seed,
        concurrency=concurrency,
        observability=True,
        degradation="ladder",
    )
    plan = bench_plan(seed)
    resilience = ResilienceConfig()

    unmitigated = evaluate_pipeline(
        _degraded_primary(model, seed, plan), config, dataset, keep_raw=True
    )

    resilient_client = _resilient_stack(model, seed, plan, resilience)
    resilient = evaluate_pipeline(
        resilient_client, config, dataset, keep_raw=True,
        executor_config=ExecutorConfig(resilience=resilience),
    )

    unhedged_config = replace(resilience, hedge=False)
    unhedged_client = _resilient_stack(model, seed, plan, unhedged_config)
    unhedged = evaluate_pipeline(
        unhedged_client, config, dataset, keep_raw=True,
        executor_config=ExecutorConfig(resilience=unhedged_config),
    )

    router = resilient_client.health_payload()["router"]
    payload = {
        "config": {
            "dataset": dataset_name,
            "size": size,
            "seed": seed,
            "concurrency": concurrency,
            "model": model,
            "plan": plan.payload(),
        },
        "unmitigated": _arm_payload(unmitigated),
        "resilient": _arm_payload(resilient, {
            "router": router,
            "backend_health": resilient_client.health_payload()["backends"],
            "breaker_transitions": dict(
                resilient.execution.breaker_transitions
            ),
        }),
        "unhedged": _arm_payload(unhedged, {
            "router": unhedged_client.health_payload()["router"],
        }),
        "comparison": {
            "quarantine_ratio": (
                unmitigated.n_quarantined / max(1, resilient.n_quarantined)
            ),
            "coverage_gain": round(
                resilient.coverage - unmitigated.coverage, 6
            ),
            "hedge_wins": router["n_hedge_wins"],
            "hedge_tail_gain_s": round(
                _arm_payload(unhedged)["p95_call_latency_s"]
                - _arm_payload(resilient)["p95_call_latency_s"],
                6,
            ),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(
            canonical_json(payload) + "\n", encoding="utf-8"
        )
    return payload


def render_bench(payload: dict) -> str:
    """A terminal summary of one benchmark payload."""
    unmit = payload["unmitigated"]
    res = payload["resilient"]
    cmp_ = payload["comparison"]
    lines = [
        "resilience-bench — scripted brownout + blackout "
        f"({payload['config']['dataset']}, "
        f"{payload['config']['size']} instance(s), "
        f"concurrency {payload['config']['concurrency']})",
        f"  unmitigated: coverage {unmit['coverage'] * 100:.1f}%, "
        f"{unmit['n_quarantined']} quarantined, "
        f"p95 {unmit['p95_call_latency_s']:.2f}s",
        f"  resilient:   coverage {res['coverage'] * 100:.1f}%, "
        f"{res['n_quarantined']} quarantined, "
        f"p95 {res['p95_call_latency_s']:.2f}s, "
        f"{res['router']['n_failovers']} failover(s), "
        f"{cmp_['hedge_wins']} hedge win(s)",
        f"  quarantine ratio (unmitigated : resilient) "
        f"{cmp_['quarantine_ratio']:.1f}x, "
        f"hedged p95 gain {cmp_['hedge_tail_gain_s']:.2f}s vs unhedged",
    ]
    return "\n".join(lines)
