"""Usage accounting: tokens, dollars, and modeled wall-clock.

Table 3's token/cost/time columns come from here.  Tokens are counted from
the *actual prompt text* with the estimator in :mod:`repro.text.tokenize`,
so the batch-prompting savings (instruction amortization) are mechanical
rather than scripted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.base import CompletionRequest, CompletionResponse, Usage
from repro.llm.profiles import ModelProfile, get_profile
from repro.text.tokenize import count_message_tokens, count_tokens


def request_prompt_tokens(request: CompletionRequest) -> int:
    """Token count of a request's full transcript."""
    return count_message_tokens(request.transcript)


def completion_tokens(text: str) -> int:
    """Token count of a completion's text."""
    return count_tokens(text)


@dataclass
class LedgerEntry:
    """One metered request."""

    model: str
    usage: Usage
    cost_usd: float
    latency_s: float


@dataclass
class UsageLedger:
    """Accumulates request costs across a run.

    The ledger is the experiment harness's single source of truth for the
    token/cost/time columns; pipelines add one entry per request.
    """

    entries: list[LedgerEntry] = field(default_factory=list)

    def record(self, request: CompletionRequest, response: CompletionResponse) -> LedgerEntry:
        """Meter one completed request/response pair."""
        profile = get_profile(request.model)
        entry = LedgerEntry(
            model=request.model,
            usage=response.usage,
            cost_usd=profile.cost_usd(
                response.usage.prompt_tokens, response.usage.completion_tokens
            ),
            latency_s=response.latency_s,
        )
        self.entries.append(entry)
        return entry

    @property
    def n_requests(self) -> int:
        return len(self.entries)

    @property
    def total_usage(self) -> Usage:
        total = Usage(prompt_tokens=0, completion_tokens=0)
        for entry in self.entries:
            total = total + entry.usage
        return total

    @property
    def total_tokens(self) -> int:
        return self.total_usage.total_tokens

    @property
    def total_cost_usd(self) -> float:
        return sum(entry.cost_usd for entry in self.entries)

    @property
    def total_hours(self) -> float:
        """Modeled sequential wall-clock, in hours (the paper's unit)."""
        return sum(entry.latency_s for entry in self.entries) / 3600.0

    def clear(self) -> None:
        self.entries.clear()


def meter_response(
    profile: ModelProfile,
    request: CompletionRequest,
    text: str,
    prompt_tokens: int | None = None,
) -> CompletionResponse:
    """Build a fully metered response for ``text`` answering ``request``.

    ``prompt_tokens`` lets a caller that already counted the transcript
    (the vectorized decode path memoizes per-message counts) skip the
    recount; when given it must equal ``request_prompt_tokens(request)``.
    """
    prompt = (
        request_prompt_tokens(request) if prompt_tokens is None
        else prompt_tokens
    )
    completion = completion_tokens(text)
    return CompletionResponse(
        text=text,
        model=profile.name,
        usage=Usage(prompt_tokens=prompt, completion_tokens=completion),
        latency_s=profile.latency.latency(prompt, completion),
    )
