"""Rate limiting and retry with exponential backoff.

Commercial LLM APIs throttle by requests- and tokens-per-minute; robust
preprocessing pipelines wrap every call in backoff-and-retry.  Both pieces
run on a *simulated clock* so tests and experiments never sleep: the clock
advances by the modeled latency of each request plus any imposed waits,
and the total simulated time feeds the experiment's hours column.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import LLMError, RateLimitError
from repro.llm.accounting import request_prompt_tokens
from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds


class LaneClock:
    """Per-lane virtual clocks over one shared simulated timeline.

    A lane models one concurrent request slot of a deployment.  Each lane
    has its own "available at" time; occupying a lane charges busy time to
    it, so concurrent lanes *overlap* latency instead of summing it.  The
    makespan — the wall-clock of the whole run — is the latest lane time,
    while ``sum(busy)`` recovers the sequential estimate.
    """

    def __init__(self, n_lanes: int):
        if n_lanes < 1:
            raise ValueError(f"need at least one lane, got {n_lanes}")
        self._avail = [0.0] * n_lanes
        self._busy = [0.0] * n_lanes

    @property
    def n_lanes(self) -> int:
        return len(self._avail)

    def available_at(self, lane: int) -> float:
        return self._avail[lane]

    def busy_seconds(self, lane: int) -> float:
        return self._busy[lane]

    @property
    def min_available(self) -> float:
        """Earliest time any lane can start a new request."""
        return min(self._avail)

    @property
    def makespan(self) -> float:
        """Virtual wall-clock of everything scheduled so far."""
        return max(self._avail)

    def earliest_lane(self, not_before: list[float] | None = None) -> int:
        """Lane that can start soonest (ties break to the lowest index).

        ``not_before`` optionally holds a per-lane floor (e.g. a circuit
        breaker's reopen time) combined with lane availability.
        """
        best_lane, best_time = 0, float("inf")
        for lane, avail in enumerate(self._avail):
            start = avail if not_before is None else max(avail, not_before[lane])
            if start < best_time:
                best_lane, best_time = lane, start
        return best_lane

    def occupy(self, lane: int, start: float, duration: float) -> float:
        """Charge ``duration`` busy seconds to ``lane`` beginning at ``start``.

        ``start`` may not precede the lane's availability (no time travel);
        any gap between availability and ``start`` is idle time.  Returns
        the finish time.
        """
        if duration < 0:
            raise ValueError("cannot occupy a lane for negative time")
        if start < self._avail[lane] - 1e-9:
            raise ValueError(
                f"lane {lane} is busy until {self._avail[lane]:.3f}, "
                f"cannot start at {start:.3f}"
            )
        self._avail[lane] = start + duration
        self._busy[lane] += duration
        return self._avail[lane]

    def idle_until(self, lane: int, time: float) -> None:
        """Push a lane's availability forward without charging busy time."""
        if time > self._avail[lane]:
            self._avail[lane] = time

    def utilization(self, lane: int) -> float:
        """Busy fraction of this lane relative to the run's makespan."""
        span = self.makespan
        return self._busy[lane] / span if span > 0 else 0.0

    def checkpoint_state(self) -> dict:
        """The clock's full mutable state as plain JSON-ready data."""
        return {"avail": list(self._avail), "busy": list(self._busy)}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`checkpoint_state`.

        The lane count must match — a resumed run re-creates its clock
        from the same configuration, so a mismatch means the checkpoint
        belongs to a different run.
        """
        avail = [float(v) for v in state["avail"]]
        busy = [float(v) for v in state["busy"]]
        if len(avail) != self.n_lanes or len(busy) != self.n_lanes:
            raise ValueError(
                f"checkpoint has {len(avail)} lane(s), clock has {self.n_lanes}"
            )
        self._avail = avail
        self._busy = busy


@dataclass
class RateLimit:
    """A requests-per-minute plus tokens-per-minute budget."""

    requests_per_minute: int
    tokens_per_minute: int

    def __post_init__(self) -> None:
        if self.requests_per_minute <= 0 or self.tokens_per_minute <= 0:
            raise ValueError("rate limits must be positive")


class RateLimiter:
    """Sliding one-minute window over a simulated clock.

    The budget is *global*: with lane-aware scheduling every lane checks
    against the same event window, so N concurrent lanes overlap latency
    but still share one RPM/TPM allowance — exactly how commercial APIs
    meter an account, not a connection.
    """

    def __init__(
        self,
        limit: RateLimit,
        clock: SimulatedClock | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self._limit = limit
        self._clock = clock
        self._metrics = metrics
        self._events: list[tuple[float, int]] = []  # (time, tokens)

    def check(
        self,
        tokens: int,
        now: float | None = None,
        floor: float | None = None,
    ) -> None:
        """Record an attempt at virtual time ``now``; raise on over-budget.

        ``now`` defaults to the attached clock's time (the sequential
        case).  Lanes run at different virtual times, so a caller passes
        its lane's time explicitly; ``floor`` is the earliest time any
        lane could still issue a request — events older than ``floor - 60``
        can never be observed again and are pruned.
        """
        if now is None:
            if self._clock is None:
                raise ValueError("RateLimiter needs a clock or an explicit now")
            now = self._clock.now
        if floor is None:
            floor = now
        self._events = [
            (t, n) for t, n in self._events if t > min(floor, now) - 60.0
        ]
        window = [(t, n) for t, n in self._events if now - 60.0 < t <= now]
        n_requests = len(window)
        n_tokens = sum(n for __, n in window)
        if (
            n_requests + 1 > self._limit.requests_per_minute
            or n_tokens + tokens > self._limit.tokens_per_minute
        ):
            oldest = window[0][0] if window else now
            retry_after = max(0.001, oldest + 60.0 - now)
            if self._metrics is not None:
                self._metrics.counter("ratelimit.throttled").inc()
                self._metrics.histogram("ratelimit.wait_s").observe(retry_after)
            raise RateLimitError(retry_after)
        self._events.append((now, tokens))
        self._events.sort(key=lambda event: event[0])

    def checkpoint_state(self) -> dict:
        """The limiter's sliding window as plain JSON-ready data."""
        return {"events": [[t, n] for t, n in self._events]}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore a window captured by :meth:`checkpoint_state`."""
        self._events = [(float(t), int(n)) for t, n in state["events"]]


class SlidingWindowBudget:
    """A one-minute RPM/TPM window for *monotonic* admission decisions.

    :class:`RateLimiter` serves the executor, whose lanes probe the window
    at out-of-order virtual times; it rebuilds the event list on every
    check.  Admission control at a serving front door sees arrivals in
    nondecreasing time order, so this variant keeps a deque and a running
    token sum — O(1) amortized per request, which is what lets a load
    generator replay hundreds of thousands of arrivals per second.

    Unlike the limiter, an over-budget request is *not* recorded: the
    caller rejects it outright (admission control) instead of waiting out
    the window (backoff), so a rejected burst does not poison the budget
    for requests that follow.
    """

    def __init__(self, limit: RateLimit):
        self._limit = limit
        self._events: deque[tuple[float, int]] = deque()  # (time, tokens)
        self._token_sum = 0
        self._last_now = float("-inf")

    @property
    def limit(self) -> RateLimit:
        return self._limit

    def try_admit(self, tokens: int, now: float) -> str | None:
        """Admit a ``tokens``-sized request at time ``now``, or name why not.

        Returns ``None`` and records the request when it fits the budget;
        returns ``"rpm"`` or ``"tpm"`` (and records nothing) when it does
        not.  ``now`` must be nondecreasing across calls.
        """
        if now < self._last_now:
            raise ValueError(
                f"admission times must be nondecreasing: got {now:.3f} "
                f"after {self._last_now:.3f}"
            )
        self._last_now = now
        while self._events and self._events[0][0] <= now - 60.0:
            __, stale = self._events.popleft()
            self._token_sum -= stale
        if len(self._events) + 1 > self._limit.requests_per_minute:
            return "rpm"
        if self._token_sum + tokens > self._limit.tokens_per_minute:
            return "tpm"
        self._events.append((now, tokens))
        self._token_sum += tokens
        return None


class RetryingClient:
    """Backoff-and-retry wrapper enforcing a rate limit on a virtual clock.

    The modeled latency of every successful request, and every backoff
    wait, advances the shared clock — so ``clock.now`` after a run is the
    wall-clock a real deployment would have spent.
    """

    def __init__(
        self,
        inner: LLMClient,
        limit: RateLimit,
        clock: SimulatedClock | None = None,
        max_retries: int = 6,
        base_backoff_s: float = 1.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._inner = inner
        self._clock = clock or SimulatedClock()
        self._limiter = RateLimiter(limit, self._clock)
        self._max_retries = max_retries
        self._base_backoff_s = base_backoff_s
        self.n_rate_limit_hits = 0

    @property
    def clock(self) -> SimulatedClock:
        return self._clock

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        tokens = request_prompt_tokens(request)
        backoff = self._base_backoff_s
        for attempt in range(self._max_retries + 1):
            try:
                self._limiter.check(tokens)
            except RateLimitError as exc:
                self.n_rate_limit_hits += 1
                if attempt == self._max_retries:
                    raise
                # Wait out the window (plus exponential backoff), then retry.
                self._clock.advance(max(exc.retry_after, backoff))
                backoff *= 2.0
                continue
            response = self._inner.complete(request)
            self._clock.advance(response.latency_s)
            return response
        raise LLMError("retry loop exited without a response")  # pragma: no cover
