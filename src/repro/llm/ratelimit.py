"""Rate limiting and retry with exponential backoff.

Commercial LLM APIs throttle by requests- and tokens-per-minute; robust
preprocessing pipelines wrap every call in backoff-and-retry.  Both pieces
run on a *simulated clock* so tests and experiments never sleep: the clock
advances by the modeled latency of each request plus any imposed waits,
and the total simulated time feeds the experiment's hours column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LLMError, RateLimitError
from repro.llm.accounting import request_prompt_tokens
from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds


@dataclass
class RateLimit:
    """A requests-per-minute plus tokens-per-minute budget."""

    requests_per_minute: int
    tokens_per_minute: int

    def __post_init__(self) -> None:
        if self.requests_per_minute <= 0 or self.tokens_per_minute <= 0:
            raise ValueError("rate limits must be positive")


class RateLimiter:
    """Sliding one-minute window over a simulated clock."""

    def __init__(self, limit: RateLimit, clock: SimulatedClock):
        self._limit = limit
        self._clock = clock
        self._events: list[tuple[float, int]] = []  # (time, tokens)

    def _prune(self) -> None:
        cutoff = self._clock.now - 60.0
        self._events = [(t, n) for t, n in self._events if t > cutoff]

    def check(self, tokens: int) -> None:
        """Record an attempt; raise :class:`RateLimitError` if over budget."""
        self._prune()
        n_requests = len(self._events)
        n_tokens = sum(n for __, n in self._events)
        if (
            n_requests + 1 > self._limit.requests_per_minute
            or n_tokens + tokens > self._limit.tokens_per_minute
        ):
            oldest = self._events[0][0] if self._events else self._clock.now
            retry_after = max(0.001, oldest + 60.0 - self._clock.now)
            raise RateLimitError(retry_after)
        self._events.append((self._clock.now, tokens))


class RetryingClient:
    """Backoff-and-retry wrapper enforcing a rate limit on a virtual clock.

    The modeled latency of every successful request, and every backoff
    wait, advances the shared clock — so ``clock.now`` after a run is the
    wall-clock a real deployment would have spent.
    """

    def __init__(
        self,
        inner: LLMClient,
        limit: RateLimit,
        clock: SimulatedClock | None = None,
        max_retries: int = 6,
        base_backoff_s: float = 1.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._inner = inner
        self._clock = clock or SimulatedClock()
        self._limiter = RateLimiter(limit, self._clock)
        self._max_retries = max_retries
        self._base_backoff_s = base_backoff_s
        self.n_rate_limit_hits = 0

    @property
    def clock(self) -> SimulatedClock:
        return self._clock

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        tokens = request_prompt_tokens(request)
        backoff = self._base_backoff_s
        for attempt in range(self._max_retries + 1):
            try:
                self._limiter.check(tokens)
            except RateLimitError as exc:
                self.n_rate_limit_hits += 1
                if attempt == self._max_retries:
                    raise
                # Wait out the window (plus exponential backoff), then retry.
                self._clock.advance(max(exc.retry_after, backoff))
                backoff *= 2.0
                continue
            response = self._inner.complete(request)
            self._clock.advance(response.latency_s)
            return response
        raise LLMError("retry loop exited without a response")  # pragma: no cover
