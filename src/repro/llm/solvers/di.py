"""Data-imputation solver.

Knowledge-bound: the solver infers the missing cell from the record's
other attributes via coverage-gated world facts (area code -> city, brand
token -> manufacturer), mirroring the paper's worked example ("The phone
number '770' suggests ... Marietta").

Few-shot conditioning matters in two mechanistic ways:

- **surface convention** — a model recalling a fact emits its *canonical*
  name ("hewlett-packard") unless examples demonstrate the dataset's
  convention ("hp"); this is the zero-shot accuracy gap of Table 2.
- **retrieval fallback** — when knowledge fails, the solver answers with
  the most similar example's answer (what an LLM's in-context induction
  does), so few-shot also lifts the no-knowledge cases.
"""

from __future__ import annotations

import random
import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import ModelProfile
from repro.llm.promptparse import ParsedExample, ParsedPrompt, ParsedQuestion
from repro.llm.solvers.common import SolvedAnswer
from repro.text.similarity import token_set_ratio

_AREA_CODE_RE = re.compile(r"\b(\d{3})[\s\-./)]")
_LEADING_AREA_RE = re.compile(r"^\(?(\d{3})\)?[\s\-./]")


class DISolver:
    """Answers "what is the missing value?" questions."""

    def __init__(self, profile: ModelProfile, knowledge: KnowledgeBase,
                 rng: random.Random, temperature: float, memo=None):
        self._profile = profile
        self._knowledge = knowledge
        self._rng = rng
        self._temperature = temperature
        self._memo = memo  # DI retrieves per-question; nothing to pre-fit

    def solve(self, prompt: ParsedPrompt) -> list[SolvedAnswer]:
        target = prompt.target_attribute or ""
        conditioned = bool(prompt.examples)
        answers: list[SolvedAnswer] = []
        for question in prompt.questions:
            answers.append(
                self._solve_one(question, target, prompt, conditioned)
            )
        return answers

    def _solve_one(self, question: ParsedQuestion, target: str,
                   prompt: ParsedPrompt, conditioned: bool) -> SolvedAnswer:
        fields = question.fields or {}
        value, reason = self._infer(fields, target, prompt.reasoning)
        if value is not None:
            value = self._apply_convention(value, target, conditioned)
        if value is None and conditioned:
            value, reason = self._retrieve_from_examples(fields, prompt.examples)
        if value is None:
            # The model has to say *something*: an uninformed guess.
            value = self._uninformed_guess(fields, target)
            reason = "No strong evidence; guessing from the record's style."
        # Hallucination: occasionally a confidently wrong recall.
        if self._rng.random() < self._hallucination_rate():
            value = self._perturb_guess(value)
        value = self._apply_type_hint(value, prompt.type_hint)
        return SolvedAnswer(reason=reason, answer=value)

    def _apply_type_hint(self, value: str, type_hint: str | None) -> str:
        """Honor the zero-shot data-type hint (paper Section 3.1).

        Given 'The "hoursperweek" attribute can be a range of integers',
        a numeric answer is widened into a plausible range instead of a
        point estimate — exactly the behaviour the hint exists to elicit.
        """
        if not type_hint or "range" not in type_hint.lower():
            return value
        try:
            center = float(value)
        except (TypeError, ValueError):
            return value
        spread = max(1, round(abs(center) * 0.1))
        low = center - spread
        high = center + spread
        if center.is_integer():
            return f"{int(low)}-{int(high)}"
        return f"{low:.1f}-{high:.1f}"

    # -- inference chains -----------------------------------------------------

    def _infer(self, fields: dict[str, str | None], target: str,
               careful: bool) -> tuple[str | None, str]:
        """Run the evidence chains for the target attribute.

        The careful (reasoning) path tries every chain and cross-checks;
        the shallow path stops at the first.
        """
        chains = []
        if target == "city":
            chains = [self._city_from_phone, self._city_from_zip]
        elif target in ("manufacturer", "brand"):
            chains = [self._brand_from_text]
        elif target == "state":
            chains = [self._state_from_city, self._state_from_stateavg]
        elif target == "condition":
            chains = [self._condition_from_measure]
        elif target == "measurename":
            chains = [self._measurename_from_code]
        elif target == "educationnum":
            chains = [self._educationnum_from_education]
        elif target == "education":
            chains = [self._education_from_number]
        results: list[tuple[str, str]] = []
        for chain in chains:
            outcome = chain(fields)
            if outcome is not None:
                results.append(outcome)
                if not careful:
                    break
        if not results:
            return None, ""
        # Careful path: prefer agreement; otherwise the first chain wins.
        values = [v for v, __ in results]
        if careful and len(set(values)) == 1 and len(values) > 1:
            return values[0], " ".join(r for __, r in results)
        return results[0]

    def _city_from_phone(self, fields: dict[str, str | None]) -> tuple[str, str] | None:
        phone = fields.get("phone")
        if not phone:
            return None
        match = _LEADING_AREA_RE.match(str(phone)) or _AREA_CODE_RE.search(str(phone))
        if not match:
            digits = re.sub(r"\D", "", str(phone))
            if len(digits) < 10:
                return None
            area = digits[:3]
        else:
            area = match.group(1)
        city = self._knowledge.city_for_area_code(area)
        if city is None:
            return None
        return city, f'The phone number "{area}" suggests {city}.'

    def _city_from_zip(self, fields: dict[str, str | None]) -> tuple[str, str] | None:
        zipcode = fields.get("zipcode") or fields.get("zip")
        if not zipcode or len(str(zipcode)) < 3:
            return None
        city = self._knowledge.city_for_zip_prefix(str(zipcode)[:3])
        if city is None:
            return None
        return city, f'The zip code prefix suggests {city}.'

    def _brand_from_text(self, fields: dict[str, str | None]) -> tuple[str, str] | None:
        for source in ("name", "title", "description"):
            text = fields.get(source)
            if not text:
                continue
            brand = self._knowledge.find_brand(str(text))
            if brand is not None:
                return brand, f'The {source} mentions the brand "{brand}".'
        return None

    def _state_from_city(self, fields: dict[str, str | None]) -> tuple[str, str] | None:
        city = fields.get("city")
        if not city:
            return None
        state = self._knowledge.state_for_city(str(city))
        if state is None:
            return None
        return state, f"{city} is in {state}."

    def _state_from_stateavg(
        self, fields: dict[str, str | None]
    ) -> tuple[str, str] | None:
        stateavg = fields.get("stateavg")
        if not stateavg or "_" not in str(stateavg):
            return None
        state = str(stateavg).partition("_")[0]
        legal = self._knowledge.domain_of("state")
        if legal is not None and state not in legal:
            return None
        return state, f'The stateavg prefix "{state}" names the state.'

    def _condition_from_measure(
        self, fields: dict[str, str | None]
    ) -> tuple[str, str] | None:
        """Hospital measure codes determine the condition family."""
        code = fields.get("measurecode")
        if not code:
            return None
        prefix = str(code).split("-")[0].lower()
        condition = {
            "ami": "heart attack",
            "hf": "heart failure",
            "pn": "pneumonia",
            "scip": "surgical infection prevention",
        }.get(prefix)
        if condition is None:
            return None
        return condition, f'Measure codes "{prefix}-*" track {condition}.'

    def _measurename_from_code(
        self, fields: dict[str, str | None]
    ) -> tuple[str, str] | None:
        code = fields.get("measurecode")
        if not code:
            return None
        from repro.datasets.vocabularies import HOSPITAL_MEASURES

        for known_code, name in HOSPITAL_MEASURES:
            if known_code == str(code).lower() and self._knowledge.knows_word(
                name.split()[0]
            ):
                return name, f'Measure {code} is "{name}".'
        return None

    def _educationnum_from_education(
        self, fields: dict[str, str | None]
    ) -> tuple[str, str] | None:
        education = fields.get("education")
        if not education:
            return None
        number = self._knowledge.education_number(str(education))
        if number is None:
            return None
        return str(number), f'"{education}" is education level {number}.'

    def _education_from_number(
        self, fields: dict[str, str | None]
    ) -> tuple[str, str] | None:
        number = fields.get("educationnum")
        if number is None:
            return None
        from repro.datasets.vocabularies import EDUCATION_LEVELS

        for name, level in EDUCATION_LEVELS:
            if str(level) == str(number):
                if self._knowledge.education_number(name) is not None:
                    return name, f'Education level {number} is "{name}".'
        return None

    # -- conditioning ----------------------------------------------------------

    def _apply_convention(self, value: str, target: str,
                          conditioned: bool) -> str:
        """Unconditioned models sometimes emit the canonical alias."""
        if conditioned:
            return value
        alias = None
        if target in ("manufacturer", "brand"):
            alias = self._knowledge.brand_alias(value)
        elif target == "city":
            alias = self._knowledge.city_alias(value)
        if alias is None:
            return value
        alias_rate = 0.55 * (1.0 - self._profile.zero_shot_calibration)
        if self._rng.random() < alias_rate:
            return alias
        return value

    def _retrieve_from_examples(
        self, fields: dict[str, str | None], examples: list[ParsedExample]
    ) -> tuple[str | None, str]:
        """In-context induction: answer like the most similar example."""
        best_answer: str | None = None
        best_score = 0.0
        query = _record_text(fields)
        for example in examples:
            if example.question.fields is None:
                continue
            score = token_set_ratio(query, _record_text(example.question.fields))
            if score > best_score:
                best_score = score
                best_answer = example.answer
        if best_answer is None or best_score < 0.3:
            return None, ""
        return best_answer, "Answering like the most similar example."

    def _uninformed_guess(self, fields: dict[str, str | None], target: str) -> str:
        """A plausible-sounding but uninformed answer (limitation (2))."""
        seeds = [str(v) for v in fields.values() if v]
        if target == "city":
            return "springfield"
        if target in ("manufacturer", "brand") and seeds:
            return seeds[0].split()[0]
        return "unknown"

    def _hallucination_rate(self) -> float:
        scale = 0.4 + 0.6 * (
            self._temperature / max(self._profile.default_temperature, 1e-6)
        )
        return self._profile.decision_noise * 0.18 * scale

    def _perturb_guess(self, value: str) -> str:
        """A confidently wrong variant: swap to a sibling fact."""
        if self._knowledge.knows_city(value):
            from repro.datasets.vocabularies import US_CITIES

            other = self._rng.choice(US_CITIES).name
            return other if other != value else value
        tokens = value.split()
        if len(tokens) > 1:
            return " ".join(tokens[:-1])
        return value + "s"


def _record_text(fields: dict[str, str | None]) -> str:
    return " ".join(str(v) for v in fields.values() if v)
