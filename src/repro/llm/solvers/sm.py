"""Schema-matching solver.

Two evidence sources, mirroring how an LLM actually judges attribute pairs:

- **concept resolution** (careful path): both attribute names resolve to
  known clinical concepts via the knowledge base; match iff same concept.
  Gated by ``concept_coverage`` — the specialist-domain knowledge that
  separates GPT-4 from GPT-3.5 on Synthea.
- **lexical comparison** (fallback and shallow path): token overlap of the
  names plus description similarity.  By construction of the benchmark
  this is weak — hard negatives overlap heavily, positives may not overlap
  at all — which is why zero-shot SM scores so poorly in Table 2.
"""

from __future__ import annotations

import random

from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import ModelProfile
from repro.llm.promptparse import ParsedExample, ParsedPrompt, ParsedQuestion
from repro.llm.solvers.common import (
    BatchInterference,
    SolvedAnswer,
    ThresholdFit,
    default_threshold,
    examples_key,
    memoized_fit,
    noisy,
)
from repro.text.similarity import jaccard, token_set_ratio


def _name_tokens(name: str) -> list[str]:
    return [t for t in name.replace("_", " ").replace("-", " ").split() if t]


#: opposed qualifier pairs: schemas full of shared vocabulary still differ
#: decisively on these (visit_START_date vs visit_END_date)
_ANTONYMS: tuple[tuple[str, str], ...] = (
    ("start", "end"), ("start", "stop"), ("begin", "end"),
    ("admission", "discharge"), ("admitted", "discharged"),
    ("systolic", "diastolic"), ("birth", "death"), ("min", "max"),
    ("first", "last"), ("open", "close"),
)


def _antonym_clash(text_a: str, text_b: str) -> bool:
    """Does one side carry a qualifier whose opposite marks the other?"""
    tokens_a = set(_name_tokens(text_a.lower()))
    tokens_b = set(_name_tokens(text_b.lower()))
    for left, right in _ANTONYMS:
        a_l, a_r = left in tokens_a, right in tokens_a
        b_l, b_r = left in tokens_b, right in tokens_b
        one_way = a_l and b_r and not (a_r or b_l)
        other_way = a_r and b_l and not (a_l or b_r)
        if one_way or other_way:
            return True
    return False


class SMSolver:
    """Answers "are these the same attribute?" questions."""

    def __init__(self, profile: ModelProfile, knowledge: KnowledgeBase,
                 rng: random.Random, temperature: float, memo=None):
        self._profile = profile
        self._knowledge = knowledge
        self._rng = rng
        self._temperature = temperature
        self._memo = memo

    def lexical_score(self, left: dict[str, str | None],
                      right: dict[str, str | None]) -> float:
        """Surface similarity of two (name, description) attributes."""
        name_l = str(left.get("name") or "")
        name_r = str(right.get("name") or "")
        desc_l = str(left.get("description") or "")
        desc_r = str(right.get("description") or "")
        name_sim = jaccard(_name_tokens(name_l), _name_tokens(name_r))
        desc_sim = token_set_ratio(desc_l, desc_r)
        score = 0.45 * name_sim + 0.55 * desc_sim
        if _antonym_clash(f"{name_l} {desc_l}", f"{name_r} {desc_r}"):
            score *= 0.4  # opposed qualifiers trump shared vocabulary
        return score

    def solve(self, prompt: ParsedPrompt) -> list[SolvedAnswer]:
        fit = memoized_fit(
            self._memo,
            ("sm", examples_key(prompt.examples)),
            lambda: self._fit_threshold(prompt.examples),
        )
        interference = BatchInterference(
            self._profile, self._rng,
            questions=[q.raw for q in prompt.questions],
        )
        answers = []
        for question in prompt.questions:
            answers.append(
                self._solve_one(question, prompt.reasoning, fit, interference)
            )
        return answers

    def _fit_threshold(self, examples: list[ParsedExample]) -> ThresholdFit:
        default = default_threshold(
            well_calibrated=0.55, badly_calibrated=0.3,
            calibration=self._profile.zero_shot_calibration,
        )
        scores: list[float] = []
        labels: list[bool] = []
        for example in examples:
            if example.question.left is None or example.question.right is None:
                continue
            scores.append(
                self.lexical_score(example.question.left, example.question.right)
            )
            labels.append(example.answer.strip().lower().startswith("yes"))
        if not scores:
            return ThresholdFit(threshold=default, fitted=False)
        return ThresholdFit.from_examples(scores, labels, default)

    def _solve_one(self, question: ParsedQuestion, careful: bool,
                   fit: ThresholdFit, interference: BatchInterference) -> SolvedAnswer:
        left = question.left or {}
        right = question.right or {}
        name_l = str(left.get("name") or "")
        name_r = str(right.get("name") or "")

        reason = ""
        decision: bool | None = None
        margin = 0.0
        if careful and not fit.fitted:
            # Reasoning with no examples to calibrate against: the model
            # reasons its way to the *literal* reading of "the same
            # attribute" and only accepts near-identical pairs.  This is
            # the paper's ZS-T+B+ZS-R collapse on Synthea (5.9 F1).
            score = self.lexical_score(left, right)
            score = noisy(score, self._rng, self._profile, self._temperature)
            decision = score >= 0.78
            margin = score - 0.78
            reason = (
                "Strictly speaking, the attributes "
                + ("are the same." if decision else "are not identical.")
            )
        elif fit.fitted and self._rng.random() < (
            self._profile.reasoning_strength if careful else 0.72
        ):
            # With examples anchoring what "the same attribute" means, the
            # model can trust its domain-concept recall directly.
            concept_l = self._knowledge.concept_of(name_l)
            concept_r = self._knowledge.concept_of(name_r)
            if concept_l is not None and concept_r is not None:
                decision = concept_l == concept_r
                margin = 0.4 if decision else -0.4
                reason = (
                    f'"{name_l}" and "{name_r}" denote '
                    + ("the same clinical concept."
                       if decision else "different clinical concepts.")
                )
        if decision is None:
            score = self.lexical_score(left, right)
            score = noisy(score, self._rng, self._profile, self._temperature)
            decision = score >= fit.threshold
            margin = score - fit.threshold
            reason = (
                "The names and descriptions "
                + ("overlap strongly." if decision else "do not align.")
            )
        decision = interference.adjust(decision, margin)
        if not careful:
            reason = ""
        return SolvedAnswer(reason=reason, answer="yes" if decision else "no")
