"""Error-detection solver.

Evidence-based: the solver scores how erroneous the target cell looks,
using only the record text and coverage-gated knowledge (category domains,
plausible numeric ranges, a spell-check lexicon, cross-field rules).

Path structure mirrors the ablations:

- **shallow path** (no reasoning contract): evaluates the record
  *holistically* — evidence in any attribute leaks into the answer (the
  failure the paper's "confirm the target attribute" instruction fixes) —
  and skips cross-field rules.
- **careful path** (reasoning on): confirms the target attribute, checks
  only it, and runs cross-field consistency rules; each careful step
  executes correctly with probability ``reasoning_strength``.
- **uncalibrated criteria** (no few-shot): the decision threshold comes
  from the profile's ``zero_shot_calibration``; a badly calibrated model
  over-flags unusual-but-clean values.  Few-shot examples re-fit the
  threshold on the spot.
"""

from __future__ import annotations

import hashlib
import random
import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import ModelProfile
from repro.llm.promptparse import ParsedExample, ParsedPrompt, ParsedQuestion
from repro.llm.solvers.common import (
    BatchInterference,
    SolvedAnswer,
    ThresholdFit,
    default_threshold,
    examples_key,
    memoized_fit,
    noisy,
)
from repro.text.similarity import levenshtein

_NUMERIC_RE = re.compile(r"^-?\d+(?:\.\d+)?$")
_PHONE_DIGITS_RE = re.compile(r"\d")


def _is_number(value: str) -> bool:
    return bool(_NUMERIC_RE.match(value.strip()))


class EDSolver:
    """Answers "is there an error in the target cell?" questions."""

    def __init__(self, profile: ModelProfile, knowledge: KnowledgeBase,
                 rng: random.Random, temperature: float, memo=None):
        self._profile = profile
        self._knowledge = knowledge
        self._rng = rng
        self._temperature = temperature
        self._memo = memo

    # -- evidence ------------------------------------------------------------

    def evidence(self, fields: dict[str, str | None], attribute: str,
                 careful: bool) -> float:
        """Erroneousness score of ``fields[attribute]`` in [0, 1]."""
        value = fields.get(attribute)
        if value is None:
            return 0.0  # a missing value is DI's problem, not an error
        value = str(value).strip()
        score = 0.0
        if careful:
            # Format rules apply whether or not the value parses as a
            # number (a 9-digit phone is all digits and still malformed).
            score = max(score, self._format_evidence(fields, attribute, value))
        if _is_number(value):
            score = max(score, self._numeric_evidence(fields, attribute,
                                                      float(value), careful))
        else:
            score = max(score, self._text_evidence(attribute, value))
        return score

    def _numeric_evidence(self, fields: dict[str, str | None],
                          attribute: str, value: float, careful: bool) -> float:
        known_range = self._knowledge.plausible_range(attribute)
        if known_range is not None:
            low, high = known_range
            if value < low or value > high:
                return 0.95
            evidence = 0.0
            if careful and attribute == "educationnum":
                education = fields.get("education")
                if education is not None:
                    expected = self._knowledge.education_number(str(education))
                    if expected is not None and expected != int(value):
                        evidence = 0.9
            return evidence
        # Unknown attribute: large integers are usually identifiers
        # (phone numbers, provider ids) — only a negative value registers.
        if value < 0:
            return 0.7
        return 0.0

    def _text_evidence(self, attribute: str, value: str) -> float:
        domain = self._knowledge.domain_of(attribute)
        if domain is not None:
            if value in domain:
                return 0.0
            near = _nearest_distance(value, domain)
            # A close near-miss is a typo of a legal value; for short values
            # distance 2 is too weak an identity signal to call it one.
            if near is not None and (
                near == 1 and len(value) >= 4 or near == 2 and len(value) >= 7
            ):
                return 0.95
            if self._in_foreign_domain(attribute, value):
                return 0.9   # a value from some other attribute's domain
            if self._knowledge.is_closed_domain(attribute):
                return 0.85  # closed domain: an unknown value IS the error
            # Open domain (names, free text): could be a legal value the
            # model simply has not seen.  Suspicious, not damning.
            return 0.55
        # No domain knowledge: fall back to spell checking each token.
        tokens = [t.strip(".,()") for t in value.split()]
        tokens = [t for t in tokens if t]
        if not tokens:
            return 0.0
        worst = 0.0
        for token in tokens:
            if "_" in token or _looks_like_code(token):
                continue  # codes like "ga_ami-1" / "pn-3b" are not typos
            if any(ch.isdigit() for ch in token):
                if any(ch.isalpha() for ch in token):
                    worst = max(worst, 0.85)  # letters buried in digits: "94x%"
                continue
            if len(token) < 3 or self._knowledge.knows_word(token):
                continue
            if _x_insertion_match(token, self._knowledge):
                worst = max(worst, 0.92)  # the Hospital-signature corruption
            elif len(token) >= 5 and _strip_one_letter_matches(token, self._knowledge):
                worst = max(worst, 0.9)  # an insertion over a known word
            elif self._knowledge.near_known_word(token):
                worst = max(worst, 0.88)  # one edit from a known word
            else:
                worst = max(worst, 0.45)  # unknown word: suspicious, not damning
        return worst

    def _format_evidence(self, fields: dict[str, str | None],
                         attribute: str, value: str) -> float:
        """Cross-field and format rules (careful path only)."""
        if attribute == "phone":
            digits = _PHONE_DIGITS_RE.findall(value)
            if len(digits) not in (10, 11):
                return 0.85
        if attribute == "zipcode":
            if not value.isdigit() or len(value) != 5:
                return 0.85
        if attribute == "stateavg":
            if "_" not in value:
                return 0.8  # the "{state}_{code}" shape itself is broken
            return self._stateavg_evidence(fields, value)
        return 0.0

    def _stateavg_evidence(self, fields: dict[str, str | None],
                           value: str) -> float:
        """Cross-check ``stateavg`` (= "{state}_{measurecode}").

        On a mismatch, attribute the fault: if the *sibling* field holds an
        illegal value, the error is over there, not in stateavg.
        """
        state_part, __, code_part = value.partition("_")
        states = self._knowledge.domain_of("state") or frozenset()
        codes = self._knowledge.domain_of("measurecode") or frozenset()
        for part, sibling_name, legal in (
            (state_part, "state", states),
            (code_part, "measurecode", codes),
        ):
            sibling = fields.get(sibling_name)
            if sibling is None or part == sibling:
                continue
            part_ok = part in legal if legal else True
            sibling_ok = sibling in legal if legal else True
            if part_ok and not sibling_ok:
                return 0.15  # the sibling field is the broken one
            return 0.9       # stateavg disagrees with a legal sibling
        return 0.0

    def _in_foreign_domain(self, attribute: str, value: str) -> bool:
        for other in ("workclass", "occupation", "education", "maritalstatus",
                      "relationship", "race", "sex", "country", "city",
                      "state", "type", "condition"):
            if other == attribute:
                continue
            domain = self._knowledge.domain_of(other)
            if domain is not None and value in domain:
                return True
        return False

    # -- uncalibrated suspicion ----------------------------------------------

    def _spurious_suspicion(self, value: str) -> float:
        """What a miscalibrated model over-flags: unusual but clean values.

        Without examples the model has no idea what this dataset counts as
        an error, so every stylistic oddity — hyphenated category codes,
        embedded digits, abbreviation dots, '%' suffixes — reads as one.
        This is what drives zero-shot ED to the floor in the paper's
        ablation (25.9 / 18.4 F1).  Deterministic in the value so retries
        are stable; scaled by how far the profile's zero-shot criteria sit
        from the task's.
        """
        unusualness = 0.0
        if "-" in value or "_" in value:
            unusualness += 0.55
        if any(ch.isdigit() for ch in value) and any(ch.isalpha() for ch in value):
            unusualness += 0.4
        if "." in value or "%" in value or "<" in value or ">" in value:
            unusualness += 0.35
        # Even plain values draw idiosyncratic suspicion from an
        # uncalibrated model (deterministic in the value's hash).
        digest = hashlib.blake2b(value.encode("utf-8"), digest_size=2).digest()
        unusualness = max(
            unusualness, 0.85 * int.from_bytes(digest, "little") / 0xFFFF
        )
        if len(value) > 15:
            unusualness += 0.3
        return min(unusualness, 0.95) * (1.0 - self._profile.zero_shot_calibration)

    # -- batch solving ---------------------------------------------------------

    def solve(self, prompt: ParsedPrompt) -> list[SolvedAnswer]:
        target = prompt.target_attribute or ""
        careful = prompt.reasoning
        fit = memoized_fit(
            self._memo,
            ("ed", target, careful, examples_key(prompt.examples)),
            lambda: self._fit_threshold(prompt.examples, target, careful),
        )
        interference = BatchInterference(
            self._profile, self._rng,
            questions=[q.raw for q in prompt.questions],
        )
        answers: list[SolvedAnswer] = []
        for question in prompt.questions:
            answers.append(
                self._solve_one(question, target, careful, fit, interference)
            )
        return answers

    def _fit_threshold(self, examples: list[ParsedExample], target: str,
                       careful: bool) -> ThresholdFit:
        default = default_threshold(
            well_calibrated=0.6, badly_calibrated=0.02,
            calibration=self._profile.zero_shot_calibration,
        )
        scores: list[float] = []
        labels: list[bool] = []
        for example in examples:
            if example.question.fields is None:
                continue
            # Each example question names its own target attribute; score
            # the example against *that*, not the batch's target.
            example_target = example.question.target or target
            scores.append(
                self.evidence(example.question.fields, example_target, careful)
            )
            labels.append(example.answer.strip().lower().startswith("yes"))
        if not scores:
            return ThresholdFit(threshold=default, fitted=False)
        return ThresholdFit.from_examples(scores, labels, default)

    def _solve_one(self, question: ParsedQuestion, target: str, careful: bool,
                   fit: ThresholdFit, interference: BatchInterference) -> SolvedAnswer:
        fields = question.fields or {}
        target = question.target or target
        focused = careful and self._rng.random() < self._profile.reasoning_strength
        score = self.evidence(fields, target, careful=focused or careful)
        if not focused:
            # Holistic reading: the strongest evidence anywhere in the
            # record leaks into the answer (the wrong-attribute failure).
            other_scores = [
                self.evidence(fields, attribute, careful=False)
                for attribute in fields
                if attribute != target
            ]
            if other_scores:
                score = max(score, 0.85 * max(other_scores))
        if not fit.fitted:
            value = str(fields.get(target) or "")
            score = max(score, self._spurious_suspicion(value))
        score = noisy(score, self._rng, self._profile, self._temperature)
        decision = score >= fit.threshold
        decision = interference.adjust(decision, margin=score - fit.threshold)
        value = fields.get(target)
        if careful:
            reason = (
                f'The target attribute is "{target}". Its value "{value}" '
                + ("does not look valid." if decision else "looks valid.")
            )
        else:
            reason = ""
        return SolvedAnswer(reason=reason, answer="yes" if decision else "no")


def _nearest_distance(value: str, domain: frozenset[str]) -> int | None:
    """Smallest edit distance from ``value`` to any domain member."""
    best: int | None = None
    for member in domain:
        if abs(len(member) - len(value)) > 2:
            continue
        distance = levenshtein(value, member)
        if best is None or distance < best:
            best = distance
            if best == 1:
                break
    return best


def _looks_like_code(token: str) -> bool:
    """Measure codes like 'ami-1' / 'pn-3b' / model numbers are not typos."""
    return len(token) <= 10 and ("-" in token or token[:1].isalpha() and token[-1:].isdigit())


def _x_insertion_match(token: str, knowledge: KnowledgeBase) -> bool:
    """Is ``token`` a known word with an ``x`` inserted (e.g. 'heaxrt')?"""
    if "x" not in token:
        return False
    for i, ch in enumerate(token):
        if ch != "x":
            continue
        candidate = token[:i] + token[i + 1:]
        if len(candidate) >= 2 and knowledge.knows_word(candidate):
            return True
    return False


def _strip_one_letter_matches(token: str, knowledge: KnowledgeBase) -> bool:
    """Is ``token`` one deletion away from a known word (e.g. 'heaxrt')?"""
    for i in range(len(token)):
        candidate = token[:i] + token[i + 1:]
        if len(candidate) >= 4 and knowledge.knows_word(candidate):
            return True
    return False
