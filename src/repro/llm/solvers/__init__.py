"""Per-task competence models of the simulated LLM.

Each solver reads only what the prompt contains (parsed questions and
few-shot examples) plus the model's coverage-gated
:class:`~repro.llm.knowledge.KnowledgeBase`.  Prompt components change the
*computation*:

- few-shot examples fit decision thresholds/attribute weights;
- the reasoning contract enables the careful multi-evidence path;
- batching introduces cross-answer interference.

This is what makes the paper's ablations (Table 2) emerge from mechanism
rather than from a lookup table.
"""

from repro.llm.solvers.common import SolvedAnswer, ThresholdFit
from repro.llm.solvers.ed import EDSolver
from repro.llm.solvers.di import DISolver
from repro.llm.solvers.sm import SMSolver
from repro.llm.solvers.em import EMSolver

__all__ = [
    "SolvedAnswer",
    "ThresholdFit",
    "EDSolver",
    "DISolver",
    "SMSolver",
    "EMSolver",
]
