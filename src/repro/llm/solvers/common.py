"""Shared solver utilities: threshold fitting, noise, batch interference."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.llm.profiles import ModelProfile


@dataclass(frozen=True)
class SolvedAnswer:
    """One answered question: the reason line and the bare answer line."""

    reason: str
    answer: str


def examples_key(examples) -> tuple:
    """A hashable identity for a few-shot block.

    Built from the raw question text and answer of each example — exactly
    the content a fit reads — so two prompts carrying the same block hash
    to the same key regardless of which parse produced the objects.
    """
    return tuple((e.question.raw, e.answer) for e in examples)


def memoized_fit(memo, key: tuple, compute):
    """Run ``compute`` through ``memo.fit`` when a memo is present.

    Solvers call this around their few-shot fitting; with ``memo=None``
    (the scalar decode path) it is a plain call, so the reference path
    never touches a cache.
    """
    if memo is None:
        return compute()
    return memo.fit(key, compute)


@dataclass(frozen=True)
class ThresholdFit:
    """A decision threshold, either fitted from examples or a default.

    Few-shot conditioning is literally this: the solver scores each example
    with the same evidence function it will apply to the questions, and
    places the threshold at the margin midpoint between the classes.
    """

    threshold: float
    fitted: bool

    @classmethod
    def from_examples(
        cls,
        scores: list[float],
        labels: list[bool],
        default: float,
    ) -> "ThresholdFit":
        positives = [s for s, y in zip(scores, labels) if y]
        negatives = [s for s, y in zip(scores, labels) if not y]
        if not positives or not negatives:
            return cls(threshold=default, fitted=False)
        # Sweep the midpoints between adjacent example scores; keep the cut
        # that classifies the most examples correctly, and among ties the
        # one sitting in the *widest* gap (maximum margin) so later noise
        # flips as few decisions as possible.
        ordered = sorted(set(scores))
        candidates = [
            (ordered[i] + ordered[i + 1]) / 2.0
            for i in range(len(ordered) - 1)
        ] or [(min(positives) + max(negatives)) / 2.0]
        best_threshold = candidates[0]
        best_key = (-1, -1.0)
        for cut in candidates:
            correct = sum(
                1 for s, y in zip(scores, labels) if (s >= cut) == y
            )
            margin = min(abs(s - cut) for s in scores)
            if (correct, margin) > best_key:
                best_key = (correct, margin)
                best_threshold = cut
        # Shrink toward the class-mean midpoint: with ~10 examples the
        # max-margin cut is high variance (one odd example can relocate it
        # wholesale), and the blend behaves like the soft decision boundary
        # a probabilistic reader would use.
        class_mid = (
            sum(positives) / len(positives) + sum(negatives) / len(negatives)
        ) / 2.0
        return cls(threshold=0.5 * best_threshold + 0.5 * class_mid, fitted=True)


def default_threshold(
    well_calibrated: float, badly_calibrated: float, calibration: float
) -> float:
    """Interpolate a zero-shot threshold by the profile's calibration.

    ``calibration=1`` means the model's prior matches the task's optimal
    operating point; ``0`` means the miscalibrated extreme.
    """
    return badly_calibrated + (well_calibrated - badly_calibrated) * calibration


def noisy(score: float, rng: random.Random, profile: ModelProfile,
          temperature: float) -> float:
    """Add decision noise, scaled by sampling temperature.

    At the model's default temperature the noise equals the profile's
    ``decision_noise``; hotter sampling is noisier, temperature 0 is not
    noise-free (the competence limit remains) but much tighter.
    """
    scale = 0.4 + 0.6 * (temperature / max(profile.default_temperature, 1e-6))
    return score + rng.gauss(0.0, profile.decision_noise * scale)


class BatchInterference:
    """Cross-question interference in batch prompting.

    When several questions share one prompt, models occasionally bleed
    context between them: an uncertain answer (margin below
    ``margin_window``) gets pulled toward the previous answer.  The
    bleed probability scales with how *dissimilar* adjacent questions are —
    mixing up two near-identical instances is harmless, mixing up two
    unrelated ones flips answers.  This is the mechanism behind the
    paper's cluster-batching gain: homogeneous batches suffer less
    interference.
    """

    def __init__(self, profile: ModelProfile, rng: random.Random,
                 questions: list[str] | None = None,
                 margin_window: float = 0.12):
        self._profile = profile
        self._rng = rng
        self._margin_window = margin_window
        self._history: list[bool] = []
        self._dissimilarity: list[float] = [0.0]
        if questions:
            previous_tokens: set[str] | None = None
            self._dissimilarity = []
            for question in questions:
                tokens = set(question.lower().split())
                if previous_tokens is None or not (tokens | previous_tokens):
                    self._dissimilarity.append(0.0)
                else:
                    overlap = len(tokens & previous_tokens) / len(
                        tokens | previous_tokens
                    )
                    self._dissimilarity.append(1.0 - overlap)
                previous_tokens = tokens

    def adjust(self, decision: bool, margin: float) -> bool:
        """Possibly override a near-boundary decision with the previous one."""
        index = len(self._history)
        adjusted = decision
        dissimilarity = (
            self._dissimilarity[index]
            if index < len(self._dissimilarity)
            else 1.0
        )
        rate = self._profile.interference_rate * (0.3 + 1.7 * dissimilarity)
        if (
            self._history
            and abs(margin) < self._margin_window
            and self._rng.random() < rate
        ):
            adjusted = self._history[-1]
        self._history.append(adjusted)
        return adjusted
