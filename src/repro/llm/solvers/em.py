"""Entity-matching solver.

Scores a record pair by weighted per-attribute similarity:

- **uniform weights** zero-shot; **discriminative weights** when few-shot
  examples are present — the solver measures, per attribute, how much its
  similarity separates the example classes and reweights accordingly.
  This is the mechanism behind the paper's feature-selection result too:
  dropping a noisy column (manually) and down-weighting it (from examples)
  have the same effect.
- the **careful path** (reasoning) additionally checks discriminating
  code-like tokens (model numbers, version numbers): disjoint codes cap
  the score, shared codes boost it.  As in the paper, this cuts both ways
  for EM — views of the same product sometimes disagree on those tokens.
"""

from __future__ import annotations

import random
import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import ModelProfile
from repro.llm.promptparse import ParsedExample, ParsedPrompt, ParsedQuestion
from repro.llm.solvers.common import (
    BatchInterference,
    SolvedAnswer,
    ThresholdFit,
    default_threshold,
    examples_key,
    memoized_fit,
    noisy,
)
from repro.text.normalize import expand_abbreviations, extract_phone, normalize_text
from repro.text.similarity import token_set_ratio

_NUMBER_RE = re.compile(r"^-?[\d.,$%:]+$")
_CODE_RE = re.compile(r"\b(?=\w*\d)(?=\w*[a-z])\w{3,}\b|\b\d+(?:\.\d+)?\b")


_MODEL_CODE_RE = re.compile(r"^[a-z0-9\-]{2,12}$")
_DURATION_RE = re.compile(r"^\d{1,2}:\d{2}$")


def _is_identifier(value: str) -> bool:
    """Single-token alphanumeric codes (model numbers, SKUs)."""
    return bool(
        _MODEL_CODE_RE.match(value)
        and any(ch.isdigit() for ch in value)
        and any(ch.isalpha() for ch in value)
    )


def _attribute_similarity(a: str, b: str, careful: bool) -> float:
    """Similarity of two cell values, type-aware."""
    a, b = a.strip(), b.strip()
    if not a or not b:
        return 0.0
    phone_a, phone_b = extract_phone(a), extract_phone(b)
    if phone_a and phone_b:
        return 1.0 if phone_a == phone_b else 0.0
    la, lb = a.lower(), b.lower()
    if _is_identifier(la) and _is_identifier(lb):
        # Model numbers either match or they don't; string closeness of
        # two different SKUs means nothing.
        return 1.0 if la == lb else 0.05
    if _DURATION_RE.match(la) and _DURATION_RE.match(lb):
        # Track lengths are identifiers for recordings.
        return 1.0 if la == lb else 0.2
    if _NUMBER_RE.match(a) and _NUMBER_RE.match(b):
        try:
            fa = float(re.sub(r"[^\d.]", "", a) or "0")
            fb = float(re.sub(r"[^\d.]", "", b) or "0")
        except ValueError:
            return 1.0 if a == b else 0.0
        # Years are asymmetric evidence: thousands of entities share a
        # publication year (agreement is weak), but different years mean
        # different publications (disagreement is decisive).
        if 1900 <= fa <= 2100 and 1900 <= fb <= 2100 and fa.is_integer():
            if fa == fb:
                return 0.55
            return 0.3 if abs(fa - fb) <= 1 else 0.0
        if fa == fb:
            return 1.0
        denom = max(abs(fa), abs(fb), 1e-9)
        return max(0.0, 1.0 - abs(fa - fb) / denom)
    if careful:
        a = expand_abbreviations(normalize_text(a))
        b = expand_abbreviations(normalize_text(b))
    return token_set_ratio(a, b)


def pair_score(left: dict[str, str | None], right: dict[str, str | None],
               weights: dict[str, float] | None, careful: bool) -> float:
    """Weighted mean attribute similarity over attributes present on both
    sides; 0 when nothing is comparable."""
    total = 0.0
    weight_sum = 0.0
    for name in left:
        lv, rv = left.get(name), right.get(name)
        if lv is None or rv is None:
            continue
        weight = (weights or {}).get(name, 1.0)
        if weight <= 0.0:
            continue
        total += weight * _attribute_similarity(str(lv), str(rv), careful)
        weight_sum += weight
    if weight_sum == 0.0:
        return 0.0
    return total / weight_sum


_RAW_CODE_RE = re.compile(r"[a-z0-9.\-]*\d[a-z0-9.\-]*")


def _weakest_field_similarity(
    left: dict[str, str | None], right: dict[str, str | None], careful: bool
) -> float | None:
    """The lowest per-attribute similarity among comparable attributes."""
    sims = [
        _attribute_similarity(str(left[name]), str(right[name]), careful)
        for name in left
        if left.get(name) is not None and right.get(name) is not None
    ]
    return min(sims) if sims else None


def _identity_code_tokens(record: dict[str, str | None]) -> set[str]:
    """Model-number/version-like tokens in the record's *identity field*.

    The identity field is the first non-missing attribute (title, name,
    song_name, ...), where version and model numbers live.  Prices, years,
    and durations in other columns are deliberately excluded — two variants
    of one product share a price; two different products share a year.

    Tokens are canonicalized to bare alphanumerics so "5.0", "5-0", and
    "50" compare equal (as a reader would treat them), while "5.0" and
    "9.0" stay distinct.
    """
    for value in record.values():
        if value is None:
            continue
        tokens: set[str] = set()
        for match in _RAW_CODE_RE.findall(str(value).lower()):
            canonical = re.sub(r"[^a-z0-9]", "", match)
            if canonical and any(ch.isdigit() for ch in canonical):
                tokens.add(canonical)
        return tokens
    return set()


class EMSolver:
    """Answers "are these the same entity?" questions."""

    def __init__(self, profile: ModelProfile, knowledge: KnowledgeBase,
                 rng: random.Random, temperature: float, memo=None):
        self._profile = profile
        self._knowledge = knowledge
        self._rng = rng
        self._temperature = temperature
        self._memo = memo

    def solve(self, prompt: ParsedPrompt) -> list[SolvedAnswer]:
        weights, fit = memoized_fit(
            self._memo,
            ("em", prompt.reasoning, examples_key(prompt.examples)),
            lambda: self._fit(prompt.examples, prompt.reasoning),
        )
        interference = BatchInterference(
            self._profile, self._rng,
            questions=[q.raw for q in prompt.questions],
        )
        answers = []
        for question in prompt.questions:
            answers.append(
                self._solve_one(question, prompt.reasoning, weights, fit,
                                interference)
            )
        return answers

    def _fit(self, examples: list[ParsedExample],
             careful: bool) -> tuple[dict[str, float] | None, ThresholdFit]:
        weights = self._fit_weights(examples, careful)
        return weights, self._fit_threshold(examples, weights, careful)

    def _fit_weights(self, examples: list[ParsedExample],
                     careful: bool) -> dict[str, float] | None:
        """Discriminative attribute weights from the examples.

        weight(a) ∝ |mean sim among matches − mean sim among non-matches|,
        floored at a small value so no attribute is fully ignored.
        """
        if not examples:
            return None
        per_attribute: dict[str, tuple[list[float], list[float]]] = {}
        for example in examples:
            left, right = example.question.left, example.question.right
            if left is None or right is None:
                continue
            positive = example.answer.strip().lower().startswith("yes")
            for name in left:
                lv, rv = left.get(name), right.get(name)
                if lv is None or rv is None:
                    continue
                pos, neg = per_attribute.setdefault(name, ([], []))
                sim = _attribute_similarity(str(lv), str(rv), careful)
                (pos if positive else neg).append(sim)
        weights: dict[str, float] = {}
        for name, (pos, neg) in per_attribute.items():
            if pos and neg:
                gap = abs(sum(pos) / len(pos) - sum(neg) / len(neg))
                # An attribute that frequently *agrees on non-matches*
                # (venue, genre, category) is weak evidence no matter how
                # big its mean gap — two different papers share a venue
                # all the time.
                agreement = sum(1 for s in neg if s > 0.8) / len(neg)
                weights[name] = max(gap * (1.0 - agreement), 0.05)
            else:
                weights[name] = 0.3
        return weights or None

    def _fit_threshold(self, examples: list[ParsedExample],
                       weights: dict[str, float] | None,
                       careful: bool) -> ThresholdFit:
        default = default_threshold(
            well_calibrated=0.7, badly_calibrated=0.58,
            calibration=self._profile.zero_shot_calibration,
        )
        if careful and not examples:
            # Reasoning with no conditioning reads "the same entity"
            # over-literally and demands near-identity (the paper's Beer
            # drop from 78.3 to 50.0 when ZS-R is added without few-shot).
            # Better-calibrated models over-tighten less.
            strictness = 1.0 - self._profile.zero_shot_calibration
            default = max(default, 0.62 + 0.47 * strictness)
        scores: list[float] = []
        labels: list[bool] = []
        for example in examples:
            if example.question.left is None or example.question.right is None:
                continue
            # Fit on raw weighted scores; the code-token rule is applied at
            # decision time *relative to* this threshold, so pre-applying
            # it here would be circular.
            scores.append(
                pair_score(example.question.left, example.question.right,
                           weights, careful)
            )
            labels.append(example.answer.strip().lower().startswith("yes"))
        if not scores:
            return ThresholdFit(threshold=default, fitted=False)
        return ThresholdFit.from_examples(scores, labels, default)

    def _solve_one(self, question: ParsedQuestion, careful: bool,
                   weights: dict[str, float] | None, fit: ThresholdFit,
                   interference: BatchInterference) -> SolvedAnswer:
        left = question.left or {}
        right = question.right or {}
        if self._rng.random() >= self._profile.comprehension:
            # The model lost the thread of the pair: an uninformed guess,
            # mildly biased toward "no" (the safer-sounding answer).
            decision = self._rng.random() < 0.4
            decision = interference.adjust(decision, margin=0.0)
            return SolvedAnswer(
                reason="Considering the records as a whole." if careful else "",
                answer="yes" if decision else "no",
            )
        score = pair_score(left, right, weights, careful)
        reason_bits = []
        attentive = careful and (
            self._rng.random() < self._profile.reasoning_strength
        )
        if attentive:
            # Sparse comparisons deserve caution: when most fields are
            # missing on one side, surface similarity of the few that
            # remain is weak evidence (DBLP-Scholar truncation).
            comparable = sum(
                1 for name in left
                if left.get(name) is not None and right.get(name) is not None
            )
            if comparable * 2 <= len(left):
                score *= 0.8
                reason_bits.append(
                    "Few fields are comparable, so the evidence is weak."
                )
        if careful and not fit.fitted:
            # Over-literal zero-shot reasoning: a single disagreeing field
            # "proves" the records differ (no examples have taught the
            # model that catalogs disagree on minor fields all the time).
            # Better-calibrated models fall into this less often.
            strictness = 1.0 - self._profile.zero_shot_calibration
            weakest = _weakest_field_similarity(left, right, careful)
            if (
                weakest is not None
                and weakest < 0.7
                and self._rng.random() < strictness * 1.45
            ):
                score = min(score, 0.3)
                reason_bits.append("At least one field clearly disagrees.")
        codes_l = _identity_code_tokens(left)
        codes_r = _identity_code_tokens(right)
        if codes_l and codes_r:
            shared = codes_l & codes_r
            if shared:
                score = min(1.0, score + (0.12 if attentive else 0.08))
                reason_bits.append(
                    f"Both records mention {sorted(shared)[0]!r}."
                )
            else:
                # Disjoint identity codes argue decisively against a match:
                # push the score below the operating threshold (the careful
                # path pushes harder).  Noise can still flip truly
                # borderline cases — as it should.
                push = 0.15 if attentive else 0.07
                score = min(score, fit.threshold - push)
                reason_bits.append(
                    "The records mention different model/version codes."
                )
        score = noisy(score, self._rng, self._profile, self._temperature)
        decision = score >= fit.threshold
        decision = interference.adjust(decision, margin=score - fit.threshold)
        if careful:
            reason_bits.append(
                "The fields align overall." if decision
                else "Key fields disagree."
            )
        return SolvedAnswer(
            reason=" ".join(reason_bits),
            answer="yes" if decision else "no",
        )
