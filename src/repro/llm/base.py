"""Chat-completion interface types.

Mirrors the shape of commercial chat APIs narrowly enough that swapping
:class:`~repro.llm.simulated.SimulatedLLM` for a real SDK client is a
one-class change: messages in, text + usage out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import LLMError

_VALID_ROLES = ("system", "user", "assistant")


@dataclass(frozen=True)
class ChatMessage:
    """One turn of a chat transcript."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise LLMError(
                f"invalid role {self.role!r}; expected one of {_VALID_ROLES}"
            )


@dataclass(frozen=True)
class CompletionRequest:
    """A chat-completion call."""

    messages: tuple[ChatMessage, ...]
    model: str
    temperature: float = 0.0
    max_tokens: int | None = None

    def __post_init__(self) -> None:
        if not self.messages:
            raise LLMError("a completion request needs at least one message")
        if not 0.0 <= self.temperature <= 2.0:
            raise LLMError(
                f"temperature must be in [0, 2], got {self.temperature}"
            )
        if self.max_tokens is not None and self.max_tokens <= 0:
            raise LLMError(f"max_tokens must be positive, got {self.max_tokens}")

    @property
    def transcript(self) -> list[tuple[str, str]]:
        """(role, content) pairs — the token-accounting view."""
        return [(m.role, m.content) for m in self.messages]


@dataclass(frozen=True)
class Usage:
    """Token usage of one completion (the billing unit)."""

    prompt_tokens: int
    completion_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0 or self.completion_tokens < 0:
            raise LLMError("token counts cannot be negative")

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def __add__(self, other: "Usage") -> "Usage":
        return Usage(
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
        )


@dataclass(frozen=True)
class CompletionResponse:
    """The result of one completion call.

    ``latency_s`` is the *modeled* wall-clock latency a metered API would
    have taken — the simulator computes it from the latency model instead
    of sleeping, so experiments report realistic hours without taking them.
    """

    text: str
    model: str
    usage: Usage
    latency_s: float = 0.0


@runtime_checkable
class LLMClient(Protocol):
    """Anything that can serve chat completions."""

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        """Serve one chat completion."""
        ...
