"""The simulated LLM's world knowledge.

A :class:`KnowledgeBase` is a *coverage-gated view* of the vocabulary
tables in :mod:`repro.datasets.vocabularies`: each fact is independently
included with probability equal to the model's coverage, decided by a
stable hash of ``(model name, fact key)`` so a model always knows — or
never knows — a given fact, across runs and processes.

This is the one place the simulator touches generator-side data, and it is
*read-only world facts* (what city has area code 770), never instance
labels.  A weaker model (Vicuna) simply recalls fewer facts, which is what
separates the models on knowledge-bound tasks exactly as in the paper.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.datasets import vocabularies as vocab


def _knows(model: str, fact_key: str, coverage: float) -> bool:
    """Deterministic membership test: does ``model`` recall this fact?"""
    digest = hashlib.blake2b(
        f"{model}\x00{fact_key}".encode("utf-8"), digest_size=4
    ).digest()
    return int.from_bytes(digest, "little") / 0xFFFFFFFF < coverage


#: canonical-name aliases: the form a model recalls spontaneously may not
#: be the dataset's surface convention; few-shot examples teach the
#: convention (paper Section 3.2 "condition the LLM").
BRAND_ALIASES: dict[str, str] = {
    "hp": "hewlett-packard",
    "lg": "lg electronics",
    "western digital": "wd",
    "apple": "apple inc.",
    "sony": "sony corporation",
    "dell": "dell inc.",
    "asus": "asustek",
    "nintendo": "nintendo co.",
    "intel": "intel corporation",
    "canon": "canon inc.",
}

CITY_ALIASES: dict[str, str] = {
    "new york": "new york city",
    "washington": "washington d.c.",
    "los angeles": "la",
    "san francisco": "san francisco, ca",
    "philadelphia": "philly",
    "las vegas": "las vegas, nv",
}


class KnowledgeBase:
    """Coverage-gated world facts for one model.

    Parameters
    ----------
    model:
        Model name — part of every fact's hash key.
    coverage:
        General world-knowledge coverage in [0, 1].
    concept_coverage:
        Specialist (clinical) concept coverage in [0, 1].
    """

    def __init__(self, model: str, coverage: float, concept_coverage: float):
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        if not 0.0 <= concept_coverage <= 1.0:
            raise ValueError(
                f"concept_coverage must be in [0, 1], got {concept_coverage}"
            )
        self._model = model
        self._coverage = coverage
        self._concept_coverage = concept_coverage

    # -- geography ---------------------------------------------------------

    def city_for_area_code(self, area_code: str) -> str | None:
        """The city an area code belongs to, if recalled."""
        city = vocab.AREA_CODE_TO_CITY.get(area_code)
        if city is None:
            return None
        if not _knows(self._model, f"area:{area_code}", self._coverage):
            return None
        return city

    def city_for_zip_prefix(self, zip_prefix: str) -> str | None:
        """The city a 3-digit ZIP prefix belongs to, if recalled."""
        for city in vocab.US_CITIES:
            if city.zip_prefix == zip_prefix:
                if _knows(self._model, f"zip:{zip_prefix}", self._coverage):
                    return city.name
                return None
        return None

    def state_for_city(self, city_name: str) -> str | None:
        city = vocab.CITY_BY_NAME.get(city_name)
        if city is None:
            return None
        if not _knows(self._model, f"state:{city_name}", self._coverage):
            return None
        return city.state

    def knows_city(self, name: str) -> bool:
        return name in vocab.CITY_BY_NAME and _knows(
            self._model, f"city:{name}", self._coverage
        )

    # -- brands ------------------------------------------------------------

    def find_brand(self, text: str) -> str | None:
        """The first known brand mentioned in ``text`` (bigram-aware)."""
        tokens = text.lower().split()
        candidates = []
        for i, token in enumerate(tokens):
            candidates.append(token)
            if i + 1 < len(tokens):
                candidates.append(f"{token} {tokens[i + 1]}")
        # Prefer longer (bigram) brand names over their prefixes.
        for candidate in sorted(set(candidates), key=len, reverse=True):
            if candidate in vocab.PRODUCT_BRANDS and _knows(
                self._model, f"brand:{candidate}", self._coverage
            ):
                return candidate
        return None

    def brand_alias(self, brand: str) -> str | None:
        """The canonical variant a model might emit instead of ``brand``."""
        return BRAND_ALIASES.get(brand)

    def city_alias(self, city: str) -> str | None:
        return CITY_ALIASES.get(city)

    # -- categorical domains (error detection) ------------------------------

    @staticmethod
    @lru_cache(maxsize=1)
    def _domain_tables() -> dict[str, frozenset[str]]:
        return {
            "workclass": frozenset(vocab.WORKCLASSES),
            "occupation": frozenset(vocab.OCCUPATIONS),
            "education": frozenset(e for e, __ in vocab.EDUCATION_LEVELS),
            "maritalstatus": frozenset(vocab.MARITAL_STATUSES),
            "relationship": frozenset(vocab.RELATIONSHIPS),
            "race": frozenset(vocab.RACES),
            "sex": frozenset(vocab.SEXES),
            "country": frozenset(vocab.COUNTRIES),
            "state": frozenset(vocab.US_STATE_CODES),
            "city": frozenset(c.name for c in vocab.US_CITIES),
            "condition": frozenset(vocab.HOSPITAL_CONDITIONS),
            "measurecode": frozenset(c for c, __ in vocab.HOSPITAL_MEASURES),
            "measurename": frozenset(m for __, m in vocab.HOSPITAL_MEASURES),
            "type": frozenset(vocab.RESTAURANT_TYPES),
            "income": frozenset(["<=50k", ">50k"]),
        }

    #: attributes whose value set is closed and enumerable (an unknown
    #: value is itself evidence of error); open domains (names, free text)
    #: merely make unknown values *suspicious*
    _CLOSED_DOMAINS = frozenset({
        "workclass", "occupation", "education", "maritalstatus",
        "relationship", "race", "sex", "country", "state", "income",
        "measurecode", "condition", "type",
    })

    def is_closed_domain(self, attribute: str) -> bool:
        """Whether the attribute's legal values form a closed set."""
        return attribute in self._CLOSED_DOMAINS

    def domain_of(self, attribute: str) -> frozenset[str] | None:
        """Known value domain of a categorical attribute.

        Membership is gated *per value* (slightly boosted — category
        vocabularies are high-frequency training data), so a weaker model
        knows a thinner slice of each domain rather than losing whole
        domains at once.
        """
        table = self._domain_tables().get(attribute)
        if table is None:
            return None
        # Small closed domains (sex, income brackets) are universally known;
        # coverage only thins out large vocabularies.
        coverage = min(1.0, self._coverage + 0.04 + 2.0 / len(table))
        known = frozenset(
            value
            for value in table
            if _knows(self._model, f"domain:{attribute}:{value}", coverage)
        )
        return known if known else None

    @staticmethod
    @lru_cache(maxsize=1)
    def _lexicon() -> frozenset[str]:
        """Every word the synthetic world contains — the spell-check base."""
        words: set[str] = set()
        for table in (
            vocab.HOSPITAL_NAME_PARTS, vocab.STREET_NAMES,
            vocab.RESTAURANT_NAME_PARTS, vocab.HOSPITAL_CONDITIONS,
            vocab.RESTAURANT_TYPES, vocab.OCCUPATIONS, vocab.WORKCLASSES,
            vocab.MARITAL_STATUSES, vocab.RELATIONSHIPS, vocab.RACES,
            vocab.COUNTRIES, vocab.BREWERIES, vocab.BEER_STYLES,
            vocab.SOFTWARE_TITLES, vocab.SOFTWARE_PUBLISHERS,
        ):
            for phrase in table:
                words.update(phrase.replace("-", " ").split())
        for __, measure in vocab.HOSPITAL_MEASURES:
            words.update(measure.split())
        for city in vocab.US_CITIES:
            words.update(city.name.split())
        words.update(["patients", "the", "of", "at", "for", "and"])
        return frozenset(w.strip(".,") for w in words if w)

    def near_known_word(self, word: str) -> bool:
        """Is ``word`` within one edit of a word of the world?

        Covers deletion/substitution/transposition typos that the cheaper
        structural checks miss (``thrombembolism`` → ``thromboembolism``).
        """
        from repro.text.similarity import levenshtein

        word = word.lower().strip(".,()")
        if len(word) < 4:
            return False
        for known in self._lexicon():
            if abs(len(known) - len(word)) > 1 or len(known) < 4:
                continue
            if word[0] != known[0] and word[-1] != known[-1]:
                continue  # cheap pre-filter: typos rarely change both ends
            if levenshtein(word, known) <= 1:
                return True
        return False

    def knows_word(self, word: str) -> bool:
        """Spell-check membership: is ``word`` a word of the world?"""
        word = word.lower().strip(".,()")
        if not word or any(ch.isdigit() for ch in word):
            return True  # numbers and codes are not spell-checkable
        if word not in self._lexicon():
            return False
        return _knows(self._model, f"word:{word}", min(1.0, self._coverage + 0.05))

    # -- numeric plausibility (error detection) ------------------------------

    _NUMERIC_RANGES: dict[str, tuple[float, float]] = {
        "age": (0, 120),
        "hoursperweek": (1, 99),
        "educationnum": (1, 16),
        "providernumber": (10000, 999999),
    }

    def plausible_range(self, attribute: str) -> tuple[float, float] | None:
        """Common-sense value range for a known numeric attribute."""
        rng = self._NUMERIC_RANGES.get(attribute)
        if rng is None:
            return None
        if not _knows(self._model, f"range:{attribute}", self._coverage):
            return None
        return rng

    def education_number(self, education: str) -> int | None:
        """The educationnum a census education level maps to."""
        for name, number in vocab.EDUCATION_LEVELS:
            if name == education:
                if _knows(self._model, f"edu:{name}", self._coverage):
                    return number
                return None
        return None

    # -- clinical concepts (schema matching) --------------------------------

    @staticmethod
    @lru_cache(maxsize=1)
    def _concept_index() -> dict[str, int]:
        index: dict[str, int] = {}
        for group_id, group in enumerate(vocab.CLINICAL_ATTRIBUTE_GROUPS):
            for name, __ in group:
                index[name] = group_id
        return index

    def concept_of(self, attribute_name: str) -> int | None:
        """The clinical concept cluster an attribute name resolves to.

        Gated by *concept* coverage — the specialist knowledge the paper's
        Limitation (1) (domain specification) is about.
        """
        group_id = self._concept_index().get(attribute_name)
        if group_id is None:
            return None
        if not _knows(
            self._model, f"concept:{attribute_name}", self._concept_coverage
        ):
            return None
        return group_id
