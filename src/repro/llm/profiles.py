"""Model capability profiles.

A :class:`ModelProfile` is the *explicit* competence model that replaces a
real LLM's weights.  Every knob maps to a documented behaviour of the
corresponding commercial model:

- ``knowledge_coverage`` — the fraction of world facts (area codes, brands,
  geography) the model can recall.  Drives data-imputation accuracy.
- ``concept_coverage`` — coverage of specialist concept knowledge (the
  clinical vocabulary behind schema matching), lower than general coverage
  for every model: domain specification is the paper's Limitation (1).
- ``reasoning_strength`` — the probability each step of the careful
  chain-of-thought path executes correctly.  Drives the ZS-R ablation.
- ``zero_shot_calibration`` — how close the model's *uncalibrated* decision
  thresholds sit to the optimum (few-shot examples re-fit them).  Drives
  the FS ablation.
- ``decision_noise`` — stddev of the noise added to decision scores; flips
  near-boundary answers.
- ``interference_rate`` — per-answer probability, in a batch, of being
  pulled toward the batch's previous answers (the consistency effect of
  batch prompting; helps homogeneous batches, hurts mixed ones).
- ``format_fidelity`` — per-task probability an answer follows the
  instructed format.  Vicuna's low values mechanically produce the paper's
  "N/A" cells.
- pricing / latency / context window — the billing model behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.instances import Task
from repro.errors import UnknownModelError


@dataclass(frozen=True)
class LatencyModel:
    """Modeled request latency: ``base + k_p * prompt + k_c * completion``.

    Calibrated so a GPT-3.5 single-instance request takes ~1.7 s and a
    15-instance batch ~8.6 s, reproducing Table 3's hours column.
    """

    base_s: float
    per_prompt_token_s: float
    per_completion_token_s: float

    def latency(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            self.base_s
            + self.per_prompt_token_s * prompt_tokens
            + self.per_completion_token_s * completion_tokens
        )


@dataclass(frozen=True)
class ModelProfile:
    """All capability and billing knobs of one simulated model."""

    name: str
    context_window: int
    #: USD per 1K prompt tokens / per 1K completion tokens
    price_prompt_per_1k: float
    price_completion_per_1k: float
    latency: LatencyModel
    knowledge_coverage: float
    concept_coverage: float
    reasoning_strength: float
    zero_shot_calibration: float
    decision_noise: float
    interference_rate: float
    #: probability an answer is grounded in the instance at all; the
    #: complement is an uninformed guess (weak models lose the thread of a
    #: record pair even when they keep the answer format)
    comprehension: float = 1.0
    format_fidelity: dict[Task, float] = field(default_factory=dict)
    #: questions longer than this (tokens) decay format fidelity (weak
    #: models lose the thread on long inputs)
    question_token_tolerance: int = 400
    default_temperature: float = 0.7

    def __post_init__(self) -> None:
        for knob in (
            "knowledge_coverage", "concept_coverage", "reasoning_strength",
            "zero_shot_calibration",
        ):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {value}")
        if self.decision_noise < 0 or self.interference_rate < 0:
            raise ValueError("noise knobs cannot be negative")
        if self.context_window <= 0:
            raise ValueError("context_window must be positive")

    def fidelity_for(self, task: Task, question_tokens: int) -> float:
        """Format fidelity for one answer, decayed by question length."""
        base = self.format_fidelity.get(task, 0.99)
        overflow = max(0, question_tokens - self.question_token_tolerance)
        if overflow:
            base *= 0.5 ** (overflow / max(self.question_token_tolerance, 1))
        return base

    def cost_usd(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.price_prompt_per_1k
            + completion_tokens * self.price_completion_per_1k
        ) / 1000.0


_GPT35 = ModelProfile(
    name="gpt-3.5",
    context_window=4096,
    # Mar-2023 gpt-3.5-turbo pricing: flat $0.002/1K tokens — this is what
    # makes Table 3's 4.07M tokens cost exactly $8.14.
    price_prompt_per_1k=0.002,
    price_completion_per_1k=0.002,
    latency=LatencyModel(base_s=1.2, per_prompt_token_s=0.0001,
                         per_completion_token_s=0.012),
    knowledge_coverage=0.93,
    concept_coverage=0.62,
    reasoning_strength=0.82,
    zero_shot_calibration=0.45,
    decision_noise=0.075,
    interference_rate=0.04,
    format_fidelity={
        Task.ERROR_DETECTION: 0.995,
        Task.DATA_IMPUTATION: 0.995,
        Task.SCHEMA_MATCHING: 0.995,
        Task.ENTITY_MATCHING: 0.995,
    },
    question_token_tolerance=900,
    default_temperature=0.75,
)

_GPT4 = ModelProfile(
    name="gpt-4",
    context_window=8192,
    price_prompt_per_1k=0.03,
    price_completion_per_1k=0.06,
    latency=LatencyModel(base_s=2.5, per_prompt_token_s=0.0003,
                         per_completion_token_s=0.035),
    knowledge_coverage=0.985,
    concept_coverage=0.74,
    reasoning_strength=0.96,
    zero_shot_calibration=0.7,
    decision_noise=0.035,
    interference_rate=0.02,
    format_fidelity={
        Task.ERROR_DETECTION: 0.999,
        Task.DATA_IMPUTATION: 0.999,
        Task.SCHEMA_MATCHING: 0.999,
        Task.ENTITY_MATCHING: 0.999,
    },
    question_token_tolerance=1200,
    default_temperature=0.65,
)

# text-davinci-002 with the hand-engineered prompts of Narayan et al. [16]:
# near-perfect zero-shot calibration on ED (their prompts encode the error
# criteria), good elsewhere.
_GPT3 = ModelProfile(
    name="gpt-3",
    context_window=4097,
    price_prompt_per_1k=0.02,
    price_completion_per_1k=0.02,
    latency=LatencyModel(base_s=1.5, per_prompt_token_s=0.0002,
                         per_completion_token_s=0.015),
    knowledge_coverage=0.94,
    concept_coverage=0.5,
    reasoning_strength=0.9,
    zero_shot_calibration=0.95,
    decision_noise=0.055,
    interference_rate=0.04,
    format_fidelity={
        Task.ERROR_DETECTION: 0.995,
        Task.DATA_IMPUTATION: 0.995,
        Task.SCHEMA_MATCHING: 0.99,
        Task.ENTITY_MATCHING: 0.995,
    },
    question_token_tolerance=900,
    default_temperature=0.75,
)

_VICUNA = ModelProfile(
    name="vicuna-13b",
    context_window=2048,
    price_prompt_per_1k=0.0,   # self-hosted
    price_completion_per_1k=0.0,
    latency=LatencyModel(base_s=0.8, per_prompt_token_s=0.0008,
                         per_completion_token_s=0.05),
    knowledge_coverage=0.5,
    concept_coverage=0.2,
    reasoning_strength=0.3,
    zero_shot_calibration=0.25,
    decision_noise=0.22,
    interference_rate=0.12,
    comprehension=0.45,
    # A 13B chat model rarely holds the multi-question answer contract for
    # record-level cleaning tasks; it manages yes/no entity-matching
    # questions (with frequent lapses — the paper's ~50 F1).
    format_fidelity={
        Task.ERROR_DETECTION: 0.10,
        Task.DATA_IMPUTATION: 0.15,
        Task.SCHEMA_MATCHING: 0.10,
        Task.ENTITY_MATCHING: 0.80,
    },
    question_token_tolerance=170,
    default_temperature=0.2,
)

_PROFILES: dict[str, ModelProfile] = {
    p.name: p for p in (_GPT35, _GPT4, _GPT3, _VICUNA)
}


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile by name."""
    if name not in _PROFILES:
        raise UnknownModelError(name, list(_PROFILES))
    return _PROFILES[name]


def list_profiles() -> list[str]:
    """Names of all registered model profiles."""
    return sorted(_PROFILES)
