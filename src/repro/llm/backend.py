"""Client backends: picklable specifications that build LLM clients.

The sharded runner (:mod:`repro.shard`) executes shards in worker
*processes*.  A live client cannot cross that boundary — it holds mutable
state (call counters, caches, fault occurrence maps) and, in the general
case, sockets.  What crosses instead is a :class:`Backend`: a small frozen
value object that knows how to **build** a fresh client on the other side
and how to **describe** itself as plain data for run fingerprints.

Two protocols live here:

- :class:`Backend` — ``build()`` a client, ``describe()`` its identity.
  Every backend is picklable by construction (frozen dataclasses of plain
  values), so one backend value fans out to any number of workers and
  each builds an identical client.
- :class:`Checkpointable` — the resume contract
  (``checkpoint_state``/``restore_checkpoint_state``).  The runtime's
  checkpoint layer (:mod:`repro.runtime.checkpoint`) captures client
  state through this protocol, so *any* client that implements it —
  including wrappers stacked by these backends — gets crash-safe resume
  for free, with no per-class knowledge in the runtime.

The concrete backends mirror the client stack: a simulated model, the
fault injector, the garbling client, and the LRU response cache, each
wrapping an inner backend so stacks compose the way the clients do::

    FaultBackend(SimulatedBackend("gpt-4", seed=7), plan={3: Fault(...)})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import LLMError
from repro.llm.base import LLMClient
from repro.llm.faults import Fault
from repro.resilience.degradation import DegradationPlan


@runtime_checkable
class Checkpointable(Protocol):
    """The resume contract a client opts into.

    ``checkpoint_state()`` returns the client's mutable state as a
    JSON-able dict; ``restore_checkpoint_state(state)`` puts it back.  A
    client implementing both resumes bit-identically through the run
    journal — the runtime never needs to know the concrete class.
    """

    def checkpoint_state(self) -> dict: ...

    def restore_checkpoint_state(self, state: dict) -> None: ...


@runtime_checkable
class Backend(Protocol):
    """A picklable factory for one configured LLM client.

    ``build()`` constructs a fresh client (stateless backends may be
    reused: every call returns an independent client).  ``describe()``
    returns the backend's full identity as plain data — it is hashed into
    shard-plan fingerprints and journal headers, so two backends that
    describe equal build equal clients.
    """

    def build(self) -> LLMClient: ...

    def describe(self) -> dict: ...


@dataclass(frozen=True)
class SimulatedBackend:
    """Builds a :class:`~repro.llm.simulated.SimulatedLLM`."""

    model: str = "gpt-3.5"
    seed: int = 0
    decode: str = "scalar"

    def build(self) -> LLMClient:
        from repro.llm.simulated import SimulatedLLM

        return SimulatedLLM(self.model, seed=self.seed, decode=self.decode)

    def describe(self) -> dict:
        return {
            "kind": "simulated",
            "model": self.model,
            "seed": self.seed,
            "decode": self.decode,
        }


def _fault_payload(fault: Fault | None) -> dict | None:
    if fault is None:
        return None
    return {
        "kind": fault.kind,
        "retry_after": fault.retry_after,
        "latency_s": fault.latency_s,
        "message": fault.message,
    }


@dataclass(frozen=True)
class FaultBackend:
    """Builds a :class:`~repro.llm.faults.FaultInjectingClient`.

    ``plan`` must be a *mapping* plan (positional ``{call_index: Fault}``
    or fingerprint-keyed ``{fingerprint: Fault | schedule}``) — callable
    plans cannot cross a process boundary and are rejected here, at
    backend construction, rather than at pickling time in a worker.
    """

    inner: Backend
    plan: tuple = ()

    def __init__(
        self,
        inner: Backend,
        plan: Mapping[int, Fault] | Mapping[str, Fault | Sequence[Fault | None]] = (),
    ):
        object.__setattr__(self, "inner", inner)
        if callable(plan):
            raise LLMError(
                "FaultBackend needs a mapping fault plan; a callable plan "
                "cannot be pickled across worker processes"
            )
        items = plan.items() if isinstance(plan, Mapping) else tuple(plan)
        normalized = []
        for key, scheduled in items:
            if isinstance(key, int) and not isinstance(scheduled, Fault):
                raise LLMError(
                    "a positional fault-plan entry maps one call index to "
                    "one Fault; schedules are for fingerprint keys"
                )
            if isinstance(scheduled, Fault):
                scheduled = (scheduled,)
            normalized.append((key, tuple(scheduled)))
        object.__setattr__(self, "plan", tuple(normalized))

    def build(self) -> LLMClient:
        from repro.llm.faults import FaultInjectingClient

        # Positional entries were stored as 1-tuples for uniformity;
        # FaultInjectingClient's positional path expects the bare Fault.
        return FaultInjectingClient(
            self.inner.build(),
            plan={
                key: (schedule[0] if isinstance(key, int) else schedule)
                for key, schedule in self.plan
            },
        )

    def describe(self) -> dict:
        return {
            "kind": "faults",
            "inner": self.inner.describe(),
            "plan": [
                [key, [_fault_payload(fault) for fault in schedule]]
                for key, schedule in self.plan
            ],
        }


@dataclass(frozen=True)
class GarblingBackend:
    """Builds a :class:`~repro.llm.faults.GarblingClient`."""

    inner: Backend
    triggers: tuple[str, ...] = ()
    reply: str = "I cannot help with that."

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "triggers", tuple(str(t) for t in self.triggers)
        )

    def build(self) -> LLMClient:
        from repro.llm.faults import GarblingClient

        return GarblingClient(
            self.inner.build(), triggers=self.triggers, reply=self.reply
        )

    def describe(self) -> dict:
        return {
            "kind": "garbling",
            "inner": self.inner.describe(),
            "triggers": list(self.triggers),
            "reply": self.reply,
        }


@dataclass(frozen=True)
class DegradedBackend:
    """Builds a :class:`~repro.llm.faults.DegradedClient`.

    Wraps any inner backend with a scripted degradation plan
    (:class:`~repro.resilience.degradation.DegradationPlan` — a frozen
    value, so the backend pickles across worker processes).  ``name``
    identifies this backend in throttle signals and health reports.
    """

    inner: Backend
    plan: "DegradationPlan"
    name: str = "primary"

    def build(self) -> LLMClient:
        from repro.llm.faults import DegradedClient

        return DegradedClient(
            self.inner.build(), self.plan, backend_name=self.name
        )

    def describe(self) -> dict:
        return {
            "kind": "degraded",
            "inner": self.inner.describe(),
            "name": self.name,
            "plan": self.plan.payload(),
        }


@dataclass(frozen=True)
class CachingBackend:
    """Builds a :class:`~repro.llm.cache.CachingClient` (per-process LRU)."""

    inner: Backend
    max_entries: int = 4096

    def build(self) -> LLMClient:
        from repro.llm.cache import CachingClient

        return CachingClient(self.inner.build(), max_entries=self.max_entries)

    def describe(self) -> dict:
        return {
            "kind": "caching",
            "inner": self.inner.describe(),
            "max_entries": self.max_entries,
        }
