"""Response caching.

Data preprocessing re-sends near-identical prompts constantly (retries,
ablation grids over the same dataset); a real deployment caches completions
to cut token spend.  :class:`CachingClient` wraps any
:class:`~repro.llm.base.LLMClient` with an exact-match LRU cache keyed by
the full request.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry


def request_key(request: CompletionRequest) -> tuple:
    """A hashable identity for a request (model, temperature, transcript)."""
    return (
        request.model,
        round(request.temperature, 6),
        request.max_tokens,
        tuple(request.transcript),
    )


class CachingClient:
    """LRU response cache in front of another client.

    Cache hits return the stored response with ``latency_s`` zeroed — a
    cache hit costs no wall-clock — but keep the token usage visible so
    callers can report "tokens that *would* have been spent" if they want
    to (the ledger decides what to meter).
    """

    def __init__(
        self,
        inner: LLMClient,
        max_entries: int = 4096,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._inner = inner
        self._max_entries = max_entries
        self._cache: OrderedDict[tuple, CompletionResponse] = OrderedDict()
        self._metrics = metrics
        self.hits = 0
        self.misses = 0

    def bind_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Attach (or detach) a metrics registry for hit/miss counters.

        The pipeline calls this when observability is on, so cache traffic
        lands in the run's metrics snapshot without the cache having to
        know about runs.
        """
        self._metrics = metrics

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        key = request_key(request)
        if key in self._cache:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("cache.hits").inc()
            self._cache.move_to_end(key)
            cached = self._cache[key]
            return CompletionResponse(
                text=cached.text,
                model=cached.model,
                usage=cached.usage,
                latency_s=0.0,
            )
        self.misses += 1
        if self._metrics is not None:
            self._metrics.counter("cache.misses").inc()
        response = self._inner.complete(request)
        self._cache[key] = response
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return response

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
