"""Deterministic fault injection for LLM clients.

Production preprocessing survives flaky upstreams; this module makes flaky
upstreams *reproducible*.  :class:`FaultInjectingClient` wraps any
:class:`~repro.llm.base.LLMClient` and applies a scripted fault plan, so
tests and failure drills replay bit-identical fault sequences regardless
of scheduling.

Plans come in two flavours:

- **positional** — keyed by 1-based call index (the original scheme,
  right for drills that target "the third call whatever it is");
- **fingerprint-keyed** — keyed by :func:`request_fingerprint`, a content
  digest of the request.  The degradation ladder bisects and re-orders
  batches, so a positional schedule drifts the moment a batch splits; a
  fingerprint schedule pins the fault to *the request itself* and fires
  deterministically at any concurrency and any retry order.  Each
  fingerprint maps to a per-occurrence sequence: occurrence *k* of the
  request draws entry *k* (``None`` = serve normally, exhausted = serve
  normally), so "fail the first two attempts of this exact prompt" is one
  line.

Fault kinds:

- ``transient`` — raise :class:`~repro.errors.TransientLLMError` (a 5xx /
  dropped-connection stand-in), optionally charging burned latency;
- ``latency`` — serve the real response but with its modeled latency
  overridden (a spike that trips the executor's timeout);
- ``rate_limit`` — raise :class:`~repro.errors.RateLimitError` (an
  upstream 429) with a scripted retry-after;
- ``crash`` — raise :class:`~repro.errors.InjectedCrashError`, the chaos
  harness's simulated process kill; it is *not* retryable and tears
  through the executor untouched (see :mod:`repro.runtime.chaos`).

Beyond scripted point faults, :class:`DegradedClient` models a *sick*
upstream: whole windows of 429 storms, latency brownouts, overload
rejections, and blackouts, scripted by a
:class:`~repro.resilience.degradation.DegradationPlan` on the simulated
clock.  The executor feeds the clock in through ``observe_time`` (which
every wrapper here forwards), so which calls degrade is a pure function
of virtual time and the plan seed — bit-identical at any concurrency.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.errors import (
    InjectedCrashError,
    LLMError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient
from repro.resilience.degradation import DegradationPlan
from repro.resilience.signals import ThrottleSignal, attach

_KINDS = ("transient", "latency", "rate_limit", "crash")

#: a positional plan maps a 1-based call index to the fault to inject
FaultPlan = Callable[[int], "Fault | None"]


def request_fingerprint(request: CompletionRequest) -> str:
    """A stable content digest of one completion request.

    Covers everything that makes the request *this* request — model,
    temperature, token cap, and the full transcript — so retries of an
    unchanged prompt share a fingerprint while a re-built (bisected,
    zero-shot-degraded) prompt gets a new one.
    """
    hasher = hashlib.sha256()
    hasher.update(request.model.encode("utf-8"))
    hasher.update(f"{request.temperature:.6f}".encode("utf-8"))
    hasher.update(str(request.max_tokens).encode("utf-8"))
    for role, content in request.transcript:
        hasher.update(role.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(content.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


@dataclass(frozen=True)
class Fault:
    """One scripted misbehaviour."""

    kind: str
    retry_after: float = 1.0    # rate_limit: scripted Retry-After
    latency_s: float = 0.0      # transient: burned time; latency: override
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise LLMError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )


#: a fingerprint schedule: per-occurrence faults for one exact request
FaultSchedule = Sequence["Fault | None"]


class FaultInjectingClient:
    """Applies a scripted fault plan in front of another client.

    ``plan`` is one of:

    - a callable returning the fault for a 1-based call index,
    - a mapping of 1-based call indices to :class:`Fault` (positional),
    - a mapping of request fingerprints (:func:`request_fingerprint`) to a
      :class:`Fault` or a per-occurrence sequence of ``Fault | None``.

    Positional and fingerprint keys cannot be mixed in one mapping — the
    two schemes answer different questions and silent precedence would
    make drills unreproducible.
    """

    def __init__(
        self,
        inner: LLMClient,
        plan: Mapping[int, Fault] | Mapping[str, Fault | FaultSchedule] | FaultPlan,
    ):
        self._inner = inner
        self._by_fingerprint: dict[str, tuple[Fault | None, ...]] = {}
        self._occurrences: dict[str, int] = {}
        if callable(plan):
            self._plan: FaultPlan | None = plan
        elif isinstance(plan, Mapping):
            key_types = {type(key) for key in plan}
            if key_types <= {int}:
                indexed = dict(plan)
                self._plan = lambda index: indexed.get(index)
            elif key_types <= {str}:
                self._plan = None
                for fingerprint, scheduled in plan.items():
                    if isinstance(scheduled, Fault):
                        scheduled = (scheduled,)
                    self._by_fingerprint[fingerprint] = tuple(scheduled)
            else:
                raise LLMError(
                    "a fault plan mapping must be keyed entirely by call "
                    "index (int) or entirely by request fingerprint (str)"
                )
        else:
            raise LLMError(f"cannot interpret fault plan {plan!r}")
        self.n_calls = 0
        self.n_injected = 0

    def _scheduled_fault(self, request: CompletionRequest) -> "Fault | None":
        if self._plan is not None:
            return self._plan(self.n_calls)
        fingerprint = request_fingerprint(request)
        schedule = self._by_fingerprint.get(fingerprint)
        if schedule is None:
            return None
        occurrence = self._occurrences.get(fingerprint, 0)
        self._occurrences[fingerprint] = occurrence + 1
        if occurrence >= len(schedule):
            return None
        return schedule[occurrence]

    def observe_time(self, now: float) -> None:
        """Forward the simulated clock to the wrapped client."""
        forward = getattr(self._inner, "observe_time", None)
        if callable(forward):
            forward(now)

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self.n_calls += 1
        fault = self._scheduled_fault(request)
        if fault is None:
            return self._inner.complete(request)
        self.n_injected += 1
        if fault.kind == "crash":
            raise InjectedCrashError("mid_batch", fault.message)
        if fault.kind == "transient":
            raise TransientLLMError(fault.message, latency_s=fault.latency_s)
        if fault.kind == "rate_limit":
            raise RateLimitError(fault.retry_after)
        response = self._inner.complete(request)
        return replace(response, latency_s=fault.latency_s)

    def checkpoint_state(self) -> dict:
        """Mutable injection state (plus the wrapped client's), journaled
        so a resumed drill continues its fault script mid-sentence."""
        inner_state = None
        capture = getattr(self._inner, "checkpoint_state", None)
        if callable(capture):
            inner_state = capture()
        return {
            "n_calls": self.n_calls,
            "n_injected": self.n_injected,
            "occurrences": dict(self._occurrences),
            "inner": inner_state,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore state captured by :meth:`checkpoint_state`."""
        self.n_calls = int(state["n_calls"])
        self.n_injected = int(state["n_injected"])
        self._occurrences = {
            str(key): int(value)
            for key, value in state.get("occurrences", {}).items()
        }
        if state.get("inner") is not None:
            restore = getattr(self._inner, "restore_checkpoint_state", None)
            if callable(restore):
                restore(state["inner"])


class GarblingClient:
    """Serves an unparseable reply whenever a trigger string is in the prompt.

    Wraps any :class:`~repro.llm.base.LLMClient`; a request whose
    transcript contains one of ``triggers`` gets ``reply`` (metered
    through the real token accounting, so usage stays honest) instead of
    the wrapped client's answer.  Because the decision is a pure function
    of the request *content*, the garbling fires identically at any
    concurrency, batch composition, or retry order — including the
    degradation ladder's bisected and per-instance re-asks, which still
    contain the poisoned cell's text.  That makes it the deterministic
    way to drive one chosen instance into quarantine: plant a marker
    value in a cell, trigger on it, and every prompt mentioning that
    cell yields garbage until the ladder gives up.
    """

    def __init__(
        self,
        inner: LLMClient,
        triggers: Sequence[str],
        reply: str = "I cannot help with that.",
    ):
        if not triggers:
            raise LLMError("GarblingClient needs at least one trigger string")
        self._inner = inner
        self._triggers = tuple(str(trigger) for trigger in triggers)
        self._reply = reply
        self.n_calls = 0
        self.n_garbled = 0

    def observe_time(self, now: float) -> None:
        """Forward the simulated clock to the wrapped client."""
        forward = getattr(self._inner, "observe_time", None)
        if callable(forward):
            forward(now)

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self.n_calls += 1
        transcript = "\n".join(content for __, content in request.transcript)
        if any(trigger in transcript for trigger in self._triggers):
            self.n_garbled += 1
            from repro.llm.accounting import meter_response
            from repro.llm.profiles import get_profile

            return meter_response(
                get_profile(request.model), request, self._reply
            )
        return self._inner.complete(request)

    def checkpoint_state(self) -> dict:
        inner_state = None
        capture = getattr(self._inner, "checkpoint_state", None)
        if callable(capture):
            inner_state = capture()
        return {
            "n_calls": self.n_calls,
            "n_garbled": self.n_garbled,
            "inner": inner_state,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self.n_calls = int(state["n_calls"])
        self.n_garbled = int(state["n_garbled"])
        if state.get("inner") is not None:
            restore = getattr(self._inner, "restore_checkpoint_state", None)
            if callable(restore):
                restore(state["inner"])


class DegradedClient:
    """Scripts backend *sickness* windows over the wrapped client.

    A :class:`~repro.resilience.degradation.DegradationPlan` divides the
    simulated timeline into episodes; each completion call is classified
    by the virtual time the executor announced via :meth:`observe_time`:

    - ``rate_limit_storm`` — raise :class:`~repro.errors.RateLimitError`
      with the episode's scripted Retry-After;
    - ``latency_brownout`` — serve the real reply with its modeled
      latency multiplied by the episode's factor (slow but correct);
    - ``overload`` — raise :class:`~repro.errors.TransientLLMError`
      (the provider's ``overloaded`` rejection), burning the scripted
      latency;
    - ``blackout`` — like overload but typically at intensity 1.0: a
      total outage window.

    Whether a particular call inside an episode is hit is decided by a
    seeded hash of the call's per-episode ordinal, so the scenario
    replays bit-identically at any concurrency or retry order.  Every
    raised error carries a :class:`~repro.resilience.signals.ThrottleSignal`
    naming this backend, which the executor's AIMD loop and the failover
    router consume.
    """

    def __init__(
        self,
        inner: LLMClient,
        plan: DegradationPlan,
        backend_name: str = "primary",
    ):
        self._inner = inner
        self._plan = plan
        self._name = backend_name
        self._now = 0.0
        self._episode_calls: dict[int, int] = {}
        self.n_calls = 0
        self.n_throttled = 0
        self.n_overloads = 0
        self.n_blackouts = 0
        self.n_slowed = 0

    @property
    def plan(self) -> DegradationPlan:
        return self._plan

    def observe_time(self, now: float) -> None:
        """Adopt the attempt's virtual start time (fed by the executor).

        The clock tracks the *current* attempt, not a running maximum:
        with multiple lanes, one lane finishing late must not fast-forward
        the outage window for its siblings' earlier calls.  The executor
        announces starts in its deterministic scheduling order, so this
        stays bit-identical at any concurrency.
        """
        self._now = now
        forward = getattr(self._inner, "observe_time", None)
        if callable(forward):
            forward(self._now)

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self.n_calls += 1
        hit = self._plan.episode_at(self._now)
        if hit is None:
            return self._inner.complete(request)
        index, episode = hit
        ordinal = self._episode_calls.get(index, 0)
        self._episode_calls[index] = ordinal + 1
        if not self._plan.decide(index, ordinal, episode.intensity):
            return self._inner.complete(request)
        if episode.kind == "rate_limit_storm":
            self.n_throttled += 1
            raise attach(
                RateLimitError(episode.retry_after_s),
                ThrottleSignal(
                    kind="rate_limit",
                    retry_after_s=episode.retry_after_s,
                    backend=self._name,
                ),
            )
        if episode.kind == "overload":
            self.n_overloads += 1
            raise attach(
                TransientLLMError(
                    "upstream overloaded", latency_s=episode.retry_after_s
                ),
                ThrottleSignal(
                    kind="overloaded",
                    retry_after_s=episode.retry_after_s,
                    backend=self._name,
                ),
            )
        if episode.kind == "blackout":
            self.n_blackouts += 1
            raise attach(
                TransientLLMError(
                    "backend blackout", latency_s=episode.retry_after_s
                ),
                ThrottleSignal(
                    kind="overloaded",
                    retry_after_s=episode.retry_after_s,
                    backend=self._name,
                ),
            )
        # latency_brownout: slow but correct.
        response = self._inner.complete(request)
        self.n_slowed += 1
        return replace(
            response, latency_s=response.latency_s * episode.latency_factor
        )

    def checkpoint_state(self) -> dict:
        inner_state = None
        capture = getattr(self._inner, "checkpoint_state", None)
        if callable(capture):
            inner_state = capture()
        return {
            "now": self._now,
            "episode_calls": {
                str(index): count
                for index, count in self._episode_calls.items()
            },
            "n_calls": self.n_calls,
            "n_throttled": self.n_throttled,
            "n_overloads": self.n_overloads,
            "n_blackouts": self.n_blackouts,
            "n_slowed": self.n_slowed,
            "inner": inner_state,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self._now = float(state["now"])
        self._episode_calls = {
            int(index): int(count)
            for index, count in state["episode_calls"].items()
        }
        self.n_calls = int(state["n_calls"])
        self.n_throttled = int(state["n_throttled"])
        self.n_overloads = int(state["n_overloads"])
        self.n_blackouts = int(state["n_blackouts"])
        self.n_slowed = int(state["n_slowed"])
        if state.get("inner") is not None:
            restore = getattr(self._inner, "restore_checkpoint_state", None)
            if callable(restore):
                restore(state["inner"])


def fail_first(n: int, fault: Fault) -> FaultPlan:
    """A plan injecting ``fault`` on the first ``n`` calls."""
    return lambda index: fault if index <= n else None


def fail_every(k: int, fault: Fault) -> FaultPlan:
    """A plan injecting ``fault`` on every ``k``-th call."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return lambda index: fault if index % k == 0 else None
