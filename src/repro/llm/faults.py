"""Deterministic fault injection for LLM clients.

Production preprocessing survives flaky upstreams; this module makes flaky
upstreams *reproducible*.  :class:`FaultInjectingClient` wraps any
:class:`~repro.llm.base.LLMClient` and applies a scripted fault plan keyed
by call index (1-based), so tests and failure drills replay bit-identical
fault sequences regardless of scheduling.

Fault kinds:

- ``transient`` — raise :class:`~repro.errors.TransientLLMError` (a 5xx /
  dropped-connection stand-in), optionally charging burned latency;
- ``latency`` — serve the real response but with its modeled latency
  overridden (a spike that trips the executor's timeout);
- ``rate_limit`` — raise :class:`~repro.errors.RateLimitError` (an
  upstream 429) with a scripted retry-after.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro.errors import LLMError, RateLimitError, TransientLLMError
from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient

_KINDS = ("transient", "latency", "rate_limit")

#: a plan maps a 1-based call index to the fault to inject (or None)
FaultPlan = Callable[[int], "Fault | None"]


@dataclass(frozen=True)
class Fault:
    """One scripted misbehaviour."""

    kind: str
    retry_after: float = 1.0    # rate_limit: scripted Retry-After
    latency_s: float = 0.0      # transient: burned time; latency: override
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise LLMError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )


class FaultInjectingClient:
    """Applies a scripted fault plan in front of another client.

    ``plan`` is either a mapping of 1-based call indices to
    :class:`Fault` or a callable returning the fault for an index.
    """

    def __init__(
        self,
        inner: LLMClient,
        plan: Mapping[int, Fault] | FaultPlan,
    ):
        self._inner = inner
        self._plan: FaultPlan = (
            plan if callable(plan) else lambda index: plan.get(index)
        )
        self.n_calls = 0
        self.n_injected = 0

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self.n_calls += 1
        fault = self._plan(self.n_calls)
        if fault is None:
            return self._inner.complete(request)
        self.n_injected += 1
        if fault.kind == "transient":
            raise TransientLLMError(fault.message, latency_s=fault.latency_s)
        if fault.kind == "rate_limit":
            raise RateLimitError(fault.retry_after)
        response = self._inner.complete(request)
        return replace(response, latency_s=fault.latency_s)


def fail_first(n: int, fault: Fault) -> FaultPlan:
    """A plan injecting ``fault`` on the first ``n`` calls."""
    return lambda index: fault if index <= n else None


def fail_every(k: int, fault: Fault) -> FaultPlan:
    """A plan injecting ``fault`` on every ``k``-th call."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return lambda index: fault if index % k == 0 else None
