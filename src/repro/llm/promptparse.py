"""Prompt parsing: the simulated LLM reading its input.

A real LLM reads the prompt text; so does the simulator.  This module
recovers the task, the target attribute, the reasoning contract, the
few-shot examples, and the batch questions from *nothing but the chat
transcript*.  If the framework's prompt wording drifts from what this
parser understands, tests fail loudly — which is exactly the contract a
prompt template has with a real model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.contextualize import parse_record_pair, parse_serialized_record
from repro.data.instances import Task
from repro.errors import LLMError
from repro.llm.base import CompletionRequest

_TARGET_RE = re.compile(r'the "([^"]+)" attribute')
_QUESTION_RE = re.compile(r"^\s*Question\s+(\d+)\s*:\s*(.*)$")
_ANSWER_RE = re.compile(r"^\s*Answer\s+(\d+)\s*:\s*(.*)$")
_QUESTION_ED_TARGET_RE = re.compile(r'error in the "([^"]+)" attribute')
_QUESTION_DI_TARGET_RE = re.compile(r"What is the ([\w\-. ]+?)\?")

_TASK_MARKERS: tuple[tuple[str, Task], ...] = (
    ("infer the value of", Task.DATA_IMPUTATION),
    ("detect whether there is an error", Task.ERROR_DETECTION),
    ("refer to the same attribute", Task.SCHEMA_MATCHING),
    ("refer to the same entity", Task.ENTITY_MATCHING),
)


@dataclass(frozen=True)
class ParsedQuestion:
    """One question of the batch, in structured form.

    ``fields`` holds the record for ED/DI; ``left``/``right`` hold the two
    sides for SM/EM.
    """

    number: int
    raw: str
    fields: dict[str, str | None] | None = None
    left: dict[str, str | None] | None = None
    right: dict[str, str | None] | None = None
    #: ED/DI: the attribute this particular question asks about (few-shot
    #: examples may target a different attribute than the batch does)
    target: str | None = None


@dataclass(frozen=True)
class ParsedExample:
    """One few-shot demonstration: a question and its gold answer line."""

    question: ParsedQuestion
    answer: str


@dataclass
class ParsedPrompt:
    """Everything the solver needs, recovered from the transcript."""

    task: Task
    reasoning: bool
    target_attribute: str | None
    confirm_target: bool
    type_hint: str | None
    examples: list[ParsedExample] = field(default_factory=list)
    questions: list[ParsedQuestion] = field(default_factory=list)


@dataclass(frozen=True)
class _ParsedSystem:
    """The (immutable) facts recovered from one system-message block."""

    task: Task
    reasoning: bool
    confirm_target: bool
    target: str | None
    type_hint: str | None


class PromptParseMemo:
    """A cross-request memo amortizing prompt parsing over a batch.

    Batched runs send hundreds of requests that share almost their entire
    transcript: the same system instruction and the same few-shot
    demonstration block, with only the final question block changing.
    Scalar decoding re-parses that shared prefix for every request; the
    memo parses each distinct block **once** and replays the result.

    Losslessness is structural: every cached function —
    :func:`_detect_task` and friends over the system text,
    :func:`_parse_examples` over one (user, assistant) message pair,
    :func:`_questions_in` over one user message, and the token counts in
    :mod:`repro.text.tokenize` — is a pure function of the message
    *content*, and the cache key is exactly that content.  A memoized
    parse therefore returns the same value the scalar path computes, so
    ``SimulatedLLM(decode="vectorized")`` is bit-identical to the scalar
    reference (property-tested in ``tests/llm/test_batch_decode.py``).

    All cached values are frozen dataclasses (or tuples of them), shared
    safely across the :class:`ParsedPrompt` results, which keep their own
    mutable list containers.
    """

    def __init__(self) -> None:
        self._systems: dict[str, _ParsedSystem] = {}
        self._examples: dict[tuple, tuple[ParsedExample, ...]] = {}
        self._questions: dict[tuple, tuple[ParsedQuestion, ...]] = {}
        self._token_counts: dict[str, int] = {}
        self._fits: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    # -- block-level caches ----------------------------------------------

    def system(self, system: str) -> _ParsedSystem:
        cached = self._systems.get(system)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        task = _detect_task(system)
        target = _detect_target(system, task)
        cached = _ParsedSystem(
            task=task,
            reasoning="in two lines" in system,
            confirm_target="confirm the target attribute" in system,
            target=target,
            type_hint=_detect_type_hint(system, target),
        )
        self._systems[system] = cached
        return cached

    def example_pair(
        self, user: str, assistant: str, task: Task
    ) -> tuple[ParsedExample, ...]:
        key = (task, user, assistant)
        cached = self._examples.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        questions = {q.number: q for q in _questions_in(user, task)}
        answers = _answers_in(assistant)
        cached = tuple(
            ParsedExample(question=question, answer=answers[number])
            for number, question in sorted(questions.items())
            if number in answers
        )
        self._examples[key] = cached
        return cached

    def questions(self, text: str, task: Task) -> tuple[ParsedQuestion, ...]:
        key = (task, text)
        cached = self._questions.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        cached = tuple(_questions_in(text, task))
        self._questions[key] = cached
        return cached

    # -- solver fit cache -------------------------------------------------

    def fit(self, key: tuple, compute):
        """Memoize a solver's few-shot fit (thresholds, attribute weights).

        A batch's requests all carry the same few-shot block, and every
        solver re-derives its decision criteria from that block before
        answering — deterministically (no RNG touches the fit), from the
        example *content* plus the client's fixed profile and knowledge
        base.  The memo lives inside one client, so profile and knowledge
        are constant across its entries and ``key`` only needs to carry
        the solver tag and the example content.
        """
        cached = self._fits.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        cached = compute()
        self._fits[key] = cached
        return cached

    # -- token metering ---------------------------------------------------

    def count_tokens(self, text: str) -> int:
        """Memoized :func:`repro.text.tokenize.count_tokens`."""
        cached = self._token_counts.get(text)
        if cached is not None:
            self.hits += 1
            return cached
        from repro.text.tokenize import count_tokens

        self.misses += 1
        cached = count_tokens(text)
        self._token_counts[text] = cached
        return cached

    def prompt_tokens(self, request: CompletionRequest) -> int:
        """Transcript token count, identical to
        :func:`repro.llm.accounting.request_prompt_tokens` by construction
        (same per-message formula, memoized per content block)."""
        total = 3
        for role, content in request.transcript:
            total += 4
            total += self.count_tokens(role)
            total += self.count_tokens(content)
        return total


def parse_prompt(
    request: CompletionRequest, memo: PromptParseMemo | None = None
) -> ParsedPrompt:
    """Parse a framework-built chat transcript.

    Raises :class:`LLMError` for prompts the simulated model cannot make
    sense of (no task instruction, no questions) — the moral equivalent of
    a model answering garbage to a garbage prompt, made loud.

    With ``memo`` set, distinct system / few-shot / question blocks are
    parsed once and replayed from the memo (see :class:`PromptParseMemo`);
    the result is identical to the memo-less parse.
    """
    system_texts = [m.content for m in request.messages if m.role == "system"]
    if not system_texts:
        raise LLMError("prompt has no system message")
    system = "\n".join(system_texts)

    if memo is not None:
        parsed_system = memo.system(system)
        task = parsed_system.task
        messages = list(request.messages)
        examples: list[ParsedExample] = []
        for i, message in enumerate(messages[:-1]):
            if message.role == "user" and messages[i + 1].role == "assistant":
                examples.extend(
                    memo.example_pair(
                        message.content, messages[i + 1].content, task
                    )
                )
        questions: list[ParsedQuestion] = []
        for message in reversed(messages):
            if message.role == "user":
                questions = list(memo.questions(message.content, task))
                break
        if not questions:
            raise LLMError("prompt contains no questions to answer")
        return ParsedPrompt(
            task=task,
            reasoning=parsed_system.reasoning,
            target_attribute=parsed_system.target,
            confirm_target=parsed_system.confirm_target,
            type_hint=parsed_system.type_hint,
            examples=examples,
            questions=questions,
        )

    task = _detect_task(system)
    reasoning = "in two lines" in system
    confirm_target = "confirm the target attribute" in system
    target = _detect_target(system, task)
    type_hint = _detect_type_hint(system, target)

    examples = _parse_examples(request, task)
    questions = _parse_final_questions(request, task)
    if not questions:
        raise LLMError("prompt contains no questions to answer")
    return ParsedPrompt(
        task=task,
        reasoning=reasoning,
        target_attribute=target,
        confirm_target=confirm_target,
        type_hint=type_hint,
        examples=examples,
        questions=questions,
    )


def _detect_task(system: str) -> Task:
    for marker, task in _TASK_MARKERS:
        if marker in system:
            return task
    raise LLMError(f"cannot identify the task from: {system[:160]!r}")


def _detect_target(system: str, task: Task) -> str | None:
    if task not in (Task.ERROR_DETECTION, Task.DATA_IMPUTATION):
        return None
    match = _TARGET_RE.search(system)
    if match is None:
        raise LLMError("ED/DI prompt does not name a target attribute")
    return match.group(1)


def _detect_type_hint(system: str, target: str | None) -> str | None:
    if target is None:
        return None
    for line in system.splitlines():
        if line.startswith(f'The "{target}" attribute can be'):
            return line.strip()
    return None


def _parse_question_line(raw: str, number: int, task: Task) -> ParsedQuestion:
    if task in (Task.ERROR_DETECTION, Task.DATA_IMPUTATION):
        pattern = (
            _QUESTION_ED_TARGET_RE
            if task is Task.ERROR_DETECTION
            else _QUESTION_DI_TARGET_RE
        )
        match = pattern.search(raw)
        return ParsedQuestion(
            number=number,
            raw=raw,
            fields=parse_serialized_record(raw),
            target=match.group(1).strip() if match else None,
        )
    left, right = parse_record_pair(raw)
    return ParsedQuestion(number=number, raw=raw, left=left, right=right)


def _questions_in(text: str, task: Task) -> list[ParsedQuestion]:
    questions = []
    for line in text.splitlines():
        match = _QUESTION_RE.match(line)
        if match:
            questions.append(
                _parse_question_line(
                    match.group(2), int(match.group(1)), task
                )
            )
    return questions


def _answers_in(text: str) -> dict[int, str]:
    """Map answer number -> final answer line (two-line blocks collapse to
    their last line, matching the contract)."""
    answers: dict[int, str] = {}
    lines = text.splitlines()
    current: int | None = None
    buffer: list[str] = []
    for line in lines:
        match = _ANSWER_RE.match(line)
        if match:
            if current is not None and buffer:
                answers[current] = buffer[-1]
            current = int(match.group(1))
            buffer = [match.group(2).strip()] if match.group(2).strip() else []
        elif line.strip():
            buffer.append(line.strip())
    if current is not None and buffer:
        answers[current] = buffer[-1]
    return answers


def _parse_examples(
    request: CompletionRequest, task: Task
) -> list[ParsedExample]:
    """Pair up user questions with the following assistant answers."""
    examples: list[ParsedExample] = []
    messages = list(request.messages)
    for i, message in enumerate(messages[:-1]):
        if message.role != "user" or messages[i + 1].role != "assistant":
            continue
        questions = {
            q.number: q for q in _questions_in(message.content, task)
        }
        answers = _answers_in(messages[i + 1].content)
        for number, question in sorted(questions.items()):
            if number in answers:
                examples.append(
                    ParsedExample(question=question, answer=answers[number])
                )
    return examples


def _parse_final_questions(
    request: CompletionRequest, task: Task
) -> list[ParsedQuestion]:
    """The questions of the last user message (the batch to answer)."""
    for message in reversed(request.messages):
        if message.role == "user":
            return _questions_in(message.content, task)
    return []
