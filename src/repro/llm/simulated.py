"""The simulated chat-completion engine.

``SimulatedLLM.complete`` is a drop-in for a commercial chat API call:

1. meter the prompt and enforce the model's context window;
2. *read* the prompt — recover task, contract, examples, questions from
   the text alone (:mod:`repro.llm.promptparse`);
3. dispatch the per-task solver with the profile's competence knobs;
4. possibly violate the answer format (per-answer fidelity — weak models
   ramble instead of following the contract, which is how the paper's
   "N/A" cells arise);
5. render the reply text and meter the completion.

Determinism: every request's randomness is seeded from the model name,
client seed, temperature, and the full prompt text — identical requests
get identical replies across processes (like caching a real API's output),
while retries with a changed prompt resample.
"""

from __future__ import annotations

import hashlib
import random

from repro.data.instances import Task
from repro.errors import ContextWindowExceededError, LLMError
from repro.llm.accounting import meter_response, request_prompt_tokens
from repro.llm.base import CompletionRequest, CompletionResponse
from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.promptparse import ParsedPrompt, PromptParseMemo, parse_prompt
from repro.llm.solvers import DISolver, EDSolver, EMSolver, SMSolver, SolvedAnswer
from repro.text.tokenize import count_tokens

_RAMBLE_TEMPLATES = (
    "I think this one is tricky and it could go either way honestly",
    "As an AI language model I would need more context to be certain",
    "Let me think about the record again, there are several fields here",
    "Possibly, but the attributes are ambiguous in my opinion",
)


class SimulatedLLM:
    """An offline stand-in for a chat-completion API.

    Parameters
    ----------
    model:
        Profile name (``gpt-3.5``, ``gpt-4``, ``gpt-3``, ``vicuna-13b``)
        or a :class:`ModelProfile` for custom models.
    seed:
        Client-level seed mixed into every request's determinism hash.
    decode:
        ``"scalar"`` (default) parses every prompt from scratch — the
        bit-identical reference path.  ``"vectorized"`` amortizes prompt
        parsing, token metering, and solver few-shot fitting across
        requests through a
        :class:`~repro.llm.promptparse.PromptParseMemo`: the shared
        system/few-shot prefix of a batch is parsed (and its decision
        thresholds fitted) once, then replayed for every request that
        carries it.  The memo caches only pure, RNG-free functions of
        message content given this client's fixed profile and knowledge,
        so replies, usage, and latency are identical between the two
        modes (property-tested); only the host-CPU decode cost changes.
    """

    def __init__(
        self,
        model: str | ModelProfile = "gpt-3.5",
        seed: int = 0,
        decode: str = "scalar",
    ):
        if decode not in ("scalar", "vectorized"):
            raise LLMError(
                f"unknown decode mode {decode!r}; expected 'scalar' or "
                f"'vectorized'"
            )
        self._profile = (
            model if isinstance(model, ModelProfile) else get_profile(model)
        )
        self._seed = seed
        self._decode = decode
        self._memo = PromptParseMemo() if decode == "vectorized" else None
        self._call_counter = 0
        self._knowledge = KnowledgeBase(
            model=self._profile.name,
            coverage=self._profile.knowledge_coverage,
            concept_coverage=self._profile.concept_coverage,
        )

    @property
    def profile(self) -> ModelProfile:
        return self._profile

    @property
    def knowledge(self) -> KnowledgeBase:
        return self._knowledge

    @property
    def decode(self) -> str:
        return self._decode

    @property
    def memo(self) -> PromptParseMemo | None:
        """The decode memo (``None`` in scalar mode); exposes hit/miss
        counters for the batch-decode benchmark."""
        return self._memo

    def checkpoint_state(self) -> dict:
        """The client's mutable state, for crash-safe run journaling.

        Replies depend on ``_call_counter`` (retries resample), so a
        resumed run must restart counting exactly where the interrupted
        one stopped to reproduce its remaining replies bit-identically.
        """
        return {"call_counter": self._call_counter}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore state captured by :meth:`checkpoint_state`."""
        self._call_counter = int(state["call_counter"])

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        """Serve one chat completion (see module docstring for the stages)."""
        if request.model != self._profile.name:
            raise LLMError(
                f"client serves {self._profile.name!r}, request asks for "
                f"{request.model!r}"
            )
        prompt_tokens = (
            request_prompt_tokens(request)
            if self._memo is None
            else self._memo.prompt_tokens(request)
        )
        if prompt_tokens > self._profile.context_window:
            raise ContextWindowExceededError(
                self._profile.name, prompt_tokens, self._profile.context_window
            )
        parsed = parse_prompt(request, memo=self._memo)
        rng = self._request_rng(request)
        solver = self._solver_for(parsed.task, rng, request.temperature)
        answers = solver.solve(parsed)
        text = self._render(parsed, answers, rng)
        return meter_response(
            self._profile, request, text, prompt_tokens=prompt_tokens
        )

    def complete_batch(
        self, requests: list[CompletionRequest]
    ) -> list[CompletionResponse]:
        """Serve a batch of completions in order.

        Equivalent to ``[self.complete(r) for r in requests]`` — the call
        counter advances exactly as it would for sequential calls, so the
        replies are bit-identical to the one-at-a-time path.  In
        vectorized mode the first request of the batch warms the memo with
        the batch's shared system/few-shot prefix and every later request
        decodes against it, which is where the amortization comes from;
        callers holding a whole batch should prefer this entry point.
        """
        return [self.complete(request) for request in requests]

    def _request_rng(self, request: CompletionRequest) -> random.Random:
        # The call counter makes a *retry* of the same prompt resample, as a
        # real temperature>0 API does; runs stay deterministic because the
        # sequence of calls is.
        self._call_counter += 1
        hasher = hashlib.blake2b(digest_size=8)
        hasher.update(self._profile.name.encode("utf-8"))
        hasher.update(str(self._seed).encode("utf-8"))
        hasher.update(str(self._call_counter).encode("utf-8"))
        hasher.update(f"{request.temperature:.3f}".encode("utf-8"))
        for role, content in request.transcript:
            hasher.update(role.encode("utf-8"))
            hasher.update(content.encode("utf-8"))
        return random.Random(int.from_bytes(hasher.digest(), "little"))

    def _solver_for(self, task: Task, rng: random.Random, temperature: float):
        args = (self._profile, self._knowledge, rng, temperature, self._memo)
        if task is Task.ERROR_DETECTION:
            return EDSolver(*args)
        if task is Task.DATA_IMPUTATION:
            return DISolver(*args)
        if task is Task.SCHEMA_MATCHING:
            return SMSolver(*args)
        if task is Task.ENTITY_MATCHING:
            return EMSolver(*args)
        raise LLMError(f"no solver for task {task}")

    def _render(self, parsed: ParsedPrompt, answers: list[SolvedAnswer],
                rng: random.Random) -> str:
        """Render answers, injecting format violations per fidelity."""
        blocks: list[str] = []
        for question, solved in zip(parsed.questions, answers):
            question_tokens = count_tokens(question.raw)
            fidelity = self._profile.fidelity_for(parsed.task, question_tokens)
            if rng.random() >= fidelity:
                blocks.append(self._ramble(rng))
                continue
            if parsed.reasoning:
                reason = solved.reason or "Considering the given fields."
                blocks.append(
                    f"Answer {question.number}: {reason}\n{solved.answer}"
                )
            else:
                blocks.append(f"Answer {question.number}: {solved.answer}")
        return "\n".join(blocks)

    def _ramble(self, rng: random.Random) -> str:
        """An off-contract reply fragment: no marker, no parseable answer."""
        return rng.choice(_RAMBLE_TEMPLATES)
