"""Simulated-LLM substrate.

The paper evaluates GPT-3.5, GPT-4, and Vicuna-13B through paid chat APIs.
Offline, this package provides :class:`~repro.llm.simulated.SimulatedLLM`:
a chat-completion engine that parses the framework's actual prompt text,
answers with task solvers whose competence is set by a per-model profile,
and accounts tokens/cost/latency exactly as a metered API would.

The crucial property (tested in ``tests/llm/test_no_leakage.py``): the
engine sees *only the prompt*.  Ground truth never flows in; errors emerge
from the solvers' mechanistic limits plus profile noise.
"""

from repro.llm.backend import (
    Backend,
    CachingBackend,
    Checkpointable,
    DegradedBackend,
    FaultBackend,
    GarblingBackend,
    SimulatedBackend,
)
from repro.llm.base import (
    ChatMessage,
    CompletionRequest,
    CompletionResponse,
    LLMClient,
    Usage,
)
from repro.llm.faults import (
    DegradedClient,
    Fault,
    FaultInjectingClient,
    GarblingClient,
)
from repro.llm.profiles import ModelProfile, get_profile, list_profiles
from repro.llm.promptparse import PromptParseMemo
from repro.llm.simulated import SimulatedLLM
from repro.llm.accounting import UsageLedger

__all__ = [
    "Backend",
    "CachingBackend",
    "Checkpointable",
    "DegradedBackend",
    "DegradedClient",
    "Fault",
    "FaultBackend",
    "FaultInjectingClient",
    "GarblingBackend",
    "GarblingClient",
    "ChatMessage",
    "CompletionRequest",
    "CompletionResponse",
    "PromptParseMemo",
    "SimulatedBackend",
    "Usage",
    "LLMClient",
    "ModelProfile",
    "get_profile",
    "list_profiles",
    "SimulatedLLM",
    "UsageLedger",
]
