"""YAML flow specifications: declare a flow, its inputs, and its stages.

A spec is a single YAML document:

.. code-block:: yaml

    flow: clean_match_beer
    config:                      # optional PipelineConfig overrides
      degradation: ladder
    inputs:
      dirty_left:
        dataset: beer            # any registered dataset
        side: left               # required for entity-matching datasets
        size: 30
        corrupt:                 # optional, applied in order
          - {kind: typos, attribute: beer_name, rate: 0.2, seed: 7}
          - {kind: missing, attribute: style, rate: 0.25, seed: 3}
      clean_right:
        dataset: beer
        side: right
        size: 30
    stages:
      - name: detect
        kind: detect_errors
        table: inputs.dirty_left
        params: {attributes: [beer_name]}
      - name: impute
        kind: impute_missing
        table: detect
        params: {attribute: style}
      - name: match
        kind: match_entities
        left: impute
        right: inputs.clean_right
        params: {blocking_attribute: beer_name}

Each stage wires its kind's ports (``table`` or ``left``/``right``) as
top-level keys; everything else an operator needs goes under ``params``.
Parsing is strict — unknown keys, malformed sections, and graph problems
all raise typed :class:`~repro.errors.ConfigError` before anything runs.
PyYAML is an optional dependency: specs are only needed by the CLI path,
so its absence degrades to a clear error, not an import crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:  # pragma: no cover - exercised only where PyYAML is absent
    import yaml as _yaml
except ImportError:  # pragma: no cover
    _yaml = None

from repro.data.records import Table
from repro.errors import ConfigError
from repro.flow.graph import STAGE_PORTS, FlowGraph, StageNode
from repro.flow.tables import dataset_table, inject_missing, inject_typos

_INPUT_KEYS = {"dataset", "side", "size", "seed", "corrupt"}
_STAGE_KEYS = {"name", "kind", "params", "table", "left", "right"}
_CORRUPT_KEYS = {"kind", "attribute", "rate", "seed", "typo_kind"}
_CORRUPTORS = ("typos", "missing")


@dataclass(frozen=True)
class CorruptionSpec:
    """One declared corruption pass over an input table."""

    kind: str
    attribute: str
    rate: float = 0.2
    seed: int = 0
    typo_kind: str = "any"

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "attribute": self.attribute,
            "rate": self.rate,
            "seed": self.seed,
            "typo_kind": self.typo_kind,
        }


@dataclass(frozen=True)
class InputSpec:
    """One declared flow input: a dataset-derived table, optionally dirtied."""

    name: str
    dataset: str
    side: str | None = None
    size: int | None = None
    seed: int = 0
    corrupt: tuple[CorruptionSpec, ...] = ()

    def build(self) -> tuple[Table, list[tuple[int, str, str]]]:
        """The table plus the audit trail of every corrupted cell."""
        table = dataset_table(
            self.dataset, size=self.size, seed=self.seed, side=self.side
        )
        touched: list[tuple[int, str, str]] = []
        for pass_ in self.corrupt:
            if pass_.kind == "typos":
                outcome = inject_typos(
                    table, pass_.attribute, rate=pass_.rate,
                    seed=pass_.seed, kind=pass_.typo_kind,
                )
            else:
                outcome = inject_missing(
                    table, pass_.attribute, rate=pass_.rate, seed=pass_.seed
                )
            table = outcome.table
            touched.extend(outcome.cells)
        return table, touched

    def payload(self) -> dict:
        return {
            "name": self.name,
            "dataset": self.dataset,
            "side": self.side,
            "size": self.size,
            "seed": self.seed,
            "corrupt": [pass_.payload() for pass_ in self.corrupt],
        }


@dataclass
class FlowSpec:
    """A fully parsed flow: name, graph, input recipes, config overrides."""

    name: str
    graph: FlowGraph
    inputs: dict[str, InputSpec] = field(default_factory=dict)
    config: dict = field(default_factory=dict)

    def build_inputs(
        self,
    ) -> tuple[dict[str, Table], dict[str, list[tuple[int, str, str]]]]:
        """Materialize every input table; also return corruption audits."""
        tables: dict[str, Table] = {}
        audits: dict[str, list[tuple[int, str, str]]] = {}
        for name in sorted(self.inputs):
            tables[name], audits[name] = self.inputs[name].build()
        return tables, audits

    def payload(self) -> dict:
        """Canonical plain data — two specs are equal iff payloads are."""
        return {
            "name": self.name,
            "config": dict(self.config),
            "inputs": [
                self.inputs[name].payload() for name in sorted(self.inputs)
            ],
            "graph": self.graph.spec_payload(),
        }

    def describe(self) -> str:
        lines = [f"flow: {self.name}"]
        if self.config:
            overrides = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.config.items())
            )
            lines.append(f"config: {overrides}")
        for name in sorted(self.inputs):
            spec = self.inputs[name]
            source = spec.dataset + (f".{spec.side}" if spec.side else "")
            dirt = ""
            if spec.corrupt:
                dirt = " + " + ", ".join(
                    f"{p.kind}({p.attribute}@{p.rate})" for p in spec.corrupt
                )
            lines.append(f"input {name}: {source}"
                         f"{f' [{spec.size} rows]' if spec.size else ''}{dirt}")
        lines.append(self.graph.describe())
        return "\n".join(lines)


def _require_mapping(value: object, what: str) -> dict:
    if not isinstance(value, dict):
        raise ConfigError(f"{what} must be a mapping, got "
                          f"{type(value).__name__}")
    return value


def _check_keys(mapping: dict, allowed: set[str], what: str) -> None:
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise ConfigError(
            f"{what} has unknown key(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _parse_corruption(raw: object, where: str) -> CorruptionSpec:
    entry = _require_mapping(raw, f"{where} corrupt entry")
    _check_keys(entry, _CORRUPT_KEYS, f"{where} corrupt entry")
    for key in ("kind", "attribute"):
        if key not in entry:
            raise ConfigError(f"{where} corrupt entry is missing {key!r}")
    kind = str(entry["kind"])
    if kind not in _CORRUPTORS:
        raise ConfigError(
            f"{where}: unknown corruption kind {kind!r}; expected "
            f"{' or '.join(_CORRUPTORS)}"
        )
    return CorruptionSpec(
        kind=kind,
        attribute=str(entry["attribute"]),
        rate=float(entry.get("rate", 0.2)),
        seed=int(entry.get("seed", 0)),
        typo_kind=str(entry.get("typo_kind", "any")),
    )


def _parse_input(name: str, raw: object) -> InputSpec:
    where = f"input {name!r}"
    entry = _require_mapping(raw, where)
    _check_keys(entry, _INPUT_KEYS, where)
    if "dataset" not in entry:
        raise ConfigError(f"{where} is missing 'dataset'")
    side = entry.get("side")
    if side is not None and side not in ("left", "right"):
        raise ConfigError(
            f"{where}: side must be 'left' or 'right', got {side!r}"
        )
    return InputSpec(
        name=name,
        dataset=str(entry["dataset"]),
        side=None if side is None else str(side),
        size=None if entry.get("size") is None else int(entry["size"]),
        seed=int(entry.get("seed", 0)),
        corrupt=tuple(
            _parse_corruption(item, where)
            for item in (entry.get("corrupt") or [])
        ),
    )


def _parse_stage(raw: object, index: int) -> StageNode:
    where = f"stage #{index + 1}"
    entry = _require_mapping(raw, where)
    _check_keys(entry, _STAGE_KEYS, where)
    for key in ("name", "kind"):
        if key not in entry:
            raise ConfigError(f"{where} is missing {key!r}")
    name = str(entry["name"])
    kind = str(entry["kind"])
    ports = STAGE_PORTS.get(kind, ("table", "left", "right"))
    wired = {
        port: str(entry[port]) for port in ports if port in entry
    }
    params = _require_mapping(entry.get("params") or {},
                              f"{where} ('{name}') params")
    return StageNode.make(name=name, kind=kind, inputs=wired, params=params)


def parse_flow(document: object) -> FlowSpec:
    """Build a :class:`FlowSpec` from an already-decoded YAML document."""
    root = _require_mapping(document, "flow spec")
    _check_keys(root, {"flow", "config", "inputs", "stages"}, "flow spec")
    if "flow" not in root:
        raise ConfigError("flow spec is missing its 'flow' name")
    if "stages" not in root or not isinstance(root["stages"], list):
        raise ConfigError("flow spec needs a 'stages' list")
    inputs = {
        str(name): _parse_input(str(name), raw)
        for name, raw in _require_mapping(
            root.get("inputs") or {}, "'inputs' section"
        ).items()
    }
    stages = [
        _parse_stage(raw, index) for index, raw in enumerate(root["stages"])
    ]
    graph = FlowGraph(stages, inputs=tuple(inputs))
    config = _require_mapping(root.get("config") or {}, "'config' section")
    return FlowSpec(
        name=str(root["flow"]), graph=graph, inputs=inputs,
        config=dict(config),
    )


def load_flow_spec(text: str) -> FlowSpec:
    """Parse a YAML flow spec from source text."""
    if _yaml is None:
        raise ConfigError(
            "flow specs are YAML documents, but PyYAML is not installed; "
            "install pyyaml or build the FlowGraph programmatically"
        )
    try:
        document = _yaml.safe_load(text)
    except _yaml.YAMLError as exc:
        raise ConfigError(f"flow spec is not valid YAML: {exc}") from exc
    return parse_flow(document)
