"""The reference flow: detect → impute → match-schemas → match-entities.

One end-to-end chain over the Beer entity-matching benchmark: the left
table is dirtied (typos and missing cells in ``style``), then the flow
detects the typos, blanks and imputes the damaged cells, aligns the
schemas, and matches the cleaned left table against the clean right
table — blocking on the untouched ``beer_name`` column.

The spec exists in two equivalent forms — :data:`REFERENCE_FLOW_DOC`
(a plain dict, so the reference path never needs PyYAML) and
:data:`REFERENCE_FLOW_YAML` (the YAML text shipped under
``examples/flows/``); a conformance test holds their payloads equal.

:func:`run_flow_bench` runs the reference flow on the simulated clock and
writes ``BENCH_flow.json`` with per-stage and end-to-end tokens, request
counts, and latency.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import PipelineConfig
from repro.flow.engine import FlowEngine, FlowResult
from repro.flow.spec import FlowSpec, parse_flow
from repro.llm.simulated import SimulatedLLM
from repro.obs.manifest import canonical_json

REFERENCE_FLOW_DOC: dict = {
    "flow": "clean_match_beer",
    "config": {"degradation": "ladder"},
    "inputs": {
        "dirty_left": {
            "dataset": "beer",
            "side": "left",
            "size": 30,
            "seed": 0,
            "corrupt": [
                {"kind": "typos", "attribute": "style",
                 "rate": 0.2, "seed": 7},
                {"kind": "missing", "attribute": "style",
                 "rate": 0.25, "seed": 3},
            ],
        },
        "clean_right": {
            "dataset": "beer",
            "side": "right",
            "size": 30,
            "seed": 0,
        },
    },
    "stages": [
        {
            "name": "detect",
            "kind": "detect_errors",
            "table": "inputs.dirty_left",
            "params": {"attributes": ["style"]},
        },
        {
            "name": "impute",
            "kind": "impute_missing",
            "table": "detect",
            "params": {"attribute": "style"},
        },
        {
            "name": "align",
            "kind": "match_schemas",
            "left": "impute",
            "right": "inputs.clean_right",
        },
        {
            "name": "match",
            "kind": "match_entities",
            "left": "impute",
            "right": "inputs.clean_right",
            "params": {"blocking_attribute": "beer_name"},
        },
    ],
}

REFERENCE_FLOW_YAML = """\
flow: clean_match_beer
config:
  degradation: ladder
inputs:
  dirty_left:
    dataset: beer
    side: left
    size: 30
    seed: 0
    corrupt:
      - {kind: typos, attribute: style, rate: 0.2, seed: 7}
      - {kind: missing, attribute: style, rate: 0.25, seed: 3}
  clean_right:
    dataset: beer
    side: right
    size: 30
    seed: 0
stages:
  - name: detect
    kind: detect_errors
    table: inputs.dirty_left
    params:
      attributes: [style]
  - name: impute
    kind: impute_missing
    table: detect
    params:
      attribute: style
  - name: align
    kind: match_schemas
    left: impute
    right: inputs.clean_right
  - name: match
    kind: match_entities
    left: impute
    right: inputs.clean_right
    params:
      blocking_attribute: beer_name
"""


def reference_spec() -> FlowSpec:
    """The reference flow, parsed from the dict form (no YAML needed)."""
    return parse_flow(REFERENCE_FLOW_DOC)


def run_reference_flow(
    client=None,
    concurrency: int = 1,
    workdir: str | Path | None = None,
    keep_raw: bool = False,
    chaos=None,
) -> FlowResult:
    """Run the reference flow end to end and return its result."""
    spec = reference_spec()
    client = client or SimulatedLLM(model="gpt-3.5", seed=0)
    overrides = dict(spec.config)
    overrides["concurrency"] = concurrency
    config = PipelineConfig(**overrides)
    engine = FlowEngine(client, config, workdir=workdir)
    tables, __ = spec.build_inputs()
    return engine.run(spec.graph, tables, keep_raw=keep_raw, chaos=chaos)


def run_flow_bench(
    out_path: str | Path = "BENCH_flow.json",
    concurrency: int = 1,
) -> dict:
    """Benchmark the reference flow; write per-stage + end-to-end numbers.

    All quantities come from the simulated clock and token meter, so the
    file is reproducible byte-for-byte at a fixed concurrency.
    """
    result = run_reference_flow(concurrency=concurrency)
    stages = {}
    for name in result.order:
        stage = result.stages[name]
        stages[name] = {
            "kind": stage.kind,
            "prompt_tokens": stage.report.usage.prompt_tokens,
            "completion_tokens": stage.report.usage.completion_tokens,
            "n_requests": stage.report.n_requests,
            "estimated_seconds": stage.report.estimated_seconds,
            "n_quarantined": len(stage.quarantine),
            "prep_cache_hits": stage.report.prep_cache_hits,
            "prep_cache_misses": stage.report.prep_cache_misses,
        }
    payload = {
        "benchmark": "flow_reference",
        "flow": "clean_match_beer",
        "concurrency": concurrency,
        "stages": stages,
        "end_to_end": {
            "prompt_tokens": result.report.usage.prompt_tokens,
            "completion_tokens": result.report.usage.completion_tokens,
            "n_requests": result.report.n_requests,
            "estimated_seconds": result.report.estimated_seconds,
            "prep_cache_hits": result.report.prep_cache_hits,
            "prep_cache_misses": result.report.prep_cache_misses,
        },
        "outputs": {
            "flagged": len(result.stages["detect"].output["flagged"]),
            "imputed": len(result.stages["impute"].output["imputed"]),
            "correspondences": len(
                result.stages["align"].output["correspondences"]
            ),
            "matches": len(result.stages["match"].output["matches"]),
        },
    }
    Path(out_path).write_text(canonical_json(payload))
    return payload
