"""Cross-stage provenance: which stage produced or disqualified each datum.

The flow engine never silently drops anything.  Every change a stage makes
to the data moving through the graph is recorded as an *origin*:

- :class:`CellOrigin` — a cell-level event (a cell flagged by error
  detection, imputed by DI, quarantined by the degradation ladder, or an
  entire row excluded downstream because an upstream stage quarantined
  one of its cells);
- :class:`PairOrigin` — a pair-level event (a candidate pair excluded
  from entity matching because one of its rows carries an upstream
  quarantine).

Each stage's bundle of origins is a :class:`StageProvenance`; the engine
threads the full list into the flow result and the run manifest, so the
answer to "why is this cell blank / why was this pair never asked about"
is one lookup away.  The *staged degradation* acceptance criterion lives
here: an instance quarantined in stage N shows up in stage N+1's
``excluded_upstream`` with the originating stage named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: cell-level actions a stage may record
CELL_ACTIONS = (
    "flagged",      # error detection marked the cell erroneous
    "blanked",      # the engine blanked a flagged cell for repair
    "imputed",      # imputation filled the cell
    "unrepaired",   # flagged/missing but no downstream stage repaired it
    "quarantined",  # the degradation ladder gave up on this cell's instance
    "excluded",     # the stage skipped this cell/row due to an upstream mark
)

#: pair-level actions a stage may record
PAIR_ACTIONS = (
    "matched",      # the stage predicted a correspondence/match
    "excluded",     # the pair was dropped due to an upstream quarantine
    "quarantined",  # the ladder gave up on this pair's own instance
)


@dataclass(frozen=True)
class CellOrigin:
    """One cell-level provenance event.

    ``stage`` is the stage that recorded the event; for ``excluded``
    events ``detail`` names the originating upstream stage and reason.
    """

    row: int
    attribute: str
    stage: str
    action: str
    detail: str = ""

    def payload(self) -> dict:
        return {
            "row": self.row,
            "attribute": self.attribute,
            "stage": self.stage,
            "action": self.action,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class PairOrigin:
    """One pair-level provenance event (schema or entity matching)."""

    left: str
    right: str
    stage: str
    action: str
    detail: str = ""

    def payload(self) -> dict:
        return {
            "left": self.left,
            "right": self.right,
            "stage": self.stage,
            "action": self.action,
            "detail": self.detail,
        }


def sort_cell_origins(origins: list[CellOrigin]) -> list[CellOrigin]:
    """Canonical order so provenance payloads are byte-stable."""
    return sorted(
        origins,
        key=lambda o: (o.row, o.attribute, o.stage, o.action, o.detail),
    )


def sort_pair_origins(origins: list[PairOrigin]) -> list[PairOrigin]:
    return sorted(
        origins,
        key=lambda o: (o.left, o.right, o.stage, o.action, o.detail),
    )


@dataclass
class StageProvenance:
    """Everything one stage did to the data passing through it.

    ``cells``/``pairs`` are the stage's own events; ``excluded_upstream``
    is the subset of events where the stage visibly skipped work because
    of marks inherited from earlier stages — the degradation trail the
    acceptance criteria require.  ``quarantined`` records the stage's own
    ladder casualties as ``(row, attribute, reason)`` triples.
    """

    stage: str
    kind: str
    cells: list[CellOrigin] = field(default_factory=list)
    pairs: list[PairOrigin] = field(default_factory=list)
    excluded_upstream: list[CellOrigin] = field(default_factory=list)
    quarantined: list[tuple[int, str, str]] = field(default_factory=list)

    def record_cell(
        self,
        row: int,
        attribute: str,
        action: str,
        detail: str = "",
    ) -> None:
        self.cells.append(
            CellOrigin(row=row, attribute=attribute, stage=self.stage,
                       action=action, detail=detail)
        )

    def record_pair(
        self,
        left: str,
        right: str,
        action: str,
        detail: str = "",
    ) -> None:
        self.pairs.append(
            PairOrigin(left=left, right=right, stage=self.stage,
                       action=action, detail=detail)
        )

    def record_excluded(
        self,
        row: int,
        attribute: str,
        origin_stage: str,
        reason: str,
    ) -> None:
        """A row/cell visibly skipped because ``origin_stage`` marked it."""
        self.excluded_upstream.append(
            CellOrigin(
                row=row,
                attribute=attribute,
                stage=self.stage,
                action="excluded",
                detail=f"quarantined in {origin_stage}: {reason}",
            )
        )

    def record_quarantine(self, row: int, attribute: str, reason: str) -> None:
        self.quarantined.append((row, attribute, reason))
        self.record_cell(row, attribute, "quarantined", reason)

    def payload(self) -> dict:
        """Canonical plain data for journals, manifests, and goldens."""
        return {
            "stage": self.stage,
            "kind": self.kind,
            "cells": [o.payload() for o in sort_cell_origins(self.cells)],
            "pairs": [o.payload() for o in sort_pair_origins(self.pairs)],
            "excluded_upstream": [
                o.payload()
                for o in sort_cell_origins(self.excluded_upstream)
            ],
            "quarantined": [
                {"row": row, "attribute": attribute, "reason": reason}
                for row, attribute, reason in sorted(self.quarantined)
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StageProvenance":
        prov = cls(stage=payload["stage"], kind=payload["kind"])
        prov.cells = [CellOrigin(**entry) for entry in payload["cells"]]
        prov.pairs = [PairOrigin(**entry) for entry in payload["pairs"]]
        prov.excluded_upstream = [
            CellOrigin(**entry) for entry in payload["excluded_upstream"]
        ]
        prov.quarantined = [
            (entry["row"], entry["attribute"], entry["reason"])
            for entry in payload["quarantined"]
        ]
        return prov


@dataclass
class QuarantineMark:
    """A sticky per-row mark carried downstream along table edges.

    When stage N quarantines the instance for ``(row, attribute)``, every
    consumer of N's output table sees the mark and must either exclude
    the row (recording it in ``excluded_upstream``) or flag it — never
    silently pretend the cell is trustworthy.
    """

    row: int
    attribute: str
    stage: str
    reason: str

    def payload(self) -> dict:
        return {
            "row": self.row,
            "attribute": self.attribute,
            "stage": self.stage,
            "reason": self.reason,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "QuarantineMark":
        return cls(**payload)


def marks_by_row(marks: list[QuarantineMark]) -> dict[int, list[QuarantineMark]]:
    grouped: dict[int, list[QuarantineMark]] = {}
    for mark in sorted(marks, key=lambda m: (m.row, m.attribute, m.stage)):
        grouped.setdefault(mark.row, []).append(mark)
    return grouped
