"""Flow inputs: build tables from the registered datasets, optionally dirty.

The benchmark datasets ship as *instance* collections (one question per
cell or pair); a flow consumes *tables*.  :func:`dataset_table`
reassembles a table from a dataset's instances — deduplicating the
records that back several instances, restoring ground-truth values for
imputation datasets, and selecting a side for entity-matching pairs.

A clean benchmark table gives the detect/impute stages nothing to do, so
the reference flows dirty their inputs first: :func:`inject_typos` and
:func:`inject_missing` corrupt a deterministic sample of cells (seeded
``random.Random``, reusing the corruption kit the ED benchmarks use) and
report exactly which cells they touched, so tests can check the flow
found and repaired what was planted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.instances import Task
from repro.data.records import Record, Table
from repro.datasets.corruption import typo
from repro.datasets.registry import load_dataset
from repro.errors import ConfigError, DatasetError


def dataset_table(
    name: str,
    size: int | None = None,
    seed: int = 0,
    side: str | None = None,
) -> Table:
    """A :class:`Table` reassembled from dataset ``name``'s instances.

    ``side`` must be ``"left"`` or ``"right"`` for entity-matching
    datasets (each instance is a record *pair*) and omitted otherwise.
    Imputation datasets come back whole: the ground-truth value is
    restored into each instance's blanked target cell.
    """
    dataset = load_dataset(name, size=size, seed=seed)
    task = dataset.task
    if task in (Task.ERROR_DETECTION, Task.DATA_IMPUTATION):
        if side is not None:
            raise ConfigError(
                f"dataset {name!r} ({task.value}) has no sides; "
                f"drop the side selector"
            )
        records: list[Record] = []
        seen: set[str] = set()
        for instance in dataset.instances:
            record = instance.record
            if record.record_id in seen:
                continue
            seen.add(record.record_id)
            copy = record.copy()
            if task is Task.DATA_IMPUTATION and instance.true_value:
                copy[instance.target_attribute] = instance.true_value
            records.append(copy)
        if not records:
            raise DatasetError(f"dataset {name!r} produced no records")
        return Table(records[0].schema, records)
    if task is Task.ENTITY_MATCHING:
        if side not in ("left", "right"):
            raise ConfigError(
                f"dataset {name!r} (entity matching) needs side='left' "
                f"or side='right'"
            )
        records = []
        seen = set()
        for instance in dataset.instances:
            record = getattr(instance.pair, side)
            if record.record_id in seen:
                continue
            seen.add(record.record_id)
            records.append(record.copy())
        if not records:
            raise DatasetError(f"dataset {name!r} produced no records")
        return Table(records[0].schema, records)
    raise ConfigError(
        f"dataset {name!r} ({task.value}) holds attribute pairs, not "
        f"records; it cannot back a flow table input"
    )


@dataclass
class CorruptedCells:
    """The audit trail of one corruption pass over a table."""

    table: Table
    #: (row, attribute, original value) for every cell touched
    cells: list[tuple[int, str, str]] = field(default_factory=list)


def _eligible_rows(table: Table, attribute: str) -> list[int]:
    if attribute not in table.schema:
        raise ConfigError(f"table has no attribute {attribute!r}")
    return [
        row for row, record in enumerate(table)
        if record[attribute] is not None
    ]


def _sample_rows(
    eligible: list[int], rate: float, seed: int
) -> list[int]:
    if not 0.0 < rate <= 1.0:
        raise ConfigError(f"corruption rate must be in (0, 1], got {rate}")
    if not eligible:
        raise DatasetError("no non-missing cells to corrupt")
    count = max(1, round(rate * len(eligible)))
    rng = random.Random(seed)
    return sorted(rng.sample(eligible, min(count, len(eligible))))


def inject_typos(
    table: Table, attribute: str, rate: float = 0.2, seed: int = 0,
    kind: str = "any",
) -> CorruptedCells:
    """Copy ``table`` with typos in a seeded sample of ``attribute`` cells."""
    rows = _sample_rows(_eligible_rows(table, attribute), rate, seed)
    rng = random.Random(seed + 1)  # edits independent of row choice
    corrupted = Table(table.schema, [record.copy() for record in table])
    cells: list[tuple[int, str, str]] = []
    for row in rows:
        original = str(corrupted[row][attribute])
        edit = typo(original, rng, kind=kind)
        corrupted[row][attribute] = edit.corrupted
        cells.append((row, attribute, original))
    return CorruptedCells(table=corrupted, cells=cells)


def inject_missing(
    table: Table, attribute: str, rate: float = 0.2, seed: int = 0
) -> CorruptedCells:
    """Copy ``table`` with a seeded sample of ``attribute`` cells blanked."""
    rows = _sample_rows(_eligible_rows(table, attribute), rate, seed)
    corrupted = Table(table.schema, [record.copy() for record in table])
    cells: list[tuple[int, str, str]] = []
    for row in rows:
        original = str(corrupted[row][attribute])
        corrupted[row][attribute] = None
        cells.append((row, attribute, original))
    return CorruptedCells(table=corrupted, cells=cells)
