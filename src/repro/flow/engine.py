"""The flow executor: run a stage DAG with per-stage checkpoints.

:class:`FlowEngine` walks a :class:`~repro.flow.graph.FlowGraph` in its
deterministic topological order and runs each stage through the existing
table-level workflows.  Three concerns the isolated workflows don't have
live here:

- **Durability.**  With a ``workdir``, the engine keeps a *flow ledger* —
  the PR 5 write-ahead journal reused one level up: the sealed header
  binds the file to the flow's full context (graph spec, pipeline config,
  client class, input-table digests), and each completed stage appends
  one fsync'd record carrying the stage's entire result (output table
  rows, provenance, report, quarantine marks, client state).  Each
  stage's *own* LLM run additionally journals per-batch into a sub-file,
  so a crash mid-stage resumes mid-stage and a crash between stages
  resumes from the ledger — bit-identically either way.
- **Provenance.**  Every cell a stage flags, blanks, imputes, or
  quarantines — and every row/pair a stage *refuses* because of an
  upstream quarantine — is recorded in that stage's
  :class:`~repro.flow.provenance.StageProvenance` and threaded into the
  flow result and manifest.
- **Staged degradation.**  A :class:`~repro.flow.provenance.QuarantineMark`
  travels with a table edge: downstream stages exclude the marked
  rows/cells from their prompts and list the exclusions, so nothing
  quarantined in stage N is silently treated as trustworthy in stage N+1.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import workflows
from repro.core.config import PipelineConfig
from repro.core.workflows import WorkflowReport
from repro.data.instances import Task
from repro.data.records import Record, Table
from repro.data.schema import Attribute, AttrType, Schema
from repro.datasets.registry import load_dataset
from repro.errors import ConfigError, InjectedCrashError
from repro.flow.graph import FlowGraph, StageNode, input_name, is_input_ref
from repro.flow.provenance import QuarantineMark, StageProvenance
from repro.llm.base import LLMClient, Usage
from repro.obs.manifest import canonical_json
from repro.runtime.checkpoint import (
    RunCheckpoint,
    capture_client_state,
    restore_client_state,
)
from repro.runtime.journal import (
    BatchRecord,
    JournalHeader,
    ResumeMismatchError,
    RunJournal,
    context_diff,
    run_fingerprint,
)

#: crash sites at a stage boundary (the engine's own chaos hooks; the
#: per-batch sites inside a stage are PR 5's mid_batch/pre_journal/…)
FLOW_CRASH_SITES = ("pre_record", "post_record")

#: the task each stage kind's few-shot pool must come from
_KIND_TASK = {
    "detect_errors": Task.ERROR_DETECTION,
    "impute_missing": Task.DATA_IMPUTATION,
    "match_schemas": Task.SCHEMA_MATCHING,
    "match_entities": Task.ENTITY_MATCHING,
}


@dataclass(frozen=True)
class FlowChaos:
    """A scripted kill at a stage boundary.

    ``pre_record`` dies after the stage ran but before its ledger record
    hit the disk (the stage re-runs on resume, replaying its own
    sub-journal); ``post_record`` dies right after the fsync'd append —
    the "killed between stages" case the resume tests exercise.
    """

    stage: str
    site: str = "post_record"

    def __post_init__(self) -> None:
        if self.site not in FLOW_CRASH_SITES:
            raise ValueError(
                f"unknown flow chaos site {self.site!r}; expected one of "
                f"{', '.join(FLOW_CRASH_SITES)}"
            )


# -- table serialization ---------------------------------------------------


def table_payload(table: Table) -> dict:
    """A table as plain data: schema (names, types) plus row values."""
    return {
        "schema": {
            "name": table.schema.name,
            "attributes": [
                {
                    "name": attr.name,
                    "type": attr.type.value,
                    "description": attr.description,
                }
                for attr in table.schema
            ],
        },
        "rows": [
            {
                "record_id": record.record_id,
                "values": {name: value for name, value in record},
            }
            for record in table
        ],
    }


def table_from_payload(payload: dict) -> Table:
    spec = payload["schema"]
    schema = Schema(
        name=spec["name"],
        attributes=tuple(
            Attribute(
                name=attr["name"],
                type=AttrType(attr["type"]),
                description=attr.get("description", ""),
            )
            for attr in spec["attributes"]
        ),
    )
    records = [
        Record(
            schema=schema,
            values=dict(row["values"]),
            record_id=row["record_id"],
        )
        for row in payload["rows"]
    ]
    return Table(schema, records)


def _report_payload(report: WorkflowReport, include_timing: bool) -> dict:
    payload = {
        "prompt_tokens": report.usage.prompt_tokens,
        "completion_tokens": report.usage.completion_tokens,
        "n_requests": report.n_requests,
        "prep_cache_hits": report.prep_cache_hits,
        "prep_cache_misses": report.prep_cache_misses,
    }
    if include_timing:
        payload["estimated_seconds"] = report.estimated_seconds
    return payload


def _report_from_payload(payload: dict) -> WorkflowReport:
    return WorkflowReport(
        usage=Usage(
            prompt_tokens=payload["prompt_tokens"],
            completion_tokens=payload["completion_tokens"],
        ),
        n_requests=payload["n_requests"],
        estimated_seconds=payload.get("estimated_seconds", 0.0),
        prep_cache_hits=payload.get("prep_cache_hits", 0),
        prep_cache_misses=payload.get("prep_cache_misses", 0),
    )


# -- results ---------------------------------------------------------------


@dataclass
class StageResult:
    """One executed (or ledger-restored) stage.

    ``output`` is kind-specific plain data (flagged cells, imputed values,
    correspondences, matches); ``marks`` are the quarantine marks the
    stage hands downstream (inherited plus its own); ``table`` is the
    stage's output table for table producers, ``None`` for matchers.
    """

    name: str
    kind: str
    output: dict
    provenance: StageProvenance
    report: WorkflowReport
    quarantine: list[dict] = field(default_factory=list)
    marks: list[QuarantineMark] = field(default_factory=list)
    table: Table | None = None
    exchanges: list[dict] = field(default_factory=list)
    resumed: bool = False

    def payload(self, include_timing: bool = True) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "output": self.output,
            "provenance": self.provenance.payload(),
            "report": _report_payload(self.report, include_timing),
            "quarantine": self.quarantine,
            "marks": [mark.payload() for mark in self.marks],
            "table": None if self.table is None else table_payload(self.table),
            "exchanges": self.exchanges,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StageResult":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            output=payload["output"],
            provenance=StageProvenance.from_payload(payload["provenance"]),
            report=_report_from_payload(payload["report"]),
            quarantine=payload["quarantine"],
            marks=[
                QuarantineMark.from_payload(entry)
                for entry in payload["marks"]
            ],
            table=(
                None if payload["table"] is None
                else table_from_payload(payload["table"])
            ),
            exchanges=payload.get("exchanges", []),
        )


@dataclass
class FlowResult:
    """The outcome of one flow run: every stage plus the rolled-up report."""

    graph: FlowGraph
    order: tuple[str, ...]
    stages: dict[str, StageResult]
    report: WorkflowReport
    resumed_stages: tuple[str, ...] = ()

    @property
    def tables(self) -> dict[str, Table]:
        """Output tables of the table-producing stages."""
        return {
            name: result.table
            for name, result in self.stages.items()
            if result.table is not None
        }

    def payload(self, include_timing: bool = True) -> dict:
        """The run as plain data.

        ``include_timing=False`` drops the simulated-clock makespans —
        the one quantity that legitimately varies with executor
        concurrency — so cross-concurrency determinism checks compare
        everything else byte-for-byte.
        """
        return {
            "order": list(self.order),
            "stages": {
                name: self.stages[name].payload(include_timing)
                for name in self.order
            },
            "report": _report_payload(self.report, include_timing),
        }

    def manifest_payload(self) -> dict:
        """The provenance manifest: graph spec + full per-stage payloads."""
        return {
            "kind": "flow_manifest",
            "flow": self.graph.spec_payload(),
            "resumed_stages": list(self.resumed_stages),
            **self.payload(include_timing=True),
        }


# -- the flow ledger -------------------------------------------------------


class FlowLedger:
    """The flow-level write-ahead journal: one record per completed stage.

    Reuses :class:`~repro.runtime.journal.RunJournal` wholesale — sealed
    fingerprinted header, checksummed fsync'd lines, typed corruption
    recovery — with the stage's full result payload in the record's
    ``state`` blob.  Restoring a stage from its record is exact: the
    output table, provenance, marks, report, and the client's post-stage
    checkpoint state all round-trip through canonical JSON.
    """

    def __init__(
        self,
        journal: RunJournal,
        header: JournalHeader,
        records: list[BatchRecord],
    ):
        self._journal = journal
        self.header = header
        self.records = records

    @property
    def path(self) -> Path:
        return self._journal.path

    @classmethod
    def open(cls, path: str | Path, context: dict) -> "FlowLedger":
        """Create or resume the ledger at ``path`` (fingerprint-checked)."""
        path = Path(path)
        fingerprint = run_fingerprint(context)
        journal = RunJournal(path)
        if not path.exists() or path.stat().st_size == 0:
            header = JournalHeader(fingerprint=fingerprint, context=context)
            journal.create(header)
            return cls(journal, header, [])
        header, records, error = RunJournal.recover(path)
        if header.fingerprint != fingerprint:
            diff = context_diff(header.context, context)
            raise ResumeMismatchError(path, diff or ["$.fingerprint: differs"])
        valid_bytes = (
            error.recovered_bytes if error is not None else path.stat().st_size
        )
        journal.reopen(valid_bytes)
        return cls(journal, header, records)

    def append_stage(self, seq: int, name: str, state: dict) -> None:
        record = BatchRecord(
            seq=seq, key=f"stage:{name}", predictions=[], state=state
        )
        self._journal.append(record)
        self.records.append(record)

    def close(self) -> None:
        self._journal.close()


def flow_context(
    graph: FlowGraph,
    config: PipelineConfig,
    client: LLMClient | None,
    inputs: dict[str, Table],
    keep_raw: bool,
    backend=None,
) -> dict:
    """The context a flow ledger's header is sealed to.

    Stage-isolation runs (``backend`` set) seal the backend's description
    instead of a client class name — deliberately a *different* context
    than the shared-client path, because the two modes produce different
    ledgers (isolation has no cross-stage client state) and must never
    resume each other.  The worker count is deliberately absent: it is
    pure scheduling, and a ledger written at ``workers=4`` resumes at
    ``workers=1`` bit-identically.
    """
    digests = {
        name: hashlib.sha256(
            canonical_json(table_payload(table)).encode("utf-8")
        ).hexdigest()[:16]
        for name, table in inputs.items()
    }
    context = {
        "kind": "flow",
        "flow": graph.spec_payload(),
        "config": canonical_json(config),
        "client": (
            {"stage_isolation": True, "backend": backend.describe()}
            if backend is not None
            else type(client).__name__
        ),
        "keep_raw": keep_raw,
        "inputs": digests,
    }
    return context


# -- the engine ------------------------------------------------------------


@dataclass
class _Edge:
    """A resolved table edge: the table plus its sticky quarantine marks."""

    table: Table
    marks: list[QuarantineMark]
    source: str


@dataclass(frozen=True)
class _StageTask:
    """One stage's full execution context, as a picklable value object.

    Tables and marks travel as plain-data payloads (the same round-trip
    the ledger uses), so a task crosses a spawn boundary with nothing but
    stdlib pickling of frozen dataclasses and dicts.
    """

    node: StageNode
    edges: tuple[tuple[str, dict], ...]
    config: PipelineConfig
    backend: object
    journal_path: str | None
    keep_raw: bool


def _execute_stage_task(task: _StageTask) -> dict:
    """Run one stage hermetically (module-level: spawn imports by name)."""
    engine = FlowEngine(task.backend.build(), task.config)
    edges = {
        port: _Edge(
            table=table_from_payload(payload["table"]),
            marks=[
                QuarantineMark.from_payload(mark)
                for mark in payload["marks"]
            ],
            source=payload["source"],
        )
        for port, payload in task.edges
    }
    checkpoint = (
        RunCheckpoint(task.journal_path)
        if task.journal_path is not None
        else None
    )
    result = engine._run_stage(task.node, edges, checkpoint, task.keep_raw)
    return result.payload(include_timing=True)


class FlowEngine:
    """Executes a flow graph over named input tables.

    ``workdir`` enables durability: the flow ledger lives at
    ``<workdir>/flow.journal`` and each stage's own run journals into
    ``<workdir>/stage-<seq>-<name>.journal``.  Without a workdir the run
    is purely in-memory (no resume).

    Two execution modes:

    - **shared client** (default, ``client`` given) — the historical
      path: every stage runs through one client whose call counter
      carries across stages, sequentially, with cross-stage client state
      journaled in the ledger.
    - **stage isolation** (``backend`` given) — every stage builds a
      fresh hermetic client from the backend, which removes the
      cross-stage coupling and is what makes parallel stage execution
      legal: with ``workers > 1``, independent stages of the same
      dependency generation run in a spawn-context process pool, and the
      result is bit-identical at any worker count (``workers=1``
      isolation included, since it runs the same hermetic stages inline).

    The two modes produce different results by design (call-counter
    continuity vs hermetic stages) and seal different ledger contexts, so
    one can never silently resume the other.
    """

    def __init__(
        self,
        client: LLMClient | None,
        config: PipelineConfig | None = None,
        workdir: str | Path | None = None,
        backend=None,
        workers: int = 1,
    ):
        from repro.llm.backend import Backend

        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if backend is not None and not isinstance(backend, Backend):
            raise ConfigError(
                f"FlowEngine backend must satisfy the Backend protocol, "
                f"got {type(backend).__name__}"
            )
        if backend is None:
            if client is None:
                raise ConfigError(
                    "FlowEngine needs a client (shared-client mode) or a "
                    "backend (stage-isolation mode)"
                )
            if workers > 1:
                raise ConfigError(
                    "parallel stage execution (workers > 1) requires "
                    "stage isolation: pass backend= — a shared client's "
                    "call counter cannot span processes"
                )
        self.client = client
        self.backend = backend
        self.workers = workers
        self.config = config or PipelineConfig()
        self.workdir = Path(workdir) if workdir is not None else None

    def run(
        self,
        graph: FlowGraph,
        inputs: dict[str, Table] | None = None,
        keep_raw: bool = False,
        chaos: FlowChaos | None = None,
    ) -> FlowResult:
        inputs = dict(inputs or {})
        missing = set(graph.inputs) - set(inputs)
        if missing:
            raise ConfigError(
                f"flow input(s) not provided: {', '.join(sorted(missing))}"
            )
        extra = set(inputs) - set(graph.inputs)
        if extra:
            raise ConfigError(
                f"unexpected flow input(s): {', '.join(sorted(extra))}"
            )
        if chaos is not None and chaos.stage not in graph.stages:
            raise ConfigError(
                f"chaos targets unknown stage {chaos.stage!r}"
            )
        if chaos is not None and self.workers > 1:
            raise ConfigError(
                "flow chaos drills run at workers=1; a pool worker's "
                "injected kill would tear down unrelated stages"
            )
        order = graph.topological_order()

        ledger: FlowLedger | None = None
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
            context = flow_context(
                graph, self.config, self.client, inputs, keep_raw,
                backend=self.backend,
            )
            ledger = FlowLedger.open(self.workdir / "flow.journal", context)

        stages: dict[str, StageResult] = {}
        resumed: list[str] = []
        try:
            if self.workers > 1:
                self._run_parallel(
                    graph, order, inputs, keep_raw, ledger, stages, resumed
                )
            else:
                self._run_sequential(
                    graph, order, inputs, keep_raw, chaos, ledger,
                    stages, resumed,
                )
        finally:
            if ledger is not None:
                ledger.close()

        report = WorkflowReport(
            usage=Usage(prompt_tokens=0, completion_tokens=0),
            n_requests=0,
            estimated_seconds=0.0,
        )
        for name in order:
            report.merge(stages[name].report)
        return FlowResult(
            graph=graph,
            order=order,
            stages=stages,
            report=report,
            resumed_stages=tuple(resumed),
        )

    def _run_sequential(
        self,
        graph: FlowGraph,
        order: tuple[str, ...],
        inputs: dict[str, Table],
        keep_raw: bool,
        chaos: FlowChaos | None,
        ledger: FlowLedger | None,
        stages: dict[str, StageResult],
        resumed: list[str],
    ) -> None:
        """The inline path: shared-client mode, or isolation at workers=1."""
        pending_client_state: dict | None = None
        for seq, name in enumerate(order):
            if ledger is not None and seq < len(ledger.records):
                record = ledger.records[seq]
                restored = StageResult.from_payload(record.state["stage"])
                restored.resumed = True
                stages[name] = restored
                resumed.append(name)
                pending_client_state = record.state.get("client")
                continue
            if pending_client_state is not None and self.backend is None:
                # First fresh stage after a restored prefix: put the
                # client back where the last journaled stage left it.
                # (Isolation mode has no cross-stage client state.)
                restore_client_state(self.client, pending_client_state)
            pending_client_state = None
            if self.backend is not None:
                # Hermetic per-stage client: same construction as a pool
                # worker's, which is what keeps workers=1 isolation
                # bit-identical to workers=N.
                self.client = self.backend.build()
            node = graph.stages[name]
            edges = {
                port: self._resolve(ref, inputs, stages)
                for port, ref in node.inputs
            }
            checkpoint = None
            if self.workdir is not None:
                checkpoint = RunCheckpoint(
                    self.workdir / f"stage-{seq:02d}-{name}.journal"
                )
            result = self._run_stage(node, edges, checkpoint, keep_raw)
            stages[name] = result
            if (
                chaos is not None
                and chaos.stage == name
                and chaos.site == "pre_record"
            ):
                raise InjectedCrashError(
                    "stage_boundary",
                    f"pre_record: stage {name!r} finished, record lost",
                )
            if ledger is not None:
                ledger.append_stage(
                    seq,
                    name,
                    {
                        "stage": result.payload(include_timing=True),
                        "client": (
                            None if self.backend is not None
                            else capture_client_state(self.client)
                        ),
                    },
                )
            if (
                chaos is not None
                and chaos.stage == name
                and chaos.site == "post_record"
            ):
                raise InjectedCrashError(
                    "stage_boundary",
                    f"post_record: killed between stage {name!r} "
                    f"and its successor",
                )

    @staticmethod
    def _generations(
        graph: FlowGraph, order: tuple[str, ...]
    ) -> list[list[str]]:
        """Stages bucketed by dependency depth, topo order within each.

        Generation 0 consumes only flow inputs; generation g+1 consumes at
        least one generation-g output.  Stages within one generation are
        independent of each other by construction, so a pool may run them
        concurrently.
        """
        depth: dict[str, int] = {}
        for name in order:
            upstream = graph.stages[name].upstream_stages()
            depth[name] = 1 + max(
                (depth[ref] for ref in upstream), default=-1
            )
        buckets: dict[int, list[str]] = {}
        for name in order:
            buckets.setdefault(depth[name], []).append(name)
        return [buckets[level] for level in sorted(buckets)]

    def _run_parallel(
        self,
        graph: FlowGraph,
        order: tuple[str, ...],
        inputs: dict[str, Table],
        keep_raw: bool,
        ledger: FlowLedger | None,
        stages: dict[str, StageResult],
        resumed: list[str],
    ) -> None:
        """The pool path: one spawn worker per independent stage.

        Ledger records still append in topological order — after each
        generation lands, the completed contiguous prefix of ``order`` is
        flushed — so a ledger written here is indistinguishable from one
        written sequentially and resumes under either path.
        """
        done: set[str] = set()
        if ledger is not None:
            for seq, name in enumerate(order[: len(ledger.records)]):
                record = ledger.records[seq]
                restored = StageResult.from_payload(record.state["stage"])
                restored.resumed = True
                stages[name] = restored
                resumed.append(name)
                done.add(name)
        next_seq = len(done)
        generations = self._generations(graph, order)
        max_workers = min(
            self.workers, max(len(generation) for generation in generations)
        )
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=context
        ) as pool:
            for generation in generations:
                pending = [name for name in generation if name not in done]
                if not pending:
                    continue
                tasks = [
                    self._stage_task(
                        graph.stages[name], order.index(name),
                        inputs, stages, keep_raw,
                    )
                    for name in pending
                ]
                for name, payload in zip(
                    pending, pool.map(_execute_stage_task, tasks)
                ):
                    stages[name] = StageResult.from_payload(payload)
                    done.add(name)
                if ledger is None:
                    continue
                while next_seq < len(order) and order[next_seq] in done:
                    name = order[next_seq]
                    ledger.append_stage(
                        next_seq,
                        name,
                        {
                            "stage": stages[name].payload(
                                include_timing=True
                            ),
                            "client": None,
                        },
                    )
                    next_seq += 1

    def _stage_task(
        self,
        node: StageNode,
        seq: int,
        inputs: dict[str, Table],
        stages: dict[str, StageResult],
        keep_raw: bool,
    ) -> _StageTask:
        edges = []
        for port, ref in node.inputs:
            edge = self._resolve(ref, inputs, stages)
            edges.append((port, {
                "table": table_payload(edge.table),
                "marks": [mark.payload() for mark in edge.marks],
                "source": edge.source,
            }))
        journal_path = None
        if self.workdir is not None:
            journal_path = str(
                self.workdir / f"stage-{seq:02d}-{node.name}.journal"
            )
        return _StageTask(
            node=node,
            edges=tuple(edges),
            config=self.config,
            backend=self.backend,
            journal_path=journal_path,
            keep_raw=keep_raw,
        )

    # -- wiring -----------------------------------------------------------

    def _resolve(
        self,
        ref: str,
        inputs: dict[str, Table],
        stages: dict[str, StageResult],
    ) -> _Edge:
        if is_input_ref(ref):
            return _Edge(table=inputs[input_name(ref)], marks=[], source=ref)
        upstream = stages[ref]
        assert upstream.table is not None  # typed edges guarantee this
        return _Edge(
            table=upstream.table, marks=list(upstream.marks), source=ref
        )

    def _stage_config(self, node: StageNode) -> PipelineConfig:
        overrides = node.params.get("config") or {}
        if not isinstance(overrides, dict):
            raise ConfigError(
                f"stage {node.name!r}: 'config' must be a mapping of "
                f"PipelineConfig overrides"
            )
        if not overrides:
            return self.config
        try:
            return dataclasses.replace(self.config, **overrides)
        except TypeError:
            known = {f.name for f in dataclasses.fields(PipelineConfig)}
            bad = sorted(set(overrides) - known)
            raise ConfigError(
                f"stage {node.name!r} config override has unknown "
                f"key(s): {', '.join(bad) or '<signature mismatch>'}"
            ) from None

    def _fewshot(self, node: StageNode) -> list | None:
        spec = node.params.get("fewshot")
        if spec is None:
            return None
        if not isinstance(spec, dict) or "dataset" not in spec:
            raise ConfigError(
                f"stage {node.name!r}: 'fewshot' must be a mapping with "
                f"a 'dataset' key (plus optional size/seed)"
            )
        dataset = load_dataset(
            spec["dataset"],
            size=spec.get("size"),
            seed=spec.get("seed", 0),
        )
        expected = _KIND_TASK[node.kind]
        if dataset.task is not expected:
            raise ConfigError(
                f"stage {node.name!r} ({node.kind}) needs a "
                f"{expected.value} few-shot pool, but dataset "
                f"{spec['dataset']!r} is {dataset.task.value}"
            )
        return list(dataset.fewshot_pool)

    @staticmethod
    def _raw_exchanges(result) -> list[dict]:
        if result is None:
            return []
        return [
            {
                "messages": [
                    [role, content] for role, content in exchange.messages
                ],
                "reply": exchange.reply,
                "n_expected": exchange.n_expected,
            }
            for exchange in result.exchanges
        ]

    # -- stage execution --------------------------------------------------

    def _run_stage(
        self,
        node: StageNode,
        edges: dict[str, _Edge],
        checkpoint: RunCheckpoint | None,
        keep_raw: bool,
    ) -> StageResult:
        runner = {
            "detect_errors": self._run_detect,
            "impute_missing": self._run_impute,
            "match_schemas": self._run_match_schemas,
            "match_entities": self._run_match_entities,
        }[node.kind]
        return runner(node, edges, checkpoint, keep_raw)

    def _run_detect(
        self,
        node: StageNode,
        edges: dict[str, _Edge],
        checkpoint: RunCheckpoint | None,
        keep_raw: bool,
    ) -> StageResult:
        edge = edges["table"]
        provenance = StageProvenance(stage=node.name, kind=node.kind)
        for mark in edge.marks:
            provenance.record_excluded(
                mark.row, mark.attribute, mark.stage, mark.reason
            )
        result = workflows.detect_errors(
            self.client,
            edge.table,
            attributes=node.params.get("attributes"),
            config=self._stage_config(node),
            fewshot=self._fewshot(node),
            exclude={(m.row, m.attribute) for m in edge.marks},
            checkpoint=checkpoint,
            keep_raw=keep_raw,
        )
        output_table = Table(
            edge.table.schema, [record.copy() for record in edge.table]
        )
        for cell in result.flagged:
            provenance.record_cell(
                cell.row, cell.attribute, "flagged",
                detail="" if cell.value is None else str(cell.value),
            )
            output_table[cell.row][cell.attribute] = None
            provenance.record_cell(
                cell.row, cell.attribute, "blanked",
                detail="cleared for downstream repair",
            )
        marks = list(edge.marks)
        quarantine: list[dict] = []
        for entry in (result.result.quarantine if result.result else []):
            row, attribute = result.positions[entry.index]
            provenance.record_quarantine(row, attribute, entry.reason)
            marks.append(
                QuarantineMark(
                    row=row, attribute=attribute,
                    stage=node.name, reason=entry.reason,
                )
            )
            quarantine.append(
                {
                    "row": row,
                    "attribute": attribute,
                    "reason": entry.reason,
                    "detail": entry.detail,
                }
            )
        output = {
            "flagged": [
                {"row": c.row, "attribute": c.attribute, "value": c.value}
                for c in result.flagged
            ],
            "n_cells": len(result.positions),
            "n_excluded": len(result.excluded),
        }
        return StageResult(
            name=node.name,
            kind=node.kind,
            output=output,
            provenance=provenance,
            report=result.report,
            quarantine=quarantine,
            marks=marks,
            table=output_table,
            exchanges=self._raw_exchanges(result.result) if keep_raw else [],
        )

    def _run_impute(
        self,
        node: StageNode,
        edges: dict[str, _Edge],
        checkpoint: RunCheckpoint | None,
        keep_raw: bool,
    ) -> StageResult:
        edge = edges["table"]
        attribute = str(node.params["attribute"])
        provenance = StageProvenance(stage=node.name, kind=node.kind)
        for mark in edge.marks:
            provenance.record_excluded(
                mark.row, mark.attribute, mark.stage, mark.reason
            )
        result = workflows.impute_missing(
            self.client,
            edge.table,
            attribute,
            config=self._stage_config(node),
            fewshot=self._fewshot(node),
            type_hint=node.params.get("type_hint"),
            exclude_rows={m.row for m in edge.marks},
            checkpoint=checkpoint,
            keep_raw=keep_raw,
        )
        for row, value in sorted(result.imputed.items()):
            provenance.record_cell(row, attribute, "imputed", detail=value)
        marks = list(edge.marks)
        quarantine: list[dict] = []
        quarantined_rows: set[int] = set()
        for entry in (result.result.quarantine if result.result else []):
            row = result.rows[entry.index]
            quarantined_rows.add(row)
            provenance.record_quarantine(row, attribute, entry.reason)
            marks.append(
                QuarantineMark(
                    row=row, attribute=attribute,
                    stage=node.name, reason=entry.reason,
                )
            )
            quarantine.append(
                {
                    "row": row,
                    "attribute": attribute,
                    "reason": entry.reason,
                    "detail": entry.detail,
                }
            )
        for row in result.rows:
            if row not in result.imputed and row not in quarantined_rows:
                provenance.record_cell(
                    row, attribute, "unrepaired",
                    detail="imputation returned no value",
                )
        output = {
            "attribute": attribute,
            "imputed": {str(row): value for row, value in result.imputed.items()},
            "n_missing": len(result.rows) + len(result.excluded),
            "n_excluded": len(result.excluded),
        }
        return StageResult(
            name=node.name,
            kind=node.kind,
            output=output,
            provenance=provenance,
            report=result.report,
            quarantine=quarantine,
            marks=marks,
            table=result.table,
            exchanges=self._raw_exchanges(result.result) if keep_raw else [],
        )

    def _run_match_schemas(
        self,
        node: StageNode,
        edges: dict[str, _Edge],
        checkpoint: RunCheckpoint | None,
        keep_raw: bool,
    ) -> StageResult:
        left, right = edges["left"], edges["right"]
        provenance = StageProvenance(stage=node.name, kind=node.kind)
        for side, edge in (("left", left), ("right", right)):
            for mark in edge.marks:
                provenance.record_excluded(
                    mark.row, f"{side}:{mark.attribute}",
                    mark.stage, mark.reason,
                )
        result = workflows.match_schemas(
            self.client,
            left.table.schema,
            right.table.schema,
            config=self._stage_config(node),
            fewshot=self._fewshot(node),
            checkpoint=checkpoint,
            keep_raw=keep_raw,
        )
        for a, b in result.correspondences:
            provenance.record_pair(a, b, "matched")
        quarantine: list[dict] = []
        for entry in (result.result.quarantine if result.result else []):
            a, b = result.pairs[entry.index]
            provenance.record_pair(a, b, "quarantined", detail=entry.reason)
            quarantine.append(
                {
                    "pair": [a, b],
                    "reason": entry.reason,
                    "detail": entry.detail,
                }
            )
        output = {
            "correspondences": [list(pair) for pair in result.correspondences],
            "n_pairs": len(result.pairs),
        }
        return StageResult(
            name=node.name,
            kind=node.kind,
            output=output,
            provenance=provenance,
            report=result.report,
            quarantine=quarantine,
            marks=[],
            table=None,
            exchanges=self._raw_exchanges(result.result) if keep_raw else [],
        )

    def _run_match_entities(
        self,
        node: StageNode,
        edges: dict[str, _Edge],
        checkpoint: RunCheckpoint | None,
        keep_raw: bool,
    ) -> StageResult:
        left, right = edges["left"], edges["right"]
        provenance = StageProvenance(stage=node.name, kind=node.kind)
        for side, edge in (("left", left), ("right", right)):
            for mark in edge.marks:
                provenance.record_excluded(
                    mark.row, f"{side}:{mark.attribute}",
                    mark.stage, mark.reason,
                )
        result = workflows.match_entities(
            self.client,
            left.table,
            right.table,
            blocking_attribute=node.params.get("blocking_attribute"),
            blocking_method=node.params.get("blocking_method", "token"),
            config=self._stage_config(node),
            fewshot=self._fewshot(node),
            exclude_left_rows={m.row for m in left.marks},
            exclude_right_rows={m.row for m in right.marks},
            checkpoint=checkpoint,
            keep_raw=keep_raw,
        )
        for i, j in result.excluded:
            provenance.record_pair(
                str(i), str(j), "excluded",
                detail="a row of this pair carries an upstream quarantine",
            )
        for i, j in result.matches:
            provenance.record_pair(str(i), str(j), "matched")
        quarantine = []
        for entry in (result.result.quarantine if result.result else []):
            i, j = result.candidates[entry.index]
            provenance.record_pair(
                str(i), str(j), "quarantined", detail=entry.reason
            )
            quarantine.append(
                {
                    "pair": [i, j],
                    "reason": entry.reason,
                    "detail": entry.detail,
                }
            )
        output = {
            "matches": [list(pair) for pair in result.matches],
            "excluded": [list(pair) for pair in result.excluded],
            "n_candidates": result.n_candidates,
            "reduction_ratio": result.reduction_ratio,
        }
        return StageResult(
            name=node.name,
            kind=node.kind,
            output=output,
            provenance=provenance,
            report=result.report,
            quarantine=quarantine,
            marks=[],
            table=None,
            exchanges=self._raw_exchanges(result.result) if keep_raw else [],
        )
