"""Prep flows: declarative DAGs composing the paper's four tasks.

The :mod:`repro.flow` package turns the isolated table-level workflows
(:mod:`repro.core.workflows`) into end-to-end preparation pipelines:

- :mod:`repro.flow.graph` — typed stage nodes, validated edges,
  deterministic topological scheduling;
- :mod:`repro.flow.engine` — the executor: per-stage checkpointing on
  the PR 5 write-ahead journal, cross-stage provenance, staged
  degradation (quarantines travel, nothing is silently dropped);
- :mod:`repro.flow.provenance` — the origin/quarantine-mark vocabulary;
- :mod:`repro.flow.tables` — dataset-derived input tables and seeded
  corruption injectors;
- :mod:`repro.flow.spec` — the YAML declaration format;
- :mod:`repro.flow.reference` — the shipped 4-stage reference flow and
  its benchmark.
"""

from repro.flow.engine import (
    FLOW_CRASH_SITES,
    FlowChaos,
    FlowEngine,
    FlowLedger,
    FlowResult,
    StageResult,
    flow_context,
    table_from_payload,
    table_payload,
)
from repro.flow.graph import (
    STAGE_OUTPUT,
    STAGE_PARAMS,
    STAGE_PORTS,
    FlowGraph,
    StageNode,
)
from repro.flow.provenance import (
    CellOrigin,
    PairOrigin,
    QuarantineMark,
    StageProvenance,
)
from repro.flow.reference import (
    REFERENCE_FLOW_DOC,
    REFERENCE_FLOW_YAML,
    reference_spec,
    run_flow_bench,
    run_reference_flow,
)
from repro.flow.spec import (
    CorruptionSpec,
    FlowSpec,
    InputSpec,
    load_flow_spec,
    parse_flow,
)
from repro.flow.tables import (
    CorruptedCells,
    dataset_table,
    inject_missing,
    inject_typos,
)

__all__ = [
    "FLOW_CRASH_SITES",
    "FlowChaos",
    "FlowEngine",
    "FlowLedger",
    "FlowResult",
    "StageResult",
    "flow_context",
    "table_from_payload",
    "table_payload",
    "STAGE_OUTPUT",
    "STAGE_PARAMS",
    "STAGE_PORTS",
    "FlowGraph",
    "StageNode",
    "CellOrigin",
    "PairOrigin",
    "QuarantineMark",
    "StageProvenance",
    "REFERENCE_FLOW_DOC",
    "REFERENCE_FLOW_YAML",
    "reference_spec",
    "run_flow_bench",
    "run_reference_flow",
    "CorruptionSpec",
    "FlowSpec",
    "InputSpec",
    "load_flow_spec",
    "parse_flow",
    "CorruptedCells",
    "dataset_table",
    "inject_missing",
    "inject_typos",
]
