"""The declarative operator DAG: typed stage nodes over table-level workflows.

A *flow* composes the paper's four isolated tasks into one end-to-end data
preparation pipeline: detect errors, repair them, then match the cleaned
tables.  The graph layer is purely structural — no stage runs here:

- a :class:`StageNode` names one operator (``detect_errors``,
  ``impute_missing``, ``match_schemas``, ``match_entities``) and wires its
  input *ports* to upstream references;
- a reference is either ``inputs.<name>`` (a table handed to the engine at
  run time) or the name of another stage whose output feeds this port;
- edges are **typed**: table ports only accept producers of tables (flow
  inputs, ``detect_errors``, ``impute_missing``) — wiring a matching
  stage's pair list into a table port is a :class:`~repro.errors.ConfigError`
  at construction, not a crash mid-run.

Scheduling is deterministic and *insertion-order free*:
:meth:`FlowGraph.topological_order` is Kahn's algorithm with the ready set
kept lexicographically sorted, so the order is a pure function of the set
of stages and their edges — two programs that declare the same stages in
any order run them identically, which is what makes flow journals
addressable across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigError

#: prefix a reference uses to name a flow input instead of a stage
INPUT_PREFIX = "inputs."

#: the operators a stage may declare, with their required input ports
STAGE_PORTS: dict[str, tuple[str, ...]] = {
    "detect_errors": ("table",),
    "impute_missing": ("table",),
    "match_schemas": ("left", "right"),
    "match_entities": ("left", "right"),
}

#: what each operator's output edge carries
STAGE_OUTPUT: dict[str, str] = {
    "detect_errors": "table",
    "impute_missing": "table",
    "match_schemas": "matches",
    "match_entities": "matches",
}

#: parameters each operator accepts (every kind also takes ``config`` —
#: per-stage PipelineConfig overrides — and ``fewshot``)
STAGE_PARAMS: dict[str, tuple[str, ...]] = {
    "detect_errors": ("attributes", "config", "fewshot"),
    "impute_missing": ("attribute", "type_hint", "config", "fewshot"),
    "match_schemas": ("config", "fewshot"),
    "match_entities": (
        "blocking_attribute", "blocking_method", "config", "fewshot"
    ),
}

#: parameters an operator cannot run without
REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "impute_missing": ("attribute",),
}


def is_input_ref(ref: str) -> bool:
    """Whether ``ref`` names a flow input rather than a stage."""
    return ref.startswith(INPUT_PREFIX)


def input_name(ref: str) -> str:
    """The flow-input name inside an ``inputs.<name>`` reference."""
    return ref[len(INPUT_PREFIX):]


@dataclass(frozen=True)
class StageNode:
    """One declared operator: a name, a kind, wired ports, and parameters.

    ``inputs`` maps each of the kind's ports to an upstream reference;
    ``params`` carries operator-specific knobs (attributes to scan, the
    attribute to impute, blocking settings, per-stage config overrides,
    a few-shot pool declaration).  Nodes are plain declarations — all
    validation happens when they join a :class:`FlowGraph`.
    """

    name: str
    kind: str
    inputs: tuple[tuple[str, str], ...] = ()
    params: dict = field(default_factory=dict)

    @classmethod
    def make(
        cls,
        name: str,
        kind: str,
        inputs: Mapping[str, str],
        params: Mapping[str, object] | None = None,
    ) -> "StageNode":
        """Build a node from a port→reference mapping (ports sorted)."""
        return cls(
            name=name,
            kind=kind,
            inputs=tuple(sorted((str(p), str(r)) for p, r in inputs.items())),
            params=dict(params or {}),
        )

    @property
    def input_map(self) -> dict[str, str]:
        return dict(self.inputs)

    def upstream_stages(self) -> tuple[str, ...]:
        """Stage names (not flow inputs) this node consumes, sorted."""
        return tuple(sorted(
            ref for __, ref in self.inputs if not is_input_ref(ref)
        ))

    def spec_payload(self) -> dict:
        """The node as canonical plain data (for fingerprints and specs)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "inputs": {port: ref for port, ref in self.inputs},
            "params": dict(self.params),
        }


class FlowGraph:
    """A validated DAG of stages over a set of named flow inputs.

    Construction performs the full static check: stage names are unique
    and filesystem-safe (they name journal files), kinds are known, every
    required port is wired and no unknown port appears, references
    resolve, table ports only consume table producers, and the graph is
    acyclic.  Every violation raises :class:`~repro.errors.ConfigError`
    naming the stage and the problem.
    """

    def __init__(
        self,
        stages: Sequence[StageNode] | Iterable[StageNode],
        inputs: Sequence[str] | Iterable[str] = (),
    ):
        self.inputs: tuple[str, ...] = tuple(sorted(set(str(i) for i in inputs)))
        by_name: dict[str, StageNode] = {}
        for stage in stages:
            self._check_name(stage)
            if stage.name in by_name:
                raise ConfigError(
                    f"duplicate stage name {stage.name!r} in flow graph"
                )
            by_name[stage.name] = stage
        if not by_name:
            raise ConfigError("a flow graph needs at least one stage")
        #: stages keyed by name, stored sorted so no structure of this
        #: object depends on declaration order
        self.stages: dict[str, StageNode] = {
            name: by_name[name] for name in sorted(by_name)
        }
        for stage in self.stages.values():
            self._check_ports(stage)
            self._check_refs(stage)
        self._order = self._topological_order()

    # -- validation -------------------------------------------------------

    @staticmethod
    def _check_name(stage: StageNode) -> None:
        if not stage.name:
            raise ConfigError("a stage has an empty name")
        if is_input_ref(stage.name):
            raise ConfigError(
                f"stage name {stage.name!r} collides with the "
                f"{INPUT_PREFIX!r} reference namespace"
            )
        if any(ch in stage.name for ch in "./\\ "):
            raise ConfigError(
                f"stage name {stage.name!r} must not contain '.', '/', "
                f"'\\' or spaces (stage names address journal files)"
            )

    @staticmethod
    def _check_ports(stage: StageNode) -> None:
        if stage.kind not in STAGE_PORTS:
            raise ConfigError(
                f"stage {stage.name!r} has unknown kind {stage.kind!r}; "
                f"expected one of: {', '.join(sorted(STAGE_PORTS))}"
            )
        wired = {port for port, __ in stage.inputs}
        required = set(STAGE_PORTS[stage.kind])
        missing = required - wired
        if missing:
            raise ConfigError(
                f"stage {stage.name!r} ({stage.kind}) leaves required "
                f"port(s) unwired: {', '.join(sorted(missing))}"
            )
        unknown = wired - required
        if unknown:
            raise ConfigError(
                f"stage {stage.name!r} ({stage.kind}) wires unknown "
                f"port(s): {', '.join(sorted(unknown))}; this kind has "
                f"port(s) {', '.join(STAGE_PORTS[stage.kind])}"
            )
        if len(stage.inputs) != len(wired):
            raise ConfigError(
                f"stage {stage.name!r} wires a port twice"
            )
        allowed = set(STAGE_PARAMS[stage.kind])
        bad = sorted(set(stage.params) - allowed)
        if bad:
            raise ConfigError(
                f"stage {stage.name!r} ({stage.kind}) has unknown "
                f"parameter(s): {', '.join(bad)}; this kind accepts "
                f"{', '.join(STAGE_PARAMS[stage.kind])}"
            )
        for required in REQUIRED_PARAMS.get(stage.kind, ()):
            if required not in stage.params:
                raise ConfigError(
                    f"stage {stage.name!r} ({stage.kind}) is missing "
                    f"required parameter {required!r}"
                )

    def _check_refs(self, stage: StageNode) -> None:
        for port, ref in stage.inputs:
            if is_input_ref(ref):
                name = input_name(ref)
                if name not in self.inputs:
                    raise ConfigError(
                        f"stage {stage.name!r} port {port!r} references "
                        f"unknown flow input {name!r}; declared inputs: "
                        f"{', '.join(self.inputs) or '<none>'}"
                    )
                continue
            if ref not in self.stages:
                raise ConfigError(
                    f"stage {stage.name!r} port {port!r} references "
                    f"unknown stage {ref!r}"
                )
            produced = STAGE_OUTPUT[self.stages[ref].kind]
            if produced != "table":
                raise ConfigError(
                    f"stage {stage.name!r} port {port!r} consumes a table "
                    f"but upstream stage {ref!r} "
                    f"({self.stages[ref].kind}) produces {produced}"
                )

    # -- scheduling -------------------------------------------------------

    def _topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm with a lexicographically sorted ready set.

        The result is a pure function of the graph: node insertion order
        never influences it, because both the dependency map and the
        ready set are kept sorted by stage name.
        """
        blocked: dict[str, set[str]] = {
            name: set(stage.upstream_stages())
            for name, stage in self.stages.items()
        }
        ready = sorted(name for name, deps in blocked.items() if not deps)
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for name, deps in blocked.items():
                if current in deps:
                    deps.discard(current)
                    if not deps and name not in order:
                        newly_ready.append(name)
            ready = sorted(set(ready) | set(newly_ready))
        if len(order) != len(self.stages):
            cyclic = sorted(
                name for name, deps in blocked.items() if deps
            )
            raise ConfigError(
                f"flow graph has a cycle involving stage(s): "
                f"{', '.join(cyclic)}"
            )
        return tuple(order)

    def topological_order(self) -> tuple[str, ...]:
        return self._order

    # -- introspection ----------------------------------------------------

    def downstream_of(self, name: str) -> tuple[str, ...]:
        """Stages that (directly) consume ``name``'s output, sorted."""
        if name not in self.stages:
            raise ConfigError(f"unknown stage {name!r}")
        return tuple(sorted(
            other.name
            for other in self.stages.values()
            if name in other.upstream_stages()
        ))

    def spec_payload(self) -> dict:
        """The whole graph as canonical plain data (fingerprint input)."""
        return {
            "inputs": list(self.inputs),
            "stages": [
                self.stages[name].spec_payload()
                for name in sorted(self.stages)
            ],
        }

    def describe(self) -> str:
        """A human-readable summary: inputs, stages, edges, schedule."""
        lines = [f"inputs: {', '.join(self.inputs) or '<none>'}"]
        for position, name in enumerate(self._order, start=1):
            stage = self.stages[name]
            wires = ", ".join(
                f"{port}<-{ref}" for port, ref in stage.inputs
            )
            lines.append(
                f"{position}. {name} [{stage.kind}] {wires}"
            )
        return "\n".join(lines)
