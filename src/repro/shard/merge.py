"""Deterministic merge of per-shard results.

Per-shard payloads are plain data (:func:`~repro.shard.runner.shard_payload`
emits them, and they pickle across process boundaries unchanged).  The
merge is a *fold* over shard deltas:

    ``empty_delta() → delta_of(payload) → combine(a, b) → finalize(plan, d)``

``combine`` is the disjoint union of shard-id-keyed maps, which makes it
associative and commutative by construction — fold the payloads in any
order, grouped any way, and ``finalize`` sees the same delta.  That is the
algebraic core of the worker-count-independence guarantee: worker
scheduling only permutes the fold order, which the fold cannot observe.
Overlapping shard ids (the one thing scheduling could never legally
produce) raise :class:`~repro.errors.ShardError` instead of silently
double-counting.

``finalize`` then resolves the delta against the :class:`ShardPlan`:

- predictions scatter to global dataset indices through the plan;
- quarantine entries remap local → global indices and sort, matching the
  single-process run's ordering invariant;
- usage/request/retry/fallback counters sum;
- ``estimated_seconds`` is the **max** over shards (shards run in
  parallel on independent virtual clocks) while ``sequential_seconds``
  keeps the sum — the pair is what the scaling benchmark plots;
- metrics counters and histograms sum; gauges are namespaced per shard
  (``shard003.cache.hit_rate``) because averaging them would invent data;
- spans rebase ids by ``shard_id * SPAN_STRIDE`` and tag a ``shard``
  attribute, so the merged trace stays collision-free and attributable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ShardError
from repro.obs.manifest import canonical_json
from repro.shard.plan import ShardPlan

#: id offset between consecutive shards' span streams; one shard never
#: allocates anywhere near this many spans
SPAN_STRIDE = 1_000_000


def empty_delta() -> dict:
    """The fold's identity element."""
    return {"shards": {}}


def delta_of(payload: dict) -> dict:
    """Lift one shard payload into a delta."""
    return {"shards": {int(payload["shard_id"]): payload}}


def combine(a: dict, b: dict) -> dict:
    """Disjoint union of two deltas (associative, commutative)."""
    overlap = set(a["shards"]) & set(b["shards"])
    if overlap:
        raise ShardError(
            f"shard delta(s) {sorted(overlap)} appear on both sides of a "
            f"combine; a shard must be folded in exactly once"
        )
    return {"shards": {**a["shards"], **b["shards"]}}


@dataclass
class MergedRun:
    """A sharded run's results, reassembled to single-run shape.

    Field-for-field comparable with a single-process
    :class:`~repro.core.pipeline.PipelineResult` payload, plus the two
    shard-specific extras: ``sequential_seconds`` (the sum the parallel
    makespan is measured against) and ``plan`` provenance.
    """

    n_instances: int
    n_shards: int
    predictions: list
    quarantine: list[dict]
    usage: dict
    n_requests: int
    n_format_retries: int
    n_fallbacks: int
    estimated_seconds: float
    sequential_seconds: float
    raw_replies: list[str] = field(default_factory=list)
    exchanges: list[dict] = field(default_factory=list)
    metrics: dict | None = None
    spans: list[dict] | None = None
    plan: dict = field(default_factory=dict)

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)

    @property
    def coverage(self) -> float:
        if not self.predictions:
            return 1.0
        return (len(self.predictions) - len(self.quarantine)) / len(
            self.predictions
        )

    def payload(self) -> dict:
        """Canonical plain data for bit-identity diffs across runs."""
        payload = {
            "predictions": self.predictions,
            "quarantine": self.quarantine,
            "coverage": self.coverage,
            "usage": self.usage,
            "n_requests": self.n_requests,
            "n_format_retries": self.n_format_retries,
            "n_fallbacks": self.n_fallbacks,
            "estimated_seconds": self.estimated_seconds,
            "sequential_seconds": self.sequential_seconds,
            "raw_replies": self.raw_replies,
            "exchanges": self.exchanges,
            "metrics": self.metrics,
            "spans": self.spans,
            "plan": self.plan,
        }
        return json.loads(canonical_json(payload))


def _merge_metrics(per_shard: list[tuple[int, dict]]) -> dict | None:
    """Sum counters/histograms across shards; namespace gauges per shard."""
    present = [(sid, snap) for sid, snap in per_shard if snap is not None]
    if not present:
        return None
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for sid, snap in present:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in snap.get("gauges", {}).items():
            gauges[f"shard{sid:03d}.{name}"] = float(value)
        for name, data in snap.get("histograms", {}).items():
            if name not in histograms:
                histograms[name] = {
                    "bounds": list(data["bounds"]),
                    "counts": [int(c) for c in data["counts"]],
                    "sum": float(data["sum"]),
                    "count": int(data["count"]),
                }
                continue
            merged = histograms[name]
            if merged["bounds"] != list(data["bounds"]):
                raise ShardError(
                    f"histogram {name!r} has divergent bucket bounds across "
                    f"shards; snapshots cannot be merged"
                )
            merged["counts"] = [
                have + int(more)
                for have, more in zip(merged["counts"], data["counts"])
            ]
            merged["sum"] += float(data["sum"])
            merged["count"] += int(data["count"])
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def _rebase_spans(shard_id: int, spans: list[dict]) -> list[dict]:
    """Shift one shard's span ids into its private id range."""
    offset = shard_id * SPAN_STRIDE
    rebased = []
    for span in spans:
        moved = dict(span)
        moved["span_id"] = span["span_id"] + offset
        if span.get("parent_id") is not None:
            moved["parent_id"] = span["parent_id"] + offset
        attributes = dict(span.get("attributes", {}))
        attributes["shard"] = shard_id
        moved["attributes"] = attributes
        rebased.append(moved)
    return rebased


def finalize(plan: ShardPlan, delta: dict) -> MergedRun:
    """Resolve a fully-combined delta against its plan (module docstring)."""
    payloads = delta["shards"]
    expected = {spec.shard_id for spec in plan.nonempty_shards}
    missing = expected - set(payloads)
    if missing:
        raise ShardError(
            f"merge is missing shard payload(s) {sorted(missing)}; the "
            f"plan has {len(expected)} non-empty shard(s)"
        )
    foreign = set(payloads) - expected
    if foreign:
        raise ShardError(
            f"merge received payload(s) for unplanned shard(s) "
            f"{sorted(foreign)}"
        )

    predictions: list = [None] * plan.n_instances
    quarantine: list[dict] = []
    raw_replies: list[str] = []
    exchanges: list[dict] = []
    prompt_tokens = completion_tokens = 0
    n_requests = n_format_retries = n_fallbacks = 0
    estimated = 0.0
    sequential = 0.0
    metric_snaps: list[tuple[int, dict]] = []
    spans: list[dict] = []
    any_spans = False

    for spec in plan.nonempty_shards:
        payload = payloads[spec.shard_id]
        if list(payload["indices"]) != list(spec.indices):
            raise ShardError(
                f"shard {spec.shard_id} payload covers indices "
                f"{payload['indices']!r} but the plan assigns "
                f"{list(spec.indices)!r}; payload belongs to a foreign plan"
            )
        if len(payload["predictions"]) != len(spec.indices):
            raise ShardError(
                f"shard {spec.shard_id} returned "
                f"{len(payload['predictions'])} prediction(s) for "
                f"{len(spec.indices)} instance(s)"
            )
        for local, prediction in enumerate(payload["predictions"]):
            predictions[spec.indices[local]] = prediction
        for entry in payload["quarantine"]:
            quarantine.append({
                "index": spec.indices[entry["index"]],
                "reason": entry["reason"],
                "detail": entry.get("detail", ""),
            })
        prompt_tokens += payload["usage"]["prompt_tokens"]
        completion_tokens += payload["usage"]["completion_tokens"]
        n_requests += payload["n_requests"]
        n_format_retries += payload["n_format_retries"]
        n_fallbacks += payload["n_fallbacks"]
        estimated = max(estimated, payload["estimated_seconds"])
        sequential += payload["estimated_seconds"]
        raw_replies.extend(payload.get("raw_replies", []))
        exchanges.extend(payload.get("exchanges", []))
        metric_snaps.append((spec.shard_id, payload.get("metrics")))
        shard_spans = payload.get("spans")
        if shard_spans is not None:
            any_spans = True
            spans.extend(_rebase_spans(spec.shard_id, shard_spans))

    quarantine.sort(key=lambda entry: entry["index"])
    return MergedRun(
        n_instances=plan.n_instances,
        n_shards=plan.n_shards,
        predictions=predictions,
        quarantine=quarantine,
        usage={
            "prompt_tokens": prompt_tokens,
            "completion_tokens": completion_tokens,
        },
        n_requests=n_requests,
        n_format_retries=n_format_retries,
        n_fallbacks=n_fallbacks,
        estimated_seconds=estimated,
        sequential_seconds=sequential,
        raw_replies=raw_replies,
        exchanges=exchanges,
        metrics=_merge_metrics(metric_snaps),
        spans=spans if any_spans else None,
        plan=plan.describe(),
    )


def merge_shards(plan: ShardPlan, payloads: list[dict]) -> MergedRun:
    """Fold ``payloads`` (any order) and finalize against ``plan``."""
    delta = empty_delta()
    for payload in payloads:
        delta = combine(delta, delta_of(payload))
    return finalize(plan, delta)
