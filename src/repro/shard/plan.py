"""The shard plan: a pure function of (dataset digest, config).

Horizontal scale-out starts with a *deterministic partition*.  Exactly as
``Preprocessor._plan_units`` hoists the full batch plan ahead of any
completion call, :func:`plan_shards` materializes the full shard plan
ahead of any worker process: which instances belong to which shard is
decided once, from the dataset's content digest and the pipeline
configuration, before a single process forks.  Everything downstream —
worker scheduling, journal naming, the deterministic merge — keys off
this plan, which is why the merged result cannot depend on how many
workers happened to execute it.

Assignment is **content-addressed**: each instance hashes to its shard by
its own serialized text (salted with the config fingerprint and the shard
count), not by its position in the list.  Consequences, all
property-tested in ``tests/property/test_property_shard.py``:

- the plan is a pure function of (dataset digest, config, shard count) —
  re-planning is bit-identical;
- it is insertion-order-free — permuting the dataset moves an instance's
  global *index* but never its shard;
- every instance lands in exactly one shard (the per-shard index lists
  partition ``range(n)``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.core.contextualize import serialize_instance
from repro.data.instances import Instance, PreprocessingDataset
from repro.errors import ShardError
from repro.obs.manifest import canonical_json, jsonable

#: hard ceiling on automatic shard counts: beyond this, per-shard journal
#: and process overhead dominates any conceivable parallel win
MAX_AUTO_SHARDS = 32

#: target batches per shard when the shard count is chosen automatically —
#: enough work to amortize a worker process, few enough shards to spread
MIN_BATCHES_PER_SHARD = 8


def dataset_digest(dataset: PreprocessingDataset) -> str:
    """Content digest over every instance and few-shot example, in order.

    Same construction as the run journal's dataset digest
    (``Preprocessor._run_context``): serialized instance text separated by
    ``\\x00``, with ``\\x01`` fencing the few-shot pool, hashed with
    16-byte blake2b.
    """
    digest = hashlib.blake2b(digest_size=16)
    for instance in dataset.instances:
        digest.update(serialize_instance(instance).encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    for example in dataset.fewshot_pool:
        digest.update(serialize_instance(example).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def config_fingerprint(config: PipelineConfig) -> str:
    """Canonical digest of the full pipeline configuration."""
    return hashlib.sha256(
        canonical_json(jsonable(config)).encode("utf-8")
    ).hexdigest()[:16]


def _shard_of_text(text: str, n_shards: int, salt: str) -> int:
    """Shard assignment from an instance's serialized text (see shard_of)."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(salt.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(text.encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little") % n_shards


def shard_of(instance: Instance, n_shards: int, salt: str) -> int:
    """The shard an instance belongs to — a pure function of its content.

    ``salt`` binds the assignment to one (config, shard count) pair so
    different runs spread differently; the instance's serialized text
    (its full identity, the same text the journal digest covers) does the
    rest.  Position plays no part, which is what makes the plan
    insertion-order-free.
    """
    return _shard_of_text(serialize_instance(instance), n_shards, salt)


def default_shard_count(n_instances: int, config: PipelineConfig) -> int:
    """An automatic shard count scaled to the dataset.

    Aims for at least :data:`MIN_BATCHES_PER_SHARD` prompt batches per
    shard (so each worker process amortizes its startup over real work),
    capped at :data:`MAX_AUTO_SHARDS`.
    """
    batch = max(1, config.batch_size_for_model())
    per_shard = MIN_BATCHES_PER_SHARD * batch
    return max(1, min(MAX_AUTO_SHARDS, -(-n_instances // per_shard)))


@dataclass(frozen=True)
class ShardSpec:
    """One shard: its id and the global dataset indices it owns.

    ``indices`` preserve dataset order, so the shard's sub-dataset is the
    original dataset filtered — never reordered.
    """

    shard_id: int
    indices: tuple[int, ...]

    @property
    def n_instances(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShardPlan:
    """The full partition, sealed to the data and configuration it is for.

    ``digest``/``fingerprint`` name the exact (dataset, config) pair the
    plan was computed from; the merge layer refuses payloads from a
    foreign plan by comparing them.
    """

    digest: str
    fingerprint: str
    n_instances: int
    n_shards: int
    shards: tuple[ShardSpec, ...]

    def shard_for_index(self, index: int) -> int:
        """The shard owning global instance ``index``."""
        for spec in self.shards:
            if index in spec.indices:
                return spec.shard_id
        raise ShardError(f"index {index} is not covered by this plan")

    @property
    def nonempty_shards(self) -> tuple[ShardSpec, ...]:
        return tuple(spec for spec in self.shards if spec.indices)

    def describe(self) -> dict:
        """The plan as plain data (merged-manifest provenance)."""
        return {
            "digest": self.digest,
            "fingerprint": self.fingerprint,
            "n_instances": self.n_instances,
            "n_shards": self.n_shards,
            "shard_sizes": [spec.n_instances for spec in self.shards],
        }


def plan_shards(
    dataset: PreprocessingDataset,
    config: PipelineConfig,
    n_shards: int | None = None,
) -> ShardPlan:
    """Partition ``dataset`` into shards (see module docstring).

    ``n_shards=None`` picks :func:`default_shard_count`.  A shard may
    come out empty (content hashing balances in expectation, not
    exactly); the runner simply skips it.
    """
    if n_shards is not None and n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    instances = list(dataset.instances)
    if n_shards is None:
        n_shards = default_shard_count(len(instances), config)
    fingerprint = config_fingerprint(config)
    salt = f"{fingerprint}|{n_shards}"
    members: list[list[int]] = [[] for _ in range(n_shards)]
    for index, instance in enumerate(instances):
        members[shard_of(instance, n_shards, salt)].append(index)
    return ShardPlan(
        digest=dataset_digest(dataset),
        fingerprint=fingerprint,
        n_instances=len(instances),
        n_shards=n_shards,
        shards=tuple(
            ShardSpec(shard_id=shard_id, indices=tuple(indices))
            for shard_id, indices in enumerate(members)
        ),
    )


def stream_plan_shards(
    instances,
    config: PipelineConfig,
    n_shards: int,
    fewshot=(),
) -> ShardPlan:
    """A shard plan from an instance *stream*, in one pass and O(plan) memory.

    The factory's streamed datasets never materialize an instance list,
    so this variant consumes any iterable: each instance is serialized
    once, folded into the (incremental) dataset digest and assigned its
    shard, then dropped.  For the same instances in the same order the
    result is byte-identical to :func:`plan_shards` on a materialized
    dataset — same digest framing (``\\x00`` separators, ``\\x01``
    fencing the few-shot pool), same content-addressed assignment.

    ``n_shards`` is required: automatic sizing needs the instance count,
    which a stream only knows when it is exhausted.
    """
    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    fingerprint = config_fingerprint(config)
    salt = f"{fingerprint}|{n_shards}"
    digest = hashlib.blake2b(digest_size=16)
    members: list[list[int]] = [[] for _ in range(n_shards)]
    n_instances = 0
    for index, instance in enumerate(instances):
        text = serialize_instance(instance)
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
        members[_shard_of_text(text, n_shards, salt)].append(index)
        n_instances += 1
    digest.update(b"\x01")
    for example in fewshot:
        digest.update(serialize_instance(example).encode("utf-8"))
        digest.update(b"\x00")
    return ShardPlan(
        digest=digest.hexdigest(),
        fingerprint=fingerprint,
        n_instances=n_instances,
        n_shards=n_shards,
        shards=tuple(
            ShardSpec(shard_id=shard_id, indices=tuple(indices))
            for shard_id, indices in enumerate(members)
        ),
    )
