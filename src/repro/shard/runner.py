"""Sharded execution: true multi-process runs with a deterministic merge.

:func:`run_sharded` is the tentpole entry point.  The flow:

1. :func:`~repro.shard.plan.plan_shards` fixes the partition (a pure
   function of dataset digest + config — see that module);
2. each non-empty shard becomes a picklable :class:`ShardTask` — its
   sub-dataset, the :class:`~repro.llm.backend.Backend` to build a client
   from, the pipeline config, and (when ``workdir`` is set) its own
   write-ahead journal path;
3. :func:`run_shard` executes one task — in this process at ``workers=1``,
   in a **spawn**-context :class:`~concurrent.futures.ProcessPoolExecutor`
   otherwise — and returns a plain-data payload;
4. :func:`~repro.shard.merge.merge_shards` folds the payloads.

Why the result cannot depend on the worker count: every shard runs a
*hermetic* pipeline — a fresh client built from the backend, its own
executor clock, its own metrics registry — so nothing a shard computes can
observe when (or where) its siblings ran.  Worker scheduling only permutes
the merge fold, and the fold is order-independent by construction.  The
bit-identity tests in ``tests/shard/test_runner.py`` pin this at workers
1, 2, and 4.

Crash safety: an :class:`~repro.errors.InjectedCrashError` inside a worker
(a chaos drill's simulated process kill) is caught *in the worker* and
shipped back as a ``crashed`` sentinel payload — exceptions with custom
constructors do not survive pickling reliably, sentinels do.  The parent
lets every other shard finish (their journals complete), then re-raises.
Re-running :func:`run_sharded` with the same ``workdir`` resumes:
completed shards replay entirely from their journals, the crashed shard
resumes from its journaled prefix, and the merged payload is bit-identical
to an uninterrupted run (``tests/runtime/test_shard_chaos.py``).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.data.instances import PreprocessingDataset
from repro.errors import InjectedCrashError, ShardError
from repro.llm.backend import Backend
from repro.shard.merge import MergedRun, merge_shards
from repro.shard.plan import ShardPlan, ShardSpec, plan_shards

#: the crash sites a ShardChaos can target (superset of the single-run
#: sites: the same three points, but inside one chosen worker)
SHARD_CRASH_SITES: tuple[str, ...] = ("mid_batch", "pre_journal", "mid_journal")


@dataclass(frozen=True)
class ShardChaos:
    """A scripted kill inside one worker of a sharded run.

    ``site`` is ``mid_batch`` (the shard's client dies on completion call
    ``at``), or ``pre_journal``/``mid_journal`` (the shard's journal
    machinery dies around batch sequence ``at`` — requires ``workdir``).
    """

    shard_id: int
    site: str
    at: int

    def __post_init__(self) -> None:
        if self.site not in SHARD_CRASH_SITES:
            raise ShardError(
                f"unknown shard chaos site {self.site!r}; expected one of "
                f"{SHARD_CRASH_SITES}"
            )


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, as a picklable value object."""

    shard_id: int
    indices: tuple[int, ...]
    backend: Backend
    config: object  # PipelineConfig; typed loosely to keep pickling lazy
    dataset: PreprocessingDataset
    keep_raw: bool = False
    journal_path: str | None = None
    journal_site: str | None = None
    journal_at: int | None = None
    #: optional ExecutorConfig override (carries resilience mode into the
    #: worker — frozen dataclass, pickles like everything else here)
    executor_config: object | None = None


def shard_dataset(
    dataset: PreprocessingDataset, spec: ShardSpec
) -> PreprocessingDataset:
    """The sub-dataset one shard runs: its instances, the *full* pool.

    Instances keep dataset order (``spec.indices`` is sorted by
    construction).  The few-shot pool is passed through whole, so every
    shard — at every shard count, including the single-shard plan —
    samples exactly the examples a single-process run samples.
    """
    return PreprocessingDataset(
        name=dataset.name,
        task=dataset.task,
        instances=[dataset.instances[index] for index in spec.indices],
        fewshot_pool=list(dataset.fewshot_pool),
        description=dataset.description,
    )


def shard_payload(task: ShardTask, result) -> dict:
    """One shard's :class:`~repro.core.pipeline.PipelineResult` as plain
    data — the unit the merge folds and the pool pickles home."""
    observation = result.observation
    return {
        "shard_id": task.shard_id,
        "indices": list(task.indices),
        "predictions": list(result.predictions),
        "quarantine": [
            {"index": q.index, "reason": q.reason, "detail": q.detail}
            for q in result.quarantine
        ],
        "usage": {
            "prompt_tokens": result.usage.prompt_tokens,
            "completion_tokens": result.usage.completion_tokens,
        },
        "n_requests": result.n_requests,
        "n_format_retries": result.n_format_retries,
        "n_fallbacks": result.n_fallbacks,
        "estimated_seconds": result.estimated_seconds,
        "raw_replies": list(result.raw_replies),
        "exchanges": [
            {
                "messages": [[role, content] for role, content in ex.messages],
                "reply": ex.reply,
                "n_expected": ex.n_expected,
            }
            for ex in result.exchanges
        ],
        "metrics": (
            observation.metrics.snapshot() if observation is not None else None
        ),
        "spans": (
            [span.to_dict() for span in observation.tracer.spans]
            if observation is not None
            else None
        ),
    }


def run_shard(task: ShardTask) -> dict:
    """Execute one shard to a payload (module-level: spawn needs to
    import it by name).  Chaos crashes return a sentinel, not a raise —
    see the module docstring."""
    from repro.core.pipeline import Preprocessor
    from repro.runtime.checkpoint import JournalChaos, RunCheckpoint

    client = task.backend.build()
    preprocessor = Preprocessor(client, task.config, task.executor_config)
    checkpoint = None
    if task.journal_path is not None:
        chaos = None
        if task.journal_site is not None:
            chaos = JournalChaos(site=task.journal_site, at_seq=task.journal_at)
        checkpoint = RunCheckpoint(task.journal_path, chaos=chaos)
    try:
        result = preprocessor.run(
            task.dataset, keep_raw=task.keep_raw, checkpoint=checkpoint
        )
    except InjectedCrashError as crash:
        return {
            "shard_id": task.shard_id,
            "crashed": {"site": crash.site, "detail": crash.detail},
        }
    return shard_payload(task, result)


@dataclass
class ShardedRun:
    """What :func:`run_sharded` hands back."""

    plan: ShardPlan
    merged: MergedRun
    workers: int
    shard_payloads: list[dict]

    def payload(self) -> dict:
        return self.merged.payload()


def _build_tasks(
    plan: ShardPlan,
    backend: Backend,
    config,
    dataset: PreprocessingDataset,
    keep_raw: bool,
    workdir: str | Path | None,
    chaos: ShardChaos | None,
    executor_config=None,
) -> list[ShardTask]:
    from repro.llm.backend import FaultBackend
    from repro.llm.faults import Fault

    if chaos is not None and chaos.site != "mid_batch" and workdir is None:
        raise ShardError(
            f"shard chaos site {chaos.site!r} targets the journal; pass "
            f"workdir= so shards journal"
        )
    tasks = []
    for spec in plan.nonempty_shards:
        shard_backend = backend
        journal_site = None
        journal_at = None
        if chaos is not None and chaos.shard_id == spec.shard_id:
            if chaos.site == "mid_batch":
                crash = Fault(
                    kind="crash", message=f"shard chaos at call {chaos.at}"
                )
                if isinstance(backend, FaultBackend):
                    # Arm the existing injector rather than stacking a new
                    # one: the journal captures client state shaped by the
                    # stack, so the crashed run and its resume (which sees
                    # no chaos) must build identical stacks.
                    plan = {
                        key: (schedule[0] if isinstance(key, int) else schedule)
                        for key, schedule in backend.plan
                    }
                    plan[chaos.at] = crash
                    shard_backend = FaultBackend(backend.inner, plan)
                else:
                    shard_backend = FaultBackend(backend, {chaos.at: crash})
            else:
                journal_site = chaos.site
                journal_at = chaos.at
        journal_path = None
        if workdir is not None:
            journal_path = str(
                Path(workdir) / f"shard-{spec.shard_id:04d}.journal"
            )
        tasks.append(ShardTask(
            shard_id=spec.shard_id,
            indices=spec.indices,
            backend=shard_backend,
            config=config,
            dataset=shard_dataset(dataset, spec),
            keep_raw=keep_raw,
            journal_path=journal_path,
            journal_site=journal_site,
            journal_at=journal_at,
            executor_config=executor_config,
        ))
    return tasks


def run_sharded(
    backend: Backend,
    config,
    dataset: PreprocessingDataset,
    *,
    n_shards: int | None = None,
    workers: int = 1,
    workdir: str | Path | None = None,
    keep_raw: bool = False,
    chaos: ShardChaos | None = None,
    executor_config=None,
) -> ShardedRun:
    """Run ``dataset`` through the pipeline in shards (module docstring).

    ``workers=1`` executes the shards inline, in shard order — no
    subprocess anywhere, which keeps the default path debuggable and
    makes it the reference the pool path is diffed against.  ``workers>1``
    fans the same tasks out to a spawn-context process pool; results are
    collected per task, so scheduling cannot reorder the fold inputs.
    ``workdir`` turns on per-shard write-ahead journals
    (``shard-NNNN.journal``) and thereby crash-safe resume.
    """
    if not isinstance(backend, Backend):
        raise ShardError(
            f"run_sharded needs a Backend (picklable client factory), got "
            f"{type(backend).__name__}"
        )
    if workers < 1:
        raise ShardError(f"workers must be >= 1, got {workers}")
    if workdir is not None:
        Path(workdir).mkdir(parents=True, exist_ok=True)
    plan = plan_shards(dataset, config, n_shards)
    tasks = _build_tasks(
        plan, backend, config, dataset, keep_raw, workdir, chaos,
        executor_config,
    )
    workers = max(1, min(workers, len(tasks)))

    if workers == 1:
        payloads = [run_shard(task) for task in tasks]
    else:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            payloads = list(pool.map(run_shard, tasks))

    # Every shard either produced a payload or a crash sentinel; surface
    # the (first) crash only after all results landed, so sibling shards'
    # journals are complete when the caller resumes.
    for payload in payloads:
        crashed = payload.get("crashed")
        if crashed is not None:
            raise InjectedCrashError(crashed["site"], crashed["detail"])

    merged = merge_shards(plan, payloads)
    return ShardedRun(
        plan=plan, merged=merged, workers=workers, shard_payloads=payloads
    )
