"""Sharded multi-process execution with a deterministic merge.

The scale-out layer: partition a dataset into content-addressed shards
(:mod:`repro.shard.plan`), run each shard as a hermetic pipeline in a
worker process (:mod:`repro.shard.runner`), and fold the per-shard
payloads with an order-independent merge (:mod:`repro.shard.merge`) whose
output is bit-identical at any worker count.  :mod:`repro.shard.chaos`
drills worker kills; :mod:`repro.shard.bench` measures the scaling curve.
"""

from repro.shard.chaos import ShardChaosTrial, run_shard_crash_trial
from repro.shard.merge import (
    MergedRun,
    combine,
    delta_of,
    empty_delta,
    finalize,
    merge_shards,
)
from repro.shard.plan import (
    ShardPlan,
    ShardSpec,
    config_fingerprint,
    dataset_digest,
    default_shard_count,
    plan_shards,
    shard_of,
    stream_plan_shards,
)
from repro.shard.runner import (
    SHARD_CRASH_SITES,
    ShardChaos,
    ShardTask,
    ShardedRun,
    run_shard,
    run_sharded,
    shard_dataset,
    shard_payload,
)
from repro.shard.bench import (
    decode_microbench,
    run_shard_bench,
    shard_scaling_bench,
)

__all__ = [
    "SHARD_CRASH_SITES",
    "MergedRun",
    "ShardChaos",
    "ShardChaosTrial",
    "ShardPlan",
    "ShardSpec",
    "ShardTask",
    "ShardedRun",
    "combine",
    "config_fingerprint",
    "dataset_digest",
    "decode_microbench",
    "default_shard_count",
    "delta_of",
    "empty_delta",
    "finalize",
    "merge_shards",
    "plan_shards",
    "run_shard",
    "run_shard_bench",
    "run_shard_crash_trial",
    "run_sharded",
    "shard_dataset",
    "shard_of",
    "shard_payload",
    "shard_scaling_bench",
    "stream_plan_shards",
]
