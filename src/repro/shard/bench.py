"""The scaling benchmark behind ``BENCH_shards.json``.

Two measurements, both of *host* wall-clock (the virtual-clock cost model
is deliberately untouched by this PR — parallelism changes when work
happens, never what it costs):

- **shard scaling** — one fixed shard plan executed at several worker
  counts; reports wall seconds and speedup per count, and checks the
  merged payload digest is identical across all of them (the determinism
  half of the scaling story is measured in the same breath as the speed
  half).
- **decode microbench** — the same request batch served by a scalar-decode
  and a vectorized-decode :class:`~repro.llm.simulated.SimulatedLLM`;
  reports the amortization speedup and verifies the replies match
  text-for-text.

``python -m repro.eval shard-bench`` and ``benchmarks/test_shards.py``
both come through :func:`run_shard_bench`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.obs.manifest import canonical_json


def _payload_digest(payload: dict) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


def build_decode_requests(
    n: int = 1000,
    dataset: str = "adult",
    model: str = "gpt-3.5",
    seed: int = 0,
):
    """``n`` realistic single-instance completion requests.

    Realistic means what the pipeline actually sends: a shared system
    instruction and few-shot demonstration block (the bulk of the prompt)
    followed by one instance-specific question.  That shape is exactly
    where vectorized decode wins — the shared prefix parses once.
    """
    from repro.core.config import PipelineConfig
    from repro.core.prompts import PromptBuilder
    from repro.core.tasks import target_attribute_of
    from repro.datasets import load_dataset
    from repro.llm.base import CompletionRequest

    config = PipelineConfig(model=model, seed=seed)
    data = load_dataset(dataset, size=n, seed=seed)
    fewshot = data.sample_fewshot(config.fewshot_for(data.task), seed=seed)
    builders: dict = {}
    requests = []
    instances = data.instances
    for index in range(n):
        instance = instances[index % len(instances)]
        target = target_attribute_of(instance)
        builder = builders.get(target)
        if builder is None:
            builder = PromptBuilder(
                data.task, config, target_attribute=target
            )
            builders[target] = builder
        prompt = builder.build([instance], fewshot_examples=fewshot)
        requests.append(CompletionRequest(
            messages=prompt.messages, model=model, temperature=0.75
        ))
    return requests


def decode_microbench(
    n: int = 1000,
    dataset: str = "adult",
    model: str = "gpt-3.5",
    seed: int = 0,
) -> dict:
    """Scalar vs vectorized decode over the same ``n``-request batch."""
    from repro.llm.simulated import SimulatedLLM

    requests = build_decode_requests(n, dataset=dataset, model=model, seed=seed)

    scalar = SimulatedLLM(model, seed=seed, decode="scalar")
    started = time.perf_counter()
    scalar_replies = scalar.complete_batch(requests)
    scalar_s = time.perf_counter() - started

    vectorized = SimulatedLLM(model, seed=seed, decode="vectorized")
    started = time.perf_counter()
    vectorized_replies = vectorized.complete_batch(requests)
    vectorized_s = time.perf_counter() - started

    identical = [r.text for r in scalar_replies] == [
        r.text for r in vectorized_replies
    ]
    memo = vectorized.memo
    return {
        "n": n,
        "dataset": dataset,
        "model": model,
        "scalar_s": scalar_s,
        "vectorized_s": vectorized_s,
        "speedup": scalar_s / vectorized_s if vectorized_s > 0 else 0.0,
        "identical": identical,
        "memo": {"hits": memo.hits, "misses": memo.misses},
    }


def shard_scaling_bench(
    dataset: str = "adult",
    size: int = 240,
    model: str = "gpt-3.5",
    seed: int = 0,
    n_shards: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> dict:
    """One shard plan, several worker counts: wall-clock plus identity."""
    from repro.core.config import PipelineConfig
    from repro.datasets import load_dataset
    from repro.llm.backend import SimulatedBackend
    from repro.shard.runner import run_sharded

    config = PipelineConfig(model=model, seed=seed)
    data = load_dataset(dataset, size=size, seed=seed)
    backend = SimulatedBackend(model=model, seed=seed)
    runs = []
    digests = []
    baseline_s: float | None = None
    for workers in worker_counts:
        started = time.perf_counter()
        run = run_sharded(
            backend, config, data, n_shards=n_shards, workers=workers
        )
        wall_s = time.perf_counter() - started
        if baseline_s is None:
            baseline_s = wall_s
        digest = _payload_digest(run.payload())
        digests.append(digest)
        runs.append({
            "workers": run.workers,
            "wall_s": wall_s,
            "speedup": baseline_s / wall_s if wall_s > 0 else 0.0,
            "digest": digest,
        })
    return {
        "dataset": dataset,
        "size": size,
        "model": model,
        "n_shards": n_shards,
        "runs": runs,
        "identical": len(set(digests)) == 1,
    }


def run_shard_bench(
    out: str | Path = "BENCH_shards.json",
    size: int = 240,
    n_shards: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    decode_n: int = 1000,
    dataset: str = "adult",
    model: str = "gpt-3.5",
    seed: int = 0,
) -> dict:
    """Run both measurements and write the artifact; returns the payload."""
    payload = {
        "host": {"cpu_count": os.cpu_count()},
        "scaling": shard_scaling_bench(
            dataset=dataset, size=size, model=model, seed=seed,
            n_shards=n_shards, worker_counts=tuple(worker_counts),
        ),
        "decode": decode_microbench(
            n=decode_n, dataset=dataset, model=model, seed=seed
        ),
    }
    Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def render_bench(payload: dict) -> str:
    """A terminal-friendly summary of a bench payload."""
    lines = []
    scaling = payload["scaling"]
    lines.append(
        f"shard scaling — {scaling['dataset']} n={scaling['size']} "
        f"shards={scaling['n_shards']} "
        f"(identical={scaling['identical']})"
    )
    for run in scaling["runs"]:
        lines.append(
            f"  workers={run['workers']:>2}  wall={run['wall_s']:.2f}s  "
            f"speedup={run['speedup']:.2f}x"
        )
    decode = payload["decode"]
    lines.append(
        f"batch decode — n={decode['n']}  scalar={decode['scalar_s']:.2f}s  "
        f"vectorized={decode['vectorized_s']:.2f}s  "
        f"speedup={decode['speedup']:.2f}x "
        f"(identical={decode['identical']})"
    )
    return "\n".join(lines)
