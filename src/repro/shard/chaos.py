"""Chaos drills for sharded runs: kill one worker, resume, diff the merge.

Extends the single-process crash matrix (:mod:`repro.runtime.chaos`) to
the multi-process world.  The contract is the same property, one level
up: for every shard crash site — ``mid_batch`` (the worker's client dies
mid-completion-call), ``pre_journal`` / ``mid_journal`` (the worker's
journal machinery dies around an append) — re-running
:func:`~repro.shard.runner.run_sharded` against the same ``workdir`` must
produce a **merged payload bit-identical** to an uninterrupted run.
Surviving shards replay entirely from their own journals; the killed
shard resumes from its journaled prefix.

One subtlety the single-run harness also has: the journal header seals the
client *class*, so the crashed run and the resumed run must build the same
client stack.  :func:`run_shard_crash_trial` therefore wraps the given
backend in a no-op :class:`~repro.llm.backend.FaultBackend` for every run;
the crash run's target shard just stacks a second, armed injector inside
it (outer class unchanged → journal fingerprints match).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import InjectedCrashError, ShardError
from repro.llm.backend import Backend, FaultBackend
from repro.shard.runner import SHARD_CRASH_SITES, ShardChaos, run_sharded


@dataclass(frozen=True)
class ShardChaosTrial:
    """The outcome of one worker-kill → resume → merge-diff experiment."""

    site: str
    shard_id: int
    at: int
    crashed: bool
    identical: bool
    n_shards: int
    diffs: list[str] = field(default_factory=list)
    journal: str = ""

    @property
    def ok(self) -> bool:
        return self.crashed and self.identical

    def render(self) -> str:
        if self.ok:
            return (
                f"shard chaos @ {self.site} (shard {self.shard_id}, "
                f"at={self.at}): OK"
            )
        shown = "\n  ".join(self.diffs[:10])
        more = "" if len(self.diffs) <= 10 else (
            f"\n  … {len(self.diffs) - 10} more"
        )
        return (
            f"shard chaos @ {self.site} (shard {self.shard_id}): FAIL "
            f"(crashed={self.crashed}, {len(self.diffs)} divergent path(s))\n"
            f"  {shown}{more}\n"
            f"  journal: {self.journal}"
        )


def _target_shard(payloads: list[dict]) -> dict:
    """The busiest shard — the one with the most completion calls, so a
    mid-run kill leaves real journaled work on both sides."""
    return max(payloads, key=lambda p: (p["n_requests"], p["shard_id"]))


def run_shard_crash_trial(
    backend: Backend,
    config,
    dataset,
    site: str,
    workdir: str | Path,
    n_shards: int | None = None,
    workers: int = 2,
) -> ShardChaosTrial:
    """Crash the busiest worker at ``site``, resume, compare bit for bit."""
    from repro.runtime.journal import RunJournal
    from repro.testing.golden import diff_payloads

    if site not in SHARD_CRASH_SITES:
        raise ShardError(
            f"unknown shard crash site {site!r}; expected one of "
            f"{SHARD_CRASH_SITES}"
        )
    workdir = Path(workdir)
    # All three runs build FaultInjectingClient stacks (see module
    # docstring); the baseline and resume plans are empty, i.e. pass-through.
    base = FaultBackend(backend, {})

    # 1. Baseline: the uninterrupted sharded run every crash must reproduce.
    baseline = run_sharded(
        base, config, dataset,
        n_shards=n_shards, workers=workers,
        workdir=workdir / "baseline", keep_raw=True,
    )
    target = _target_shard(baseline.shard_payloads)
    shard_id = target["shard_id"]
    if site == "mid_batch":
        at = max(1, target["n_requests"] // 2)
    else:
        __, records = RunJournal.load(
            workdir / "baseline" / f"shard-{shard_id:04d}.journal"
        )
        at = len(records) // 2

    # 2. Crash that worker mid-run.
    crash_dir = workdir / "crash"
    crashed = False
    try:
        run_sharded(
            base, config, dataset,
            n_shards=n_shards, workers=workers,
            workdir=crash_dir, keep_raw=True,
            chaos=ShardChaos(shard_id=shard_id, site=site, at=at),
        )
    except InjectedCrashError:
        crashed = True

    # 3. Resume from whatever the crash left behind, then compare.
    resumed = run_sharded(
        base, config, dataset,
        n_shards=n_shards, workers=workers,
        workdir=crash_dir, keep_raw=True,
    )
    diffs = diff_payloads(baseline.payload(), resumed.payload())
    rendered = [diff.render() for diff in diffs]
    if not crashed:
        rendered.insert(0, "the injected worker kill never fired")
    return ShardChaosTrial(
        site=site,
        shard_id=shard_id,
        at=at,
        crashed=crashed,
        identical=not diffs,
        n_shards=baseline.plan.n_shards,
        diffs=rendered,
        journal=str(crash_dir / f"shard-{shard_id:04d}.journal"),
    )
