"""Checkpoint sessions: the pipeline's handle on a run journal.

A :class:`CheckpointSession` is what ``Preprocessor.run(checkpoint=...)``
opens around a run:

- **fresh run** — writes the sealed header and then appends one
  :class:`~repro.runtime.journal.BatchRecord` after every completed batch
  (fsync'd, so a kill between batches loses nothing);
- **resume** — recovers the journal's valid prefix (truncating any torn
  tail a crash left), refuses with a structured context diff when the
  header fingerprint does not match the resuming run, and hands the
  pipeline the journaled records to replay.

The state captured per record is *cumulative* — executor lanes/RNG/rate
window, client call counters, run stats, metrics, tracer id counter — so
resume restores from the **last** record alone, while the per-record
predictions, quarantine entries, spans, and raw exchanges replay from
every record in order.  Nothing here imports the pipeline: the session
works on duck-typed stats/executor/client/observation objects, keeping
the dependency arrow pointing from ``core`` to ``runtime``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.llm.backend import Checkpointable
from repro.runtime.journal import (
    BatchRecord,
    JournalHeader,
    ResumeMismatchError,
    RunJournal,
    context_diff,
    run_fingerprint,
)


@dataclass(frozen=True)
class JournalChaos:
    """A scripted kill inside the journaling machinery itself.

    ``site`` is ``"pre_journal"`` (die after the batch completed, before
    its record hits the disk) or ``"mid_journal"`` (die halfway through
    the fsync'd append, leaving a torn tail line); ``at_seq`` is the
    0-based batch sequence the kill targets.
    """

    site: str
    at_seq: int

    def __post_init__(self) -> None:
        if self.site not in ("pre_journal", "mid_journal"):
            raise ValueError(
                f"unknown journal chaos site {self.site!r}; expected "
                f"'pre_journal' or 'mid_journal'"
            )


@dataclass(frozen=True)
class RunCheckpoint:
    """Where (and how) one run journals itself.

    ``path`` is the journal file — created when absent, resumed when
    present.  ``chaos`` is the failure-drill hook; production runs leave
    it ``None``.
    """

    path: str | Path
    chaos: JournalChaos | None = None


def capture_client_state(client: object) -> dict | None:
    """The client's mutable state, when it opts into the resume contract.

    Clients declare resumability by satisfying the
    :class:`~repro.llm.backend.Checkpointable` protocol — both
    ``checkpoint_state`` and ``restore_checkpoint_state`` — rather than by
    being on a known-class list.  A client with neither journals ``None``
    state and replays statelessly; a client with only one half of the
    contract is ignored the same way (captured state that could never be
    restored would corrupt a resume silently).
    """
    if isinstance(client, Checkpointable):
        return client.checkpoint_state()
    return None


def restore_client_state(client: object, state: dict | None) -> None:
    if state is None:
        return
    if isinstance(client, Checkpointable):
        client.restore_checkpoint_state(state)


class CheckpointSession:
    """One run's open journal plus the replayable prefix it started from."""

    def __init__(
        self,
        journal: RunJournal,
        header: JournalHeader,
        records: list[BatchRecord],
        chaos: JournalChaos | None = None,
    ):
        self._journal = journal
        self.header = header
        self.records = records
        self._chaos = chaos

    @property
    def path(self) -> Path:
        return self._journal.path

    @classmethod
    def open(
        cls, checkpoint: RunCheckpoint, context: dict
    ) -> "CheckpointSession":
        """Create or resume the journal at ``checkpoint.path``.

        A fresh (or empty) file gets a sealed header for ``context``.  An
        existing journal is recovered — the valid prefix is kept, a torn
        tail is truncated — and its fingerprint must match ``context``'s,
        else :class:`~repro.runtime.journal.ResumeMismatchError` reports
        the divergent paths and nothing is touched.
        """
        path = Path(checkpoint.path)
        fingerprint = run_fingerprint(context)
        journal = RunJournal(path)
        if not path.exists() or path.stat().st_size == 0:
            header = JournalHeader(fingerprint=fingerprint, context=context)
            journal.create(header)
            return cls(journal, header, [], chaos=checkpoint.chaos)
        header, records, error = RunJournal.recover(path)
        if header.fingerprint != fingerprint:
            diff = context_diff(header.context, context)
            raise ResumeMismatchError(path, diff or ["$.fingerprint: differs"])
        valid_bytes = (
            error.recovered_bytes if error is not None else path.stat().st_size
        )
        journal.reopen(valid_bytes)
        return cls(journal, header, records, chaos=checkpoint.chaos)

    # -- per-batch bookkeeping -------------------------------------------

    def mark(self, stats: object, obs: object | None) -> dict:
        """Watermark the mutable accumulators before one batch runs."""
        return {
            "prompt_tokens": stats.usage.prompt_tokens,
            "completion_tokens": stats.usage.completion_tokens,
            "n_requests": stats.n_requests,
            "n_retries": stats.n_retries,
            "n_fallbacks": stats.n_fallbacks,
            "n_exchanges": len(stats.exchanges),
            "n_spans": obs.tracer.n_spans if obs is not None else 0,
        }

    def append_batch(
        self,
        *,
        seq: int,
        key: str,
        predictions: list,
        quarantine: list[dict],
        watermark: dict,
        stats: object,
        executor: object,
        client: object,
        obs: object | None,
    ) -> BatchRecord:
        """Journal one completed batch (durably) and return its record."""
        usage = stats.usage
        cost = {
            "prompt_tokens": usage.prompt_tokens - watermark["prompt_tokens"],
            "completion_tokens": (
                usage.completion_tokens - watermark["completion_tokens"]
            ),
            "n_requests": stats.n_requests - watermark["n_requests"],
        }
        outcome = {
            "n_format_retries": stats.n_retries - watermark["n_retries"],
            "n_fallbacks": stats.n_fallbacks - watermark["n_fallbacks"],
            "n_quarantined": len(quarantine),
        }
        clock = {"makespan_s": executor.clock.makespan}
        spans = []
        raw = []
        if obs is not None:
            spans = [
                span.to_dict()
                for span in obs.tracer.spans[watermark["n_spans"]:]
            ]
        if stats.keep_raw:
            raw = [
                {
                    "messages": [[role, content] for role, content in ex.messages],
                    "reply": ex.reply,
                    "n_expected": ex.n_expected,
                }
                for ex in stats.exchanges[watermark["n_exchanges"]:]
            ]
        state = {
            "executor": executor.checkpoint_state(),
            "client": capture_client_state(client),
            "stats": {
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "n_requests": stats.n_requests,
                "n_retries": stats.n_retries,
                "n_fallbacks": stats.n_fallbacks,
            },
            "obs": (
                {
                    "next_id": obs.tracer.n_spans + 1,
                    "metrics": obs.metrics.snapshot(),
                }
                if obs is not None
                else None
            ),
        }
        record = BatchRecord(
            seq=seq,
            key=key,
            predictions=predictions,
            quarantine=quarantine,
            outcome=outcome,
            cost=cost,
            clock=clock,
            spans=spans,
            raw=raw,
            state=state,
        )
        crash = None
        if self._chaos is not None and self._chaos.at_seq == seq:
            crash = self._chaos.site
        self._journal.append(record, crash=crash)
        self.records.append(record)
        return record

    def close(self) -> None:
        self._journal.close()
