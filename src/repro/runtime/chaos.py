"""Chaos drills: kill a run at every interesting point, resume, compare.

The run-durability contract is a *property*: for every crash site —
mid-batch (the completion call dies), pre-journal (the process dies after
a batch completed but before its record was written), mid-journal-append
(the process dies halfway through the fsync'd write, leaving a torn tail
line) — resuming from the journal must produce a final result
**bit-identical** to an uninterrupted run: same predictions, same
quarantine, same token accounting, same virtual-clock makespan, same
metrics snapshot, same span trace, same manifest.

:func:`run_crash_trial` drives one (cell, site) experiment end to end:
baseline run → crashed run → resumed run → canonical-payload diff.
:func:`run_crash_matrix` sweeps the default cell grid (all four tasks at
concurrency 1 and 2) across every site — the CI chaos job — and writes a
``CHAOS_DIFF.txt`` artifact plus the offending journal when a trial
diverges.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import canonical_json
from repro.runtime.checkpoint import JournalChaos, RunCheckpoint

#: every point the chaos suite kills a run at
CRASH_SITES: tuple[str, ...] = ("mid_batch", "pre_journal", "mid_journal")

#: where the CI chaos job's drift report is written
CHAOS_DIFF_ENV = "REPRO_CHAOS_DIFF_PATH"


@dataclass(frozen=True)
class ChaosCell:
    """One (task, config) point the crash matrix drills."""

    name: str
    dataset: str
    size: int
    model: str = "gpt-3.5"
    seed: int = 0
    batching: str = "random"
    concurrency: int = 1
    degradation: str = "off"

    def config(self):
        from repro.core.config import PipelineConfig

        return PipelineConfig(
            model=self.model,
            seed=self.seed,
            batching=self.batching,
            concurrency=self.concurrency,
            observability=True,
            degradation=self.degradation,
        )


def default_chaos_cells() -> tuple[ChaosCell, ...]:
    """The CI matrix: all four tasks, sequential and concurrent."""
    bases = (
        ("ed_adult", "adult", 24),
        ("di_restaurant", "restaurant", 18),
        ("sm_synthea", "synthea", 24),
        ("em_beer", "beer", 24),
    )
    return tuple(
        ChaosCell(
            f"{name}_c{concurrency}",
            dataset=dataset,
            size=size,
            concurrency=concurrency,
        )
        for name, dataset, size in bases
        for concurrency in (1, 2)
    )


@dataclass(frozen=True)
class ChaosTrial:
    """The outcome of one crash→resume experiment."""

    cell: str
    site: str
    crashed: bool
    identical: bool
    n_batches_journaled: int
    diffs: list[str] = field(default_factory=list)
    journal: str = ""

    @property
    def ok(self) -> bool:
        return self.crashed and self.identical

    def render(self) -> str:
        if self.ok:
            return (
                f"chaos {self.cell} @ {self.site}: OK "
                f"({self.n_batches_journaled} batch(es) survived the crash)"
            )
        shown = "\n  ".join(self.diffs[:10])
        more = "" if len(self.diffs) <= 10 else f"\n  … {len(self.diffs) - 10} more"
        return (
            f"chaos {self.cell} @ {self.site}: FAIL "
            f"(crashed={self.crashed}, {len(self.diffs)} divergent path(s))\n"
            f"  {shown}{more}\n"
            f"  journal: {self.journal}"
        )


def result_payload(run) -> dict:
    """Everything a resumed run must reproduce, as canonical plain data.

    Covers predictions, quarantine, coverage, token/request accounting,
    the virtual-clock estimate, the kept raw replies, and the full run
    manifest (config, evaluation scores, metrics snapshot, execution
    report, span trace).  Deliberately excludes ``PipelineResult.prep`` —
    its wall-clock kernel timings differ between any two runs, crashed or
    not.
    """
    result = run.result
    payload = {
        "predictions": result.predictions,
        "quarantine": [
            {"index": q.index, "reason": q.reason, "detail": q.detail}
            for q in result.quarantine
        ],
        "coverage": result.coverage,
        "usage": {
            "prompt_tokens": result.usage.prompt_tokens,
            "completion_tokens": result.usage.completion_tokens,
        },
        "n_requests": result.n_requests,
        "n_format_retries": result.n_format_retries,
        "n_fallbacks": result.n_fallbacks,
        "estimated_seconds": result.estimated_seconds,
        "raw_replies": result.raw_replies,
        "manifest": run.manifest.to_dict() if run.manifest is not None else None,
    }
    return json.loads(canonical_json(payload))


def run_crash_trial(cell: ChaosCell, site: str, workdir: str | Path) -> ChaosTrial:
    """Crash one cell at ``site``, resume it, and compare bit for bit."""
    # Imported lazily so the runtime package stays importable without the
    # dataset/LLM/eval stack (mirrors repro.testing.golden).
    from repro.datasets import load_dataset
    from repro.errors import InjectedCrashError, LLMError
    from repro.eval.harness import evaluate_pipeline
    from repro.llm.faults import Fault, FaultInjectingClient
    from repro.llm.simulated import SimulatedLLM
    from repro.runtime.journal import RunJournal
    from repro.testing.golden import diff_payloads

    if site not in CRASH_SITES:
        raise LLMError(
            f"unknown crash site {site!r}; expected one of {CRASH_SITES}"
        )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    dataset = load_dataset(cell.dataset, size=cell.size, seed=cell.seed)
    config = cell.config()

    def fresh_client(plan=None):
        return FaultInjectingClient(
            SimulatedLLM(cell.model, seed=cell.seed), plan=plan or {}
        )

    # 1. Baseline: the uninterrupted run every crash must reproduce.  It
    # journals too, which tells us how many batches the run has.
    baseline_journal = workdir / f"{cell.name}.baseline.journal"
    baseline_journal.unlink(missing_ok=True)
    baseline = evaluate_pipeline(
        fresh_client(), config, dataset, keep_raw=True,
        checkpoint=RunCheckpoint(baseline_journal),
    )
    __, baseline_records = RunJournal.load(baseline_journal)
    n_batches = len(baseline_records)
    n_calls = baseline.result.n_requests

    # 2. Crash roughly mid-run at the requested site.
    crash_journal = workdir / f"{cell.name}.{site}.journal"
    crash_journal.unlink(missing_ok=True)
    if site == "mid_batch":
        at_call = max(1, n_calls // 2)
        crash_client = fresh_client(
            {at_call: Fault(kind="crash", message=f"chaos at call {at_call}")}
        )
        checkpoint = RunCheckpoint(crash_journal)
    else:
        crash_client = fresh_client()
        checkpoint = RunCheckpoint(
            crash_journal,
            chaos=JournalChaos(site=site, at_seq=n_batches // 2),
        )
    crashed = False
    try:
        evaluate_pipeline(
            crash_client, config, dataset, keep_raw=True,
            checkpoint=checkpoint,
        )
    except InjectedCrashError:
        crashed = True

    __, crash_records, __ = RunJournal.recover(crash_journal)

    # 3. Resume from whatever the crash left on disk, then compare.
    resumed = evaluate_pipeline(
        fresh_client(), config, dataset, keep_raw=True,
        checkpoint=RunCheckpoint(crash_journal),
    )
    diffs = diff_payloads(result_payload(baseline), result_payload(resumed))
    rendered = [diff.render() for diff in diffs]
    if not crashed:
        rendered.insert(0, "the injected crash never fired")
    return ChaosTrial(
        cell=cell.name,
        site=site,
        crashed=crashed,
        identical=not diffs,
        n_batches_journaled=len(crash_records),
        diffs=rendered,
        journal=str(crash_journal),
    )


def run_crash_matrix(
    cells: tuple[ChaosCell, ...] | None = None,
    sites: tuple[str, ...] | None = None,
    workdir: str | Path = ".chaos",
    artifact: str | Path | None = None,
) -> list[ChaosTrial]:
    """The full crash-site sweep (the CI chaos job).

    Runs every (cell, site) pair and, on any failure, appends the drift
    report to the ``CHAOS_DIFF.txt`` artifact (path overridable via
    ``REPRO_CHAOS_DIFF_PATH``); the offending journal stays in
    ``workdir`` for upload.
    """
    from repro.testing.golden import write_diff_artifact

    trials: list[ChaosTrial] = []
    artifact_path = (
        artifact
        if artifact is not None
        else os.environ.get(CHAOS_DIFF_ENV, "CHAOS_DIFF.txt")
    )
    for cell in cells or default_chaos_cells():
        for site in sites or CRASH_SITES:
            trial = run_crash_trial(cell, site, workdir)
            trials.append(trial)
            if not trial.ok:
                write_diff_artifact(trial.render(), path=artifact_path)
    return trials
