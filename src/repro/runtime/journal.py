"""The write-ahead run journal: one fsync'd record per completed batch.

Format — a plain-text file of newline-terminated JSON lines:

- line 1 is the **sealed header**: journal version plus the run
  *fingerprint* (a digest over the full run context — pipeline and
  executor configuration, model profile, dataset identity and content
  digest, client class) and the context itself, so a journal can never be
  replayed into a run it does not describe;
- every following line is one **batch record**: the batch key, the
  predictions and quarantine entries it produced, its cost/clock deltas,
  the raw exchanges (when kept), the spans it traced, and a cumulative
  *state blob* (executor, client, stats, observability) that lets resume
  restore the run mid-flight.

Every line carries a ``check`` field — a digest of the rest of the line —
and records carry a strictly increasing ``seq``.  Appends are atomic at
the line level and fsync'd, so after a crash the file is a valid prefix
plus at most one torn tail line.

Corruption handling is *typed and recoverable*: a truncated tail, a
flipped byte, a duplicated record, or an out-of-order record each raise
:class:`JournalError` naming the line and reason, while the error object
carries every valid record before the damage — resume uses that prefix
and truncates the tail, so completed work survives even a corrupted
journal.  A header whose fingerprint does not match the run being resumed
raises :class:`ResumeMismatchError` with a structured path-level diff of
the two contexts.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.obs.manifest import canonical_json

JOURNAL_VERSION = 1

_CHECK_FIELD = "check"


class JournalError(ReproError):
    """A journal is damaged; everything before the damage is recoverable.

    ``header`` and ``records`` hold the valid prefix (``header`` is
    ``None`` when the header line itself is unreadable), ``line_no`` is
    the 1-based line of the first damage, and ``recovered_bytes`` is the
    byte length of the valid prefix — truncating the file to it yields a
    clean journal again.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | Path | None = None,
        line_no: int | None = None,
        header: "JournalHeader | None" = None,
        records: "list[BatchRecord] | None" = None,
        recovered_bytes: int = 0,
    ):
        self.path = Path(path) if path is not None else None
        self.line_no = line_no
        self.header = header
        self.records = list(records or [])
        self.recovered_bytes = recovered_bytes
        location = ""
        if path is not None:
            location = f" in {path}"
            if line_no is not None:
                location += f" at line {line_no}"
        recoverable = (
            f" ({len(self.records)} valid record(s) recoverable)"
            if records is not None
            else ""
        )
        super().__init__(f"{message}{location}{recoverable}")


class ResumeMismatchError(JournalError):
    """A journal belongs to a different run than the one resuming from it.

    ``diff`` lists the divergent context paths, one ``path: journal !=
    current`` line each, so the operator sees exactly which knob changed.
    """

    def __init__(self, path: str | Path, diff: list[str]):
        self.diff = list(diff)
        shown = "\n  ".join(self.diff[:12])
        more = "" if len(self.diff) <= 12 else f"\n  … {len(self.diff) - 12} more"
        super().__init__(
            f"cannot resume: journal fingerprint does not match this run; "
            f"divergent context:\n  {shown}{more}",
            path=path,
        )


def _line_check(payload: dict) -> str:
    """Digest of one journal line's payload (sans the check field)."""
    body = {key: value for key, value in payload.items() if key != _CHECK_FIELD}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()[:16]


def _dump_line(payload: dict) -> bytes:
    """One sealed, newline-terminated journal line."""
    sealed = dict(payload)
    sealed[_CHECK_FIELD] = _line_check(payload)
    return (
        json.dumps(sealed, sort_keys=True, separators=(",", ":"),
                   ensure_ascii=True) + "\n"
    ).encode("utf-8")


def run_fingerprint(context: dict) -> str:
    """The run fingerprint a journal header is sealed to.

    A digest over the canonical JSON of the full run context; any change —
    one config field, one instance of the dataset, a different client
    class — yields a different fingerprint and resume refuses.
    """
    return hashlib.sha256(canonical_json(context).encode("utf-8")).hexdigest()[:32]


def context_diff(expected: object, actual: object, path: str = "$") -> list[str]:
    """Path-level differences between two JSON-able context payloads."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        diffs: list[str] = []
        for key in sorted(expected.keys() | actual.keys()):
            sub = f"{path}.{key}"
            if key not in actual:
                diffs.append(f"{sub}: {expected[key]!r} != <absent>")
            elif key not in expected:
                diffs.append(f"{sub}: <absent> != {actual[key]!r}")
            else:
                diffs.extend(context_diff(expected[key], actual[key], sub))
        return diffs
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [f"{path}: {len(expected)} item(s) != {len(actual)} item(s)"]
        diffs = []
        for index, (a, b) in enumerate(zip(expected, actual)):
            diffs.extend(context_diff(a, b, f"{path}[{index}]"))
        return diffs
    if expected != actual:
        return [f"{path}: {expected!r} != {actual!r}"]
    return []


@dataclass(frozen=True)
class JournalHeader:
    """The sealed first line binding a journal to one exact run."""

    fingerprint: str
    context: dict
    journal_version: int = JOURNAL_VERSION

    def to_payload(self) -> dict:
        return {
            "kind": "header",
            "journal_version": self.journal_version,
            "fingerprint": self.fingerprint,
            "context": self.context,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalHeader":
        return cls(
            fingerprint=payload["fingerprint"],
            context=payload.get("context", {}),
            journal_version=payload["journal_version"],
        )


@dataclass(frozen=True)
class BatchRecord:
    """One completed batch, as journaled.

    ``predictions`` aligns with the batch unit's instance indices;
    ``quarantine`` holds this batch's quarantined instances (global index,
    typed reason, detail); ``cost`` and ``clock`` are the human-auditable
    deltas; ``spans`` are the trace spans this batch created; ``raw``
    carries the kept exchanges (``keep_raw`` runs only); ``state`` is the
    cumulative run state after this batch — the part resume restores.
    """

    seq: int
    key: str
    predictions: list
    quarantine: list = field(default_factory=list)
    outcome: dict = field(default_factory=dict)
    cost: dict = field(default_factory=dict)
    clock: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    raw: list = field(default_factory=list)
    state: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "kind": "batch",
            "seq": self.seq,
            "key": self.key,
            "predictions": self.predictions,
            "quarantine": self.quarantine,
            "outcome": self.outcome,
            "cost": self.cost,
            "clock": self.clock,
            "spans": self.spans,
            "raw": self.raw,
            "state": self.state,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BatchRecord":
        return cls(
            seq=payload["seq"],
            key=payload["key"],
            predictions=payload["predictions"],
            quarantine=payload.get("quarantine", []),
            outcome=payload.get("outcome", {}),
            cost=payload.get("cost", {}),
            clock=payload.get("clock", {}),
            spans=payload.get("spans", []),
            raw=payload.get("raw", []),
            state=payload.get("state", {}),
        )


class RunJournal:
    """Appends and reads one run's write-ahead journal file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    # -- writing ----------------------------------------------------------

    def create(self, header: JournalHeader) -> None:
        """Start a fresh journal with a sealed header (truncates)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "wb")
        self._write(_dump_line(header.to_payload()))

    def reopen(self, valid_bytes: int) -> None:
        """Reopen an existing journal for appending, truncating any torn
        tail past ``valid_bytes`` first."""
        self._handle = open(self.path, "r+b")
        self._handle.truncate(valid_bytes)
        self._handle.seek(valid_bytes)

    def append(self, record: BatchRecord, crash: str | None = None) -> None:
        """Durably append one batch record.

        ``crash`` is the chaos hook: ``"pre_journal"`` simulates a kill
        after the batch completed but before anything was written;
        ``"mid_journal"`` writes a torn half-line (fsync'd, so the damage
        is really on disk) before dying.
        """
        if self._handle is None:
            raise JournalError("journal is not open for writing", path=self.path)
        from repro.errors import InjectedCrashError

        if crash == "pre_journal":
            raise InjectedCrashError("pre_journal", f"batch seq={record.seq}")
        line = _dump_line(record.to_payload())
        if crash == "mid_journal":
            self._write(line[: max(1, len(line) // 2)])
            raise InjectedCrashError("mid_journal", f"batch seq={record.seq}")
        self._write(line)

    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> tuple[JournalHeader, "list[BatchRecord]"]:
        """Read a journal strictly; raise :class:`JournalError` on damage.

        The raised error carries the valid prefix (header + records before
        the damage) and the byte length of that prefix, so callers can
        recover completed work from a journal the crash tore.
        """
        source = Path(path)
        try:
            blob = source.read_bytes()
        except FileNotFoundError as exc:
            raise JournalError("journal not found", path=source) from exc
        if not blob:
            raise JournalError("journal is empty", path=source)

        header: JournalHeader | None = None
        records: list[BatchRecord] = []
        offset = 0
        line_no = 0
        seen_keys: set[str] = set()

        def damaged(message: str) -> JournalError:
            return JournalError(
                message,
                path=source,
                line_no=line_no,
                header=header,
                records=records,
                recovered_bytes=offset,
            )

        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            line_no += 1
            if newline < 0:
                raise damaged("truncated tail line (no trailing newline)")
            raw_line = blob[offset:newline]
            try:
                payload = json.loads(raw_line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise damaged("record is not valid JSON") from None
            if not isinstance(payload, dict):
                raise damaged("record is not a JSON object")
            if payload.get(_CHECK_FIELD) != _line_check(payload):
                raise damaged("record checksum mismatch (corrupted bytes)")
            kind = payload.get("kind")
            if header is None:
                if kind != "header":
                    raise damaged("first line is not a journal header")
                if payload.get("journal_version") != JOURNAL_VERSION:
                    raise damaged(
                        f"unsupported journal version "
                        f"{payload.get('journal_version')!r} "
                        f"(this build reads {JOURNAL_VERSION})"
                    )
                header = JournalHeader.from_payload(payload)
            else:
                if kind != "batch":
                    raise damaged(f"unexpected record kind {kind!r}")
                record = BatchRecord.from_payload(payload)
                if record.key in seen_keys:
                    raise damaged(
                        f"duplicated batch record (key {record.key!r})"
                    )
                if record.seq != len(records):
                    raise damaged(
                        f"out-of-order batch record "
                        f"(seq {record.seq}, expected {len(records)})"
                    )
                seen_keys.add(record.key)
                records.append(record)
            offset = newline + 1

        assert header is not None  # the empty case returned above
        return header, records

    @classmethod
    def recover(
        cls, path: str | Path
    ) -> tuple[JournalHeader, "list[BatchRecord]", JournalError | None]:
        """Read a journal, salvaging the valid prefix of a damaged one.

        Returns ``(header, records, error)`` where ``error`` is the
        :class:`JournalError` that strict loading raised (``None`` for a
        clean journal).  A journal whose *header* is unreadable cannot be
        recovered at all and re-raises.
        """
        try:
            header, records = cls.load(path)
            return header, records, None
        except JournalError as error:
            if error.header is None:
                raise
            return error.header, error.records, error
