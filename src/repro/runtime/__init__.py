"""Run durability: crash-safe journaling, resume, and chaos drills.

A long preprocessing run issues hundreds of completion calls; this package
makes such runs *restartable*:

- :mod:`repro.runtime.journal` — a write-ahead journal of completed
  batches: one fsync'd canonical-JSON record per batch, sealed to the
  run's configuration fingerprint, with per-record checksums so any
  corruption is detected and everything before it remains recoverable;
- :mod:`repro.runtime.checkpoint` — the checkpoint session the pipeline
  threads through a run: opens/resumes a journal, verifies fingerprints,
  captures and restores the full mutable state (executor lanes, RNG,
  rate-limit window, client call counter, metrics, spans) so a resumed
  run is bit-identical to an uninterrupted one;
- :mod:`repro.runtime.chaos` — crash-point injection (mid-batch,
  pre-journal, mid-journal-append) and the crash→resume trial driver the
  determinism property suite and the CI chaos matrix run on.
"""

from repro.runtime.chaos import (
    CRASH_SITES,
    ChaosCell,
    ChaosTrial,
    JournalChaos,
    default_chaos_cells,
    result_payload,
    run_crash_matrix,
    run_crash_trial,
)
from repro.runtime.checkpoint import CheckpointSession, RunCheckpoint
from repro.runtime.journal import (
    JOURNAL_VERSION,
    BatchRecord,
    JournalError,
    JournalHeader,
    ResumeMismatchError,
    RunJournal,
    run_fingerprint,
)

__all__ = [
    "JOURNAL_VERSION",
    "BatchRecord",
    "ChaosCell",
    "ChaosTrial",
    "CheckpointSession",
    "CRASH_SITES",
    "JournalChaos",
    "JournalError",
    "JournalHeader",
    "ResumeMismatchError",
    "RunCheckpoint",
    "RunJournal",
    "default_chaos_cells",
    "result_payload",
    "run_crash_matrix",
    "run_crash_trial",
    "run_fingerprint",
]
