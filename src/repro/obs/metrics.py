"""A small in-process metrics registry: counters, gauges, histograms.

Modeled on the Prometheus client surface but fully deterministic and
allocation-light: metrics are created lazily by name, histograms use
*fixed* bucket bounds chosen at creation (no adaptive resizing, so two
identical runs snapshot identically), and a snapshot is a plain dict that
serializes straight into the run manifest.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ReproError


class MetricsError(ReproError):
    """A metric was registered or used inconsistently."""


#: default histogram bounds (seconds-ish scale, powers of two)
DEFAULT_BUCKETS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that can move both ways."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets plus sum/count).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n_observations: int = 0

    def __post_init__(self) -> None:
        if not self.bounds:
            raise MetricsError(f"histogram {self.name!r} needs at least one bucket")
        if list(self.bounds) != sorted(self.bounds):
            raise MetricsError(f"histogram {self.name!r} bounds must be sorted")
        if len(set(self.bounds)) != len(self.bounds):
            raise MetricsError(f"histogram {self.name!r} bounds must be distinct")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.n_observations += 1

    @property
    def mean(self) -> float:
        return self.total / self.n_observations if self.n_observations else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 <= q <= 1).

        Walks the cumulative bucket counts to the bucket holding the
        q-th observation and interpolates linearly within it (the
        Prometheus ``histogram_quantile`` estimator).  Observations in
        the overflow bucket report the last finite bound — a floor, not
        an exact value.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.n_observations == 0:
            return 0.0
        rank = q * self.n_observations
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                within = (rank - cumulative) / count
                return lower + (upper - lower) * min(max(within, 0.0), 1.0)
            cumulative += count
        return self.bounds[-1]


class MetricsRegistry:
    """Lazily creates metrics by name and snapshots them as plain data.

    One name maps to exactly one metric kind; asking for an existing name
    with a different kind (or different histogram bounds) raises
    :class:`MetricsError` rather than silently splitting the series.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        self._check_kind(name, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_kind(name, "gauge")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        self._check_kind(name, "histogram")
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.bounds != tuple(buckets):
                raise MetricsError(
                    f"histogram {name!r} already registered with bounds "
                    f"{existing.bounds}, got {tuple(buckets)}"
                )
            return existing
        histogram = Histogram(name, bounds=tuple(buckets))
        self._histograms[name] = histogram
        return histogram

    def _check_kind(self, name: str, kind: str) -> None:
        kinds = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in kinds.items():
            if other_kind != kind and name in table:
                raise MetricsError(
                    f"metric {name!r} is already a {other_kind}, not a {kind}"
                )

    def restore(self, snapshot: dict) -> None:
        """Replace every metric with the contents of a :meth:`snapshot`.

        The snapshot format is full-fidelity (histograms carry bounds,
        per-bucket counts, sum, and count), so ``restore(snapshot())``
        round-trips exactly; crash-resume uses this to rebuild the metrics
        registry a run had accumulated before it was interrupted.  The
        registry is mutated in place, keeping bound references (the rate
        limiter, cache, prep artifacts) valid.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = Counter(name, value=float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self._gauges[name] = Gauge(name, value=float(value))
        for name, data in snapshot.get("histograms", {}).items():
            self._histograms[name] = Histogram(
                name,
                bounds=tuple(data["bounds"]),
                counts=[int(c) for c in data["counts"]],
                total=float(data["sum"]),
                n_observations=int(data["count"]),
            )

    def snapshot(self) -> dict:
        """All metrics as a JSON-ready dict, keys sorted for determinism."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "sum": histogram.total,
                    "count": histogram.n_observations,
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }
