"""Run manifests: one JSON artifact describing an entire evaluation run.

A manifest is the run's provenance record — the configuration, the model
profile it ran against, the dataset identity, the scored result, the
metrics snapshot, the execution report, and the full span trace — written
as a single JSON document.  Everything inside is plain data (dicts, lists,
numbers, strings), so ``load(write(m)) == m`` holds exactly and a manifest
written by one version of the code remains readable by the next.

Nothing here reads the wall clock: manifests of deterministic runs are
byte-identical across machines and reruns.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.obs.export import trace_to_json
from repro.obs.tracing import Span

MANIFEST_VERSION = 1


class ManifestError(ReproError):
    """A manifest could not be built, written, or read back."""


def jsonable(value: object) -> object:
    """Recursively convert ``value`` into JSON-native data.

    Dataclasses flatten to dicts, enums to their names, tuples to lists,
    sets to sorted lists; anything else non-native falls back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def canonical_json(value: object) -> str:
    """Render ``value`` as canonical JSON: one byte sequence per payload.

    Keys are sorted, non-native objects are flattened through
    :func:`jsonable`, non-ASCII is escaped, and the text ends with a
    newline — so equal payloads always serialize to identical bytes and a
    stored artifact can be compared to a fresh one with ``==``.  This is
    the byte contract of the golden conformance layer
    (:mod:`repro.testing.golden`).
    """
    return json.dumps(
        jsonable(value), indent=2, sort_keys=True, ensure_ascii=True
    ) + "\n"


@dataclass
class RunManifest:
    """The provenance record of one evaluation run (all plain data)."""

    version: int = MANIFEST_VERSION
    config: dict = field(default_factory=dict)
    model_profile: dict = field(default_factory=dict)
    dataset: dict = field(default_factory=dict)
    evaluation: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    execution: dict | None = None
    trace: dict = field(default_factory=lambda: {"spans": []})

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "config": self.config,
            "model_profile": self.model_profile,
            "dataset": self.dataset,
            "evaluation": self.evaluation,
            "metrics": self.metrics,
            "execution": self.execution,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        try:
            version = payload["version"]
        except (TypeError, KeyError) as exc:
            raise ManifestError("not a run manifest: missing 'version'") from exc
        if version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {version!r} "
                f"(this build reads {MANIFEST_VERSION})"
            )
        return cls(
            version=version,
            config=payload.get("config", {}),
            model_profile=payload.get("model_profile", {}),
            dataset=payload.get("dataset", {}),
            evaluation=payload.get("evaluation", {}),
            metrics=payload.get("metrics", {}),
            execution=payload.get("execution"),
            trace=payload.get("trace", {"spans": []}),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        """Write the manifest as one JSON file; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.dumps() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise ManifestError(f"manifest not found: {source}") from exc
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest {source} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


def build_manifest(
    *,
    config: object,
    model_profile: object,
    dataset_name: str,
    task: object,
    n_instances: int,
    evaluation: dict,
    metrics_snapshot: dict,
    execution: object | None,
    spans: Sequence[Span] = (),
) -> RunManifest:
    """Assemble a :class:`RunManifest` from live run objects.

    Accepts the pipeline's own dataclasses (``PipelineConfig``,
    ``ModelProfile``, ``ExecutionReport``) without importing them — every
    input is flattened through :func:`jsonable`, keeping this module free
    of dependencies on the layers it describes.
    """
    return RunManifest(
        version=MANIFEST_VERSION,
        config=jsonable(config),  # type: ignore[arg-type]
        model_profile=jsonable(model_profile),  # type: ignore[arg-type]
        dataset={
            "name": dataset_name,
            "task": jsonable(task),
            "n_instances": n_instances,
        },
        evaluation=jsonable(evaluation),  # type: ignore[arg-type]
        metrics=jsonable(metrics_snapshot),  # type: ignore[arg-type]
        execution=jsonable(execution) if execution is not None else None,  # type: ignore[arg-type]
        trace=trace_to_json(spans),
    )
