"""Trace exporters: JSON, Chrome ``chrome://tracing``, and a text summary.

Three views of the same span list:

- :func:`trace_to_json` — the lossless form embedded in run manifests;
- :func:`trace_to_chrome` — the Chrome trace-event format (open
  ``chrome://tracing`` or https://ui.perfetto.dev and load the file);
  spans become complete (``"ph": "X"``) events on one track per lane,
  span events become instant (``"ph": "i"``) marks;
- :func:`render_trace_summary` — an aligned text table aggregating spans
  by name, for terminals and CI logs.

All times are virtual seconds from the simulated clock; Chrome expects
microseconds, so the exporter scales by 1e6.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.obs.tracing import Span

#: Chrome trace timestamps are microseconds
_CHROME_US = 1_000_000.0


def trace_to_json(spans: Sequence[Span]) -> dict:
    """The lossless JSON form of a trace (what the manifest embeds)."""
    return {"spans": [span.to_dict() for span in spans]}


def spans_from_json(payload: dict) -> list[Span]:
    """Rebuild :class:`Span` objects from :func:`trace_to_json` output."""
    spans = []
    for item in payload.get("spans", []):
        span = Span(
            span_id=item["span_id"],
            name=item["name"],
            start_s=item["start_s"],
            parent_id=item.get("parent_id"),
            attributes=dict(item.get("attributes", {})),
        )
        if item.get("end_s") is not None:
            span.end(item["end_s"])
        for event in item.get("events", []):
            span.add_event(
                event["name"], event["time_s"], **event.get("attributes", {})
            )
        spans.append(span)
    return spans


def trace_to_chrome(spans: Sequence[Span]) -> dict:
    """Spans as a Chrome trace-event document.

    The lane attribute (set by the executor) becomes the thread id, so
    the timeline shows one swimlane per worker lane; spans without a lane
    render on track 0.
    """
    events: list[dict] = []
    for span in spans:
        tid = span.attributes.get("lane", 0)
        args = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            **{k: v for k, v in span.attributes.items() if k != "lane"},
        }
        events.append({
            "name": span.name,
            "cat": span.name.split(".")[0],
            "ph": "X",
            "ts": span.start_s * _CHROME_US,
            "dur": span.duration_s * _CHROME_US,
            "pid": 0,
            "tid": tid,
            "args": args,
        })
        for event in span.events:
            events.append({
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": event.time_s * _CHROME_US,
                "pid": 0,
                "tid": tid,
                "args": dict(event.attributes),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_trace_summary(spans: Sequence[Span]) -> str:
    """Aggregate spans by name into an aligned text table.

    One row per span name (first-seen order): count, total virtual
    seconds, mean seconds, and how many point events fired inside.
    """
    # Local import: reporting depends on core, which must stay importable
    # without the obs package being instantiated.
    from repro.eval.reporting import render_table

    if not spans:
        return "trace: no spans recorded"
    groups: OrderedDict[str, list[Span]] = OrderedDict()
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    rows = []
    for name, members in groups.items():
        total = sum(span.duration_s for span in members)
        n_events = sum(len(span.events) for span in members)
        rows.append([
            name,
            str(len(members)),
            f"{total:.2f}",
            f"{total / len(members):.3f}",
            str(n_events),
        ])
    wall = max(
        (span.end_s for span in spans if span.end_s is not None), default=0.0
    )
    table = render_table(
        f"Trace — {len(spans)} span(s), {wall:.1f}s virtual wall-clock",
        ["span", "count", "total s", "mean s", "events"],
        rows,
    )
    return table


def render_metrics_summary(snapshot: dict) -> str:
    """Counters and gauges of a metrics snapshot as aligned text."""
    from repro.eval.reporting import render_table

    rows = [
        [name, "counter", f"{value:g}"]
        for name, value in snapshot.get("counters", {}).items()
    ] + [
        [name, "gauge", f"{value:g}"]
        for name, value in snapshot.get("gauges", {}).items()
    ] + [
        [
            name,
            "histogram",
            f"n={data['count']} sum={data['sum']:.2f}",
        ]
        for name, data in snapshot.get("histograms", {}).items()
    ]
    if not rows:
        return "metrics: none recorded"
    return render_table("Metrics", ["name", "kind", "value"], rows)
