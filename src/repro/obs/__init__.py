"""Observability: span tracing, metrics, and run manifests.

The pipeline's cost/latency story (tokens, dollars, hours) is a
*scheduling outcome* of the executor's virtual timeline; this package
makes that timeline visible.  Everything runs on the simulated clock —
spans and metrics carry virtual times, never wall-clock — so enabling
observability changes no prediction and two identical runs produce
byte-identical traces and manifests.

- :mod:`repro.obs.tracing` — ``Tracer``/``Span`` with parent links,
  attributes, and point events;
- :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms;
- :mod:`repro.obs.export` — JSON / Chrome ``chrome://tracing`` / text
  renderings of a trace;
- :mod:`repro.obs.manifest` — the single-JSON provenance record of a run.

Enable it with ``PipelineConfig(observability=True)``; the pipeline then
attaches a :class:`RunObservation` to its result.  When the knob is off
(the default) no tracer or registry is ever constructed and the hot path
pays only a ``None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import (
    render_metrics_summary,
    render_trace_summary,
    spans_from_json,
    trace_to_chrome,
    trace_to_json,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    build_manifest,
    canonical_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.tracing import Span, SpanEvent, Tracer, TracingError

__all__ = [
    "RunObservation",
    "Tracer",
    "Span",
    "SpanEvent",
    "TracingError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "trace_to_json",
    "trace_to_chrome",
    "spans_from_json",
    "render_trace_summary",
    "render_metrics_summary",
    "RunManifest",
    "build_manifest",
    "canonical_json",
    "ManifestError",
    "MANIFEST_VERSION",
]


@dataclass
class RunObservation:
    """The tracer and metrics registry of one observed pipeline run."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def snapshot(self) -> dict:
        """The metrics snapshot (shorthand used by reporting layers)."""
        return self.metrics.snapshot()
