"""Deterministic span tracing over the simulated clock.

A :class:`Span` covers one unit of pipeline work — a batch, a completion
call, a parse — on the *virtual* timeline: its start and end are LaneClock
times, not wall-clock, so two runs of the same configuration produce
byte-identical traces.  Spans nest through explicit parent links (the
executor passes its batch span as the parent of each call span) and carry
attributes plus point-in-time events (a retry, a throttle wait, a breaker
trip).

The :class:`Tracer` hands out monotonically increasing span ids and keeps
every span it started, in start order; exporters
(:mod:`repro.obs.export`) turn the list into JSON or a Chrome trace.
Nothing here reads a real clock — all times come from the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


class TracingError(ReproError):
    """A span was used in a way that cannot produce a coherent trace."""


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (a retry, a wait, a trip)."""

    name: str
    time_s: float
    attributes: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "time_s": self.time_s,
            "attributes": dict(self.attributes),
        }


@dataclass
class Span:
    """One timed unit of work on the virtual timeline."""

    span_id: int
    name: str
    start_s: float
    parent_id: int | None = None
    end_s: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    def set_attribute(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(self, name: str, time_s: float, **attributes: object) -> SpanEvent:
        """Record a point event; events keep their insertion order."""
        event = SpanEvent(name=name, time_s=time_s, attributes=dict(attributes))
        self.events.append(event)
        return event

    def end(self, time_s: float) -> "Span":
        """Close the span at virtual time ``time_s`` (idempotence is an error)."""
        if self.end_s is not None:
            raise TracingError(f"span {self.name!r} (#{self.span_id}) already ended")
        if time_s < self.start_s:
            raise TracingError(
                f"span {self.name!r} cannot end at {time_s:.3f} "
                f"before its start {self.start_s:.3f}"
            )
        self.end_s = time_s
        return self

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Span length; an unfinished span has zero duration."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (journal replay)."""
        return cls(
            span_id=payload["span_id"],
            name=payload["name"],
            start_s=payload["start_s"],
            parent_id=payload.get("parent_id"),
            end_s=payload.get("end_s"),
            attributes=dict(payload.get("attributes", {})),
            events=[
                SpanEvent(
                    name=event["name"],
                    time_s=event["time_s"],
                    attributes=dict(event.get("attributes", {})),
                )
                for event in payload.get("events", [])
            ],
        )


class Tracer:
    """Collects the spans of one run, in deterministic start order.

    Span ids are sequential from 1, so the id stream — and therefore the
    exported trace — depends only on the order spans are started, which
    the executor keeps invariant across concurrency levels.
    """

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._next_id = 1

    def start_span(
        self,
        name: str,
        start_s: float,
        parent: Span | None = None,
        **attributes: object,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            start_s=start_s,
            parent_id=parent.span_id if parent is not None else None,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    @property
    def spans(self) -> list[Span]:
        """Every started span, in start order (including unfinished ones)."""
        return list(self._spans)

    @property
    def n_spans(self) -> int:
        return len(self._spans)

    def finished_spans(self) -> list[Span]:
        return [span for span in self._spans if span.finished]

    def find(self, name: str) -> list[Span]:
        """All spans with this name, in start order."""
        return [span for span in self._spans if span.name == name]

    def children_of(self, parent: Span) -> list[Span]:
        return [span for span in self._spans if span.parent_id == parent.span_id]

    def restore(self, spans: list[Span], next_id: int) -> None:
        """Replace the span list and id counter with checkpointed state.

        Used by crash-resume: spans journaled by the interrupted run are
        re-attached so the resumed trace is indistinguishable from an
        uninterrupted one.  ``next_id`` must leave no id collision ahead.
        """
        if any(span.span_id >= next_id for span in spans):
            raise TracingError(
                f"cannot restore: a span id >= next_id {next_id} would collide"
            )
        self._spans = list(spans)
        self._next_id = next_id
