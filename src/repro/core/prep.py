"""Shared per-run data-prep artifacts: serialize → embed → cluster, once.

The cluster-batching path needs three derived artifacts per instance set —
the serialized prompt texts, their embedding matrix, and k-means cluster
labels.  Before this layer each consumer recomputed them independently
(``make_batches``, ``batch_homogeneity``, and prompt assembly all called
``serialize_instance`` on the same instances).  A :class:`PrepArtifacts`
object owns the whole chain and memoizes every stage:

- **texts** are memoized per instance object (identity-keyed; the
  artifacts object pins the instances it has seen so ids stay unique);
- **embedding matrices** are memoized by ``(dataset fingerprint,
  embedder dim, embedder ngram)`` where the fingerprint is a blake2b
  digest over the serialized texts;
- **cluster labels** are memoized by the matrix key plus ``(k, seed)``.

Determinism: every artifact is a pure function of its cache key, so
reusing a cached value is bitwise-indistinguishable from recomputing it —
which is why threading one artifacts object through a pipeline run cannot
change predictions.  Cache traffic is counted into an optional
:class:`~repro.obs.metrics.MetricsRegistry` (deterministic counts only);
wall-clock kernel timings accumulate on :class:`PrepStats`, *outside* the
metrics registry, so byte-identical runs still snapshot identically.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.contextualize import serialize_instance
from repro.data.instances import Instance
from repro.ml.kmeans import KMeans
from repro.text.embeddings import HashingEmbedder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.metrics import MetricsRegistry


@dataclass
class PrepStats:
    """What one artifacts object computed versus served from cache.

    Counts are deterministic (identical runs produce identical stats);
    the ``*_wall_s`` fields are real elapsed seconds for the benchmark
    report and are deliberately kept out of the metrics registry.
    """

    serialize_hits: int = 0
    serialize_misses: int = 0
    serialize_evictions: int = 0
    embed_hits: int = 0
    embed_misses: int = 0
    embed_texts: int = 0
    cluster_hits: int = 0
    cluster_misses: int = 0
    kmeans_iterations: int = 0
    serialize_wall_s: float = 0.0
    embed_wall_s: float = 0.0
    kmeans_wall_s: float = 0.0

    @property
    def total_hits(self) -> int:
        return self.serialize_hits + self.embed_hits + self.cluster_hits

    @property
    def total_misses(self) -> int:
        return self.serialize_misses + self.embed_misses + self.cluster_misses


class PrepArtifacts:
    """Memoized serialize → embed → cluster chain for one run.

    One artifacts object is created per :meth:`Preprocessor.run` (and may
    be shared by any caller that works over the same instances, e.g.
    ``make_batches`` followed by ``batch_homogeneity``).  All lookups are
    lazy: nothing is serialized, embedded, or clustered until a consumer
    asks for it.
    """

    def __init__(
        self,
        embedder: HashingEmbedder | None = None,
        metrics: "MetricsRegistry | None" = None,
        max_texts: int | None = None,
    ):
        if max_texts is not None and max_texts < 1:
            raise ValueError(f"max_texts must be >= 1, got {max_texts}")
        self.embedder = embedder or HashingEmbedder()
        self._metrics = metrics
        self._max_texts = max_texts
        self.stats = PrepStats()
        # id -> (instance, text); holding the instance pins its id.  With
        # ``max_texts`` set the dict becomes a bounded LRU (insertion /
        # touch order), so a long-lived artifacts object — the serving
        # layer keeps one across runs — cannot grow without bound.
        self._texts: OrderedDict[int, tuple[Instance, str]] = OrderedDict()
        self._matrices: dict[tuple[str, int, int], np.ndarray] = {}
        self._labels: dict[tuple[str, int, int, int, int], np.ndarray] = {}
        self._fingerprints: dict[tuple[int, ...], str] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None and amount:
            self._metrics.counter(name).inc(amount)

    def bind_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Attach (or detach) the registry cache traffic is counted into.

        Crash-resume re-warms the caches by replaying prompt assembly for
        journaled batches with metrics detached (their counts are restored
        from the journal instead), then binds the live registry before the
        first un-journaled batch runs.
        """
        self._metrics = metrics

    # -- serialization ----------------------------------------------------

    def text_of(self, instance: Instance) -> str:
        """The serialized prompt text of ``instance``, memoized."""
        key = id(instance)
        cached = self._texts.get(key)
        if cached is not None:
            self.stats.serialize_hits += 1
            self._count("prep.serialize.hits")
            if self._max_texts is not None:
                self._texts.move_to_end(key)
            return cached[1]
        started = time.perf_counter()
        text = serialize_instance(instance)
        self.stats.serialize_wall_s += time.perf_counter() - started
        self.stats.serialize_misses += 1
        self._count("prep.serialize.misses")
        self._texts[key] = (instance, text)
        if self._max_texts is not None and len(self._texts) > self._max_texts:
            self._texts.popitem(last=False)
            self.stats.serialize_evictions += 1
            self._count("prep.serialize.evictions")
        return text

    def texts(self, instances: Sequence[Instance]) -> list[str]:
        """Serialized texts for ``instances``, each computed at most once."""
        return [self.text_of(instance) for instance in instances]

    # -- fingerprinting ---------------------------------------------------

    def fingerprint(self, instances: Sequence[Instance]) -> str:
        """Content digest of the instance set (order-sensitive).

        Derived from the serialized texts, so two instance sequences that
        render to the same prompts share every downstream artifact.
        """
        # The id-keyed memo is only sound while every seen instance stays
        # pinned (ids stay unique).  A bounded artifacts object evicts —
        # a freed id can be reused by a different instance — so it
        # recomputes the digest from the (still memoized) texts instead.
        id_key: tuple[int, ...] | None = None
        if self._max_texts is None:
            id_key = tuple(id(instance) for instance in instances)
            cached = self._fingerprints.get(id_key)
            if cached is not None:
                return cached
        digest = hashlib.blake2b(digest_size=16)
        for text in self.texts(instances):
            digest.update(text.encode("utf-8"))
            digest.update(b"\x00")
        value = digest.hexdigest()
        if id_key is not None:
            self._fingerprints[id_key] = value
        return value

    # -- embedding --------------------------------------------------------

    def matrix(self, instances: Sequence[Instance]) -> np.ndarray:
        """The ``(n, dim)`` embedding matrix of ``instances``, memoized by
        ``(dataset fingerprint, embedder params)``."""
        key = (self.fingerprint(instances), *self.embedder.params)
        cached = self._matrices.get(key)
        if cached is not None:
            self.stats.embed_hits += 1
            self._count("prep.embed.hits")
            return cached
        started = time.perf_counter()
        matrix = self.embedder.embed_all(self.texts(instances))
        self.stats.embed_wall_s += time.perf_counter() - started
        self.stats.embed_misses += 1
        self.stats.embed_texts += len(instances)
        self._count("prep.embed.misses")
        self._count("prep.embed.texts", len(instances))
        self._matrices[key] = matrix
        return matrix

    # -- clustering -------------------------------------------------------

    def labels(
        self, instances: Sequence[Instance], k: int, seed: int
    ) -> np.ndarray:
        """k-means labels over the instances' embeddings, memoized by
        ``(dataset fingerprint, embedder params, k, seed)``."""
        key = (self.fingerprint(instances), *self.embedder.params, k, seed)
        cached = self._labels.get(key)
        if cached is not None:
            self.stats.cluster_hits += 1
            self._count("prep.cluster.hits")
            return cached
        matrix = self.matrix(instances)
        started = time.perf_counter()
        model = KMeans(k=min(k, matrix.shape[0]), seed=seed).fit(matrix)
        self.stats.kmeans_wall_s += time.perf_counter() - started
        self.stats.cluster_misses += 1
        self.stats.kmeans_iterations += model.n_iter_
        self._count("prep.cluster.misses")
        self._count("prep.kmeans.iterations", model.n_iter_)
        labels = model.labels_
        self._labels[key] = labels
        return labels

    def cluster_members(
        self, instances: Sequence[Instance], k: int, seed: int
    ) -> list[list[int]]:
        """Instance positions grouped by cluster label (non-empty groups,
        ordered by label)."""
        labels = self.labels(instances, k, seed)
        n_groups = int(labels.max()) + 1 if labels.size else 0
        groups: list[list[int]] = [[] for __ in range(n_groups)]
        for position, label in enumerate(labels):
            groups[int(label)].append(position)
        return [group for group in groups if group]
