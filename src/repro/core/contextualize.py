"""Contextualization (paper Section 3.3).

Converts a data instance into the text sequence::

    [x1.name: "x1.value", ..., xn.name: "xn.value"]

Missing values are rendered as ``???`` (unquoted); schema-matching
attributes are rendered with ``name`` and ``description`` fields.  The
inverse operation — parsing the serialization back into attribute/value
pairs — lives here too, because the *simulated* LLM must read the very
same text a real LLM would receive (it gets no side channel).
"""

from __future__ import annotations

import re

from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    Instance,
    SMInstance,
)
from repro.data.records import Record
from repro.data.schema import Attribute
from repro.errors import PromptError

MISSING_TOKEN = "???"


def serialize_record(record: Record) -> str:
    """Render a record as ``[a: "1", b: ???, ...]``."""
    parts = []
    for name, value in record:
        if value is None:
            parts.append(f"{name}: {MISSING_TOKEN}")
        else:
            parts.append(f'{name}: "{value}"')
    return "[" + ", ".join(parts) + "]"


def serialize_attribute(attribute: Attribute) -> str:
    """Render an SM attribute as ``[name: "...", description: "..."]``."""
    return (
        f'[name: "{attribute.name}", description: "{attribute.description}"]'
    )


def serialize_instance(instance: Instance) -> str:
    """Render any task's data instance as the prompt text fragment."""
    if isinstance(instance, (EDInstance, DIInstance)):
        return serialize_record(instance.record)
    if isinstance(instance, EMInstance):
        left = serialize_record(instance.pair.left)
        right = serialize_record(instance.pair.right)
        return f"Record A is {left}. Record B is {right}"
    if isinstance(instance, SMInstance):
        left = serialize_attribute(instance.pair.left)
        right = serialize_attribute(instance.pair.right)
        return f"Attribute A is {left}. Attribute B is {right}"
    raise PromptError(f"cannot serialize instance type {type(instance).__name__}")


# --- the inverse: what the simulated LLM reads ---------------------------

_FIELD_RE = re.compile(
    r'(?P<name>[\w\-. ]+?):\s*(?:"(?P<value>(?:[^"\\]|\\.)*)"|(?P<missing>\?\?\?))'
)


def parse_serialized_record(text: str) -> dict[str, str | None]:
    """Parse ``[a: "1", b: ???]`` back into ``{"a": "1", "b": None}``.

    Tolerant of surrounding text; raises :class:`PromptError` if no fields
    are found — that means the prompt was malformed.
    """
    start = text.find("[")
    end = text.rfind("]")
    if start == -1 or end == -1 or end <= start:
        raise PromptError(f"no [..] record found in: {text[:120]!r}")
    inner = text[start + 1 : end]
    fields: dict[str, str | None] = {}
    for match in _FIELD_RE.finditer(inner):
        name = match.group("name").strip()
        if match.group("missing") is not None:
            fields[name] = None
        else:
            fields[name] = match.group("value")
    if not fields:
        raise PromptError(f"no fields parsed from: {text[:120]!r}")
    return fields


def parse_record_pair(text: str) -> tuple[dict[str, str | None], dict[str, str | None]]:
    """Parse ``Record A is [...]. Record B is [...]`` (or Attribute A/B)."""
    marker_b = None
    for candidate in ("Record B is", "Attribute B is"):
        index = text.find(candidate)
        if index != -1:
            marker_b = index
            break
    if marker_b is None:
        raise PromptError(f"no second record found in: {text[:120]!r}")
    left = parse_serialized_record(text[:marker_b])
    right = parse_serialized_record(text[marker_b:])
    return left, right
