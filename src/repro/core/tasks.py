"""Per-task prompt text: zero-shot instructions, questions, answer formats.

All canonical prompt strings live here so the prompt builder and the
simulated LLM's prompt parser agree on one vocabulary.  The wording follows
the paper's examples (Section 3.1-3.2) as closely as the text allows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    Instance,
    SMInstance,
    Task,
)
from repro.core.contextualize import serialize_instance
from repro.errors import PromptError

#: the paper's role instruction, always the first line of the system prompt
ROLE_INSTRUCTION = "You are a database engineer."

#: ED's target-attribute confirmation (Section 3.1), active with reasoning
ED_CONFIRM_TARGET = (
    "Please confirm the target attribute in your reason for inference."
)


@dataclass(frozen=True)
class TaskText:
    """The task-dependent strings a prompt needs."""

    instruction: str       # zero-shot task specification (ZS-T)
    answer_noun: str       # what the answer line contains
    question_suffix: str   # trailing question after the instance text


#: detailed task guidance, appended to the one-line instruction.  Real
#: deployments spell out the criteria in the prompt; this block is also
#: what makes the instruction overhead realistic for the batch-prompting
#: cost analysis (Table 3's amortization).
_GUIDANCE = {
    Task.ERROR_DETECTION: (
        "Each record is given as a list of attribute-value pairs in the "
        "form [attribute: \"value\", ...]. An error can be a misspelled "
        "word or category, a value that belongs to a different attribute, "
        "a number that is impossible or implausible for the attribute, a "
        "malformed code or phone number, or a value that contradicts "
        "another attribute of the same record. A value that is merely "
        "rare, abbreviated, or unusually formatted is NOT an error if it "
        "is plausible for the attribute. Judge only the target attribute "
        "named above; other attributes are context and may themselves "
        "contain errors that you should ignore. Do not skip any question "
        "and do not merge answers of different questions."
    ),
    Task.DATA_IMPUTATION: (
        "Each record is given as a list of attribute-value pairs in the "
        "form [attribute: \"value\", ...], and the missing cell is marked "
        "with ???. Use every clue the other attributes provide, such as "
        "identifying codes, names, addresses, or phone numbers, and your "
        "own knowledge of the world to infer the missing value. Answer "
        "with the bare value only, without the attribute name, without "
        "quotation marks, and without any extra words. If several values "
        "seem possible, answer with the most likely one rather than "
        "refusing to answer. Do not skip any question and do not merge "
        "answers of different questions."
    ),
    Task.SCHEMA_MATCHING: (
        "Each attribute is given with its name and a natural-language "
        "description. Two attributes refer to the same attribute when "
        "they denote the same real-world concept, even if their names "
        "and descriptions use entirely different words; conversely, two "
        "attributes with very similar names can still denote different "
        "concepts. Base your decision on the meaning of the name and the "
        "description together. Do not skip any question and do not merge "
        "answers of different questions."
    ),
    Task.ENTITY_MATCHING: (
        "Each record is given as a list of attribute-value pairs in the "
        "form [attribute: \"value\", ...]. Two records refer to the same "
        "entity when they describe the same real-world object, even if "
        "the records format, abbreviate, truncate, or omit some values; "
        "conversely, records that look similar may still describe two "
        "different entities, for example two versions or models of the "
        "same product line. Missing values are not evidence either way. "
        "Do not skip any question and do not merge answers of different "
        "questions."
    ),
}


def task_text(task: Task, target_attribute: str | None = None) -> TaskText:
    """Canonical task strings; ED/DI require the target attribute name."""
    if task in (Task.ERROR_DETECTION, Task.DATA_IMPUTATION) and not target_attribute:
        raise PromptError(f"{task.short_name} prompts need a target attribute")
    guidance = _GUIDANCE[task]
    if task is Task.DATA_IMPUTATION:
        return TaskText(
            instruction=(
                f'You are requested to infer the value of the '
                f'"{target_attribute}" attribute based on the values of '
                f"other attributes.\n{guidance}"
            ),
            answer_noun=f'the value of the "{target_attribute}" attribute',
            question_suffix=f"What is the {target_attribute}?",
        )
    if task is Task.ERROR_DETECTION:
        return TaskText(
            instruction=(
                f'You are requested to detect whether there is an error in '
                f'the value of the "{target_attribute}" attribute of each '
                f"record.\n{guidance}"
            ),
            answer_noun='"yes" if there is an error or "no" otherwise',
            question_suffix=(
                f'Is there an error in the "{target_attribute}" attribute?'
            ),
        )
    if task is Task.SCHEMA_MATCHING:
        return TaskText(
            instruction=(
                "You are requested to decide whether two attributes, each "
                "given as (name, description), refer to the same attribute."
                f"\n{guidance}"
            ),
            answer_noun='"yes" if they refer to the same attribute or "no" otherwise',
            question_suffix="Are they the same attribute?",
        )
    if task is Task.ENTITY_MATCHING:
        return TaskText(
            instruction=(
                "You are requested to decide whether two records refer to "
                f"the same entity.\n{guidance}"
            ),
            answer_noun='"yes" if they refer to the same entity or "no" otherwise',
            question_suffix="Are they the same entity?",
        )
    raise PromptError(f"unknown task {task}")


def answer_format_instruction(
    task: Task, reasoning: bool, target_attribute: str | None = None
) -> str:
    """The MUST-answer-format instruction (two lines with reasoning, one
    without) — the paper's chain-of-thought answer contract."""
    text = task_text(task, target_attribute)
    if reasoning:
        return (
            "MUST answer each question in two lines. In the first line, "
            "you give the reason for the inference. In the second line, "
            f"you ONLY give {text.answer_noun}."
        )
    return (
        "MUST answer each question in one line. You ONLY give "
        f"{text.answer_noun}."
    )


def question_text(
    instance: Instance, number: int, serialized: str | None = None
) -> str:
    """One numbered question, e.g. ``Question 3: Record is [...]. What is
    the city?``

    ``serialized`` is an optional precomputed ``serialize_instance``
    rendering of ``instance`` (from a shared
    :class:`~repro.core.prep.PrepArtifacts`), so prompt assembly reuses
    the text the batching layer already produced instead of re-serializing.
    """
    text = serialized if serialized is not None else serialize_instance(instance)
    if isinstance(instance, (EDInstance, DIInstance)):
        body = f"Record is {text}."
    elif isinstance(instance, (EMInstance, SMInstance)):
        body = f"{text}."
    else:
        raise PromptError(f"unknown instance type {type(instance).__name__}")
    suffix = task_text(
        instance.task, getattr(instance, "target_attribute", None)
    ).question_suffix
    return f"Question {number}: {body} {suffix}"


def target_attribute_of(instance: Instance) -> str | None:
    """The ED/DI target attribute, or ``None`` for pair tasks."""
    return getattr(instance, "target_attribute", None)
