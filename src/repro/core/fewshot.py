"""Few-shot prompting (paper Section 3.2).

Few-shot examples condition the LLM on the task's criteria — the error
definition, the means of imputation, the degree of matching.  The paper
renders them as a Users/Assistant conversation in which every answer
carries a plausible hand-written reason; here the reasons are produced by
task-specific templates playing the role of the human labeler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    Instance,
    SMInstance,
)
from repro.core.tasks import question_text
from repro.errors import PromptError


@dataclass(frozen=True)
class RenderedExample:
    """One few-shot example: its question and its (reason, answer) lines."""

    question: str
    reason: str
    answer: str


def example_answer(instance: Instance) -> str:
    """The gold answer text for a few-shot example."""
    if isinstance(instance, DIInstance):
        return instance.true_value
    if isinstance(instance, (EDInstance, SMInstance, EMInstance)):
        return "yes" if instance.label else "no"
    raise PromptError(f"unknown instance type {type(instance).__name__}")


def example_reason(instance: Instance) -> str:
    """A plausible human-style reason for a few-shot example.

    These mirror what the paper's users write by hand (e.g. 'The phone
    number "770" suggests ... Marietta').  The templates reference the
    instance's actual content so the conversation reads naturally.
    """
    if isinstance(instance, DIInstance):
        evidence = [
            f'{name} "{value}"'
            for name, value in instance.record
            if value is not None and name != instance.target_attribute
        ][:2]
        clues = " and ".join(evidence) if evidence else "the other attributes"
        return (
            f"The {clues} suggest that the {instance.target_attribute} "
            f'should be "{instance.true_value}".'
        )
    if isinstance(instance, EDInstance):
        value = instance.record[instance.target_attribute]
        if instance.label:
            return (
                f'The target attribute is "{instance.target_attribute}". '
                f'Its value "{value}" does not look like a valid '
                f"{instance.target_attribute}."
            )
        return (
            f'The target attribute is "{instance.target_attribute}". '
            f'Its value "{value}" is a plausible {instance.target_attribute}.'
        )
    if isinstance(instance, SMInstance):
        left, right = instance.pair.left, instance.pair.right
        if instance.label:
            return (
                f'"{left.name}" and "{right.name}" both describe the same '
                f"underlying concept according to their descriptions."
            )
        return (
            f'"{left.name}" and "{right.name}" describe different concepts '
            f"according to their descriptions."
        )
    if isinstance(instance, EMInstance):
        key = instance.pair.left.schema.attribute_names[0]
        if instance.label:
            return (
                f"The records agree on the identifying fields such as "
                f'"{key}" despite formatting differences.'
            )
        return (
            f'The records disagree on identifying fields such as "{key}".'
        )
    raise PromptError(f"unknown instance type {type(instance).__name__}")


def render_examples(
    examples: list[Instance], reasoning: bool
) -> tuple[str, str]:
    """Render the few-shot block as (user_text, assistant_text).

    With reasoning, each answer takes the paper's two-line form::

        Answer 1: <reason>
        <answer>

    Without reasoning the answer is a single line ``Answer 1: <answer>``.
    """
    if not examples:
        raise PromptError("render_examples called with zero examples")
    questions: list[str] = []
    answers: list[str] = []
    for number, instance in enumerate(examples, start=1):
        questions.append(question_text(instance, number))
        answer = example_answer(instance)
        if reasoning:
            answers.append(f"Answer {number}: {example_reason(instance)}\n{answer}")
        else:
            answers.append(f"Answer {number}: {answer}")
    return "\n".join(questions), "\n".join(answers)
