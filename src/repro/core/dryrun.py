"""Cost estimation without spending: the dry-run planner.

The paper's Table 3 is ultimately a budgeting exercise — how do batch size
and prompt components trade accuracy against dollars and hours?  This
module answers the *before you run it* version of that question: it builds
every prompt the pipeline would send, counts the prompt tokens exactly,
estimates completion tokens from the answer contract (one or two lines per
instance), and prices the total with the model's rate card and latency
model.  No LLM client is involved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.batching import make_batches
from repro.core.config import PipelineConfig
from repro.core.feature_selection import select_features
from repro.core.pipeline import Preprocessor
from repro.core.prep import PrepArtifacts
from repro.core.prompts import PromptBuilder
from repro.core.tasks import target_attribute_of
from repro.data.instances import Instance, PreprocessingDataset
from repro.errors import EvaluationError
from repro.llm.profiles import get_profile
from repro.text.tokenize import count_message_tokens

#: estimated completion tokens per answered instance
_ANSWER_TOKENS = 8
#: extra completion tokens when the two-line reasoning contract is active
_REASON_TOKENS = 18


@dataclass(frozen=True)
class CostEstimate:
    """What a run would cost, before running it."""

    model: str
    n_instances: int
    n_requests: int
    prompt_tokens: int
    completion_tokens: int
    cost_usd: float
    hours: float

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def tokens_per_instance(self) -> float:
        if self.n_instances == 0:
            return 0.0
        return self.total_tokens / self.n_instances

    def __str__(self) -> str:
        return (
            f"{self.model}: {self.n_instances} instances in "
            f"{self.n_requests} requests — {self.total_tokens:,} tokens, "
            f"${self.cost_usd:.2f}, {self.hours:.2f} h"
        )


def estimate_cost(
    dataset: PreprocessingDataset,
    config: PipelineConfig | None = None,
) -> CostEstimate:
    """Estimate tokens/cost/time for running ``config`` over ``dataset``.

    Prompt tokens are exact (the same prompts the pipeline would build are
    counted); completion tokens use the per-instance answer contract; the
    estimate assumes no retries, so real runs with a noisy model can only
    cost more.
    """
    config = config or PipelineConfig()
    profile = get_profile(config.model)
    instances: list[Instance] = list(dataset.instances)
    if not instances:
        raise EvaluationError(f"dataset {dataset.name!r} has no instances")
    if config.feature_selection is not None:
        instances = [
            select_features(inst, config.feature_selection)
            for inst in instances
        ]
    n_shots = config.fewshot_for(dataset.task)
    fewshot = dataset.sample_fewshot(n_shots, seed=config.seed)
    if config.feature_selection is not None:
        fewshot = [
            select_features(inst, config.feature_selection) for inst in fewshot
        ]

    per_answer = _ANSWER_TOKENS + (_REASON_TOKENS if config.reasoning else 0)
    prompt_tokens = 0
    completion_tokens = 0
    n_requests = 0

    prep = PrepArtifacts()
    for group_indices in Preprocessor._group_by_target(instances):
        group = [instances[i] for i in group_indices]
        target = target_attribute_of(group[0])
        builder = PromptBuilder(
            dataset.task, config, target_attribute=target, artifacts=prep
        )
        group_fewshot = Preprocessor._fewshot_for_target(
            fewshot, dataset.task, target
        )
        batches = make_batches(
            group,
            batch_size=config.batch_size_for_model(),
            mode=config.batching,
            seed=config.seed,
            artifacts=prep,
        )
        for batch_positions in batches:
            batch = [group[p] for p in batch_positions]
            prompt = builder.build(batch, fewshot_examples=group_fewshot)
            n_requests += 1
            prompt_tokens += count_message_tokens(
                [(m.role, m.content) for m in prompt.messages]
            )
            completion_tokens += per_answer * len(batch)

    seconds = (
        n_requests * profile.latency.base_s
        + prompt_tokens * profile.latency.per_prompt_token_s
        + completion_tokens * profile.latency.per_completion_token_s
    )
    return CostEstimate(
        model=profile.name,
        n_instances=len(instances),
        n_requests=n_requests,
        prompt_tokens=prompt_tokens,
        completion_tokens=completion_tokens,
        cost_usd=profile.cost_usd(prompt_tokens, completion_tokens),
        hours=seconds / 3600.0,
    )


def compare_batch_sizes(
    dataset: PreprocessingDataset,
    config: PipelineConfig | None = None,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 15),
) -> list[CostEstimate]:
    """Table-3-style planning: the cost curve across batch sizes."""
    from dataclasses import replace

    config = config or PipelineConfig()
    return [
        estimate_cost(dataset, replace(config, batch_size=batch_size))
        for batch_size in batch_sizes
    ]
