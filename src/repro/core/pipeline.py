"""End-to-end preprocessing pipeline (Figure 1 realized).

The :class:`Preprocessor` takes a dataset and an LLM client and produces a
prediction per instance:

1. feature selection (optional),
2. few-shot example selection from the dataset's hand-labeled pool,
3. batching (random or cluster),
4. prompt assembly per batch,
5. the completion call,
6. answer parsing with format-violation retries.

ED and DI prompts name the target attribute in the zero-shot instruction,
so instances are grouped by target attribute and batched within groups.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.batching import make_batches
from repro.core.config import PipelineConfig
from repro.core.contextualize import serialize_instance
from repro.core.executor import BatchExecutor, ExecutionReport, ExecutorConfig
from repro.core.feature_selection import select_features
from repro.core.parsing import parse_batch_answers, parse_batch_answers_lenient
from repro.core.prep import PrepArtifacts, PrepStats
from repro.core.prompts import PromptBuilder
from repro.core.tasks import target_attribute_of
from repro.data.instances import Instance, PreprocessingDataset, Task
from repro.errors import (
    AnswerFormatError,
    ContextWindowExceededError,
    EvaluationError,
    ExecutionGiveUpError,
)
from repro.llm.accounting import request_prompt_tokens
from repro.llm.base import CompletionRequest, LLMClient, Usage
from repro.llm.profiles import get_profile
from repro.obs import RunObservation
from repro.obs.manifest import canonical_json, jsonable
from repro.obs.tracing import Span

if TYPE_CHECKING:  # pragma: no cover - avoid importing runtime eagerly
    from repro.runtime.checkpoint import RunCheckpoint

#: the paper's temperature settings (Section 4.1)
DEFAULT_TEMPERATURE = {
    "gpt-3.5": 0.75,
    "gpt-4": 0.65,
    "gpt-3": 0.75,
    "vicuna-13b": 0.2,
}


def default_temperature_for(model: str) -> float:
    """The paper's sampling temperature for ``model``, validated loudly.

    The model name is resolved against the registered profiles
    (:mod:`repro.llm.profiles`), so a typo or an unregistered model raises
    :class:`~repro.errors.UnknownModelError` instead of silently running
    the whole experiment at a generic temperature.
    """
    profile = get_profile(model)
    return DEFAULT_TEMPERATURE.get(profile.name, profile.default_temperature)


@dataclass(frozen=True)
class Exchange:
    """One completed completion call, as recorded for conformance replay.

    Carries the exact prompt messages (role/content pairs), the raw model
    reply, and how many answers the parser was asked to extract — enough
    for :mod:`repro.testing.replay` to re-run the parsing stack against
    the recorded reply without touching the pipeline.
    """

    messages: tuple[tuple[str, str], ...]
    reply: str
    n_expected: int


@dataclass(frozen=True)
class QuarantinedInstance:
    """One instance the run could not answer, with a typed reason.

    ``index`` is the instance's position in the run's prediction list;
    ``reason`` is one of ``"malformed_reply"`` (the model's answer never
    parsed, even per-instance), ``"retry_exhausted"`` (the executor's
    retry budget ran out on a single-instance prompt), or
    ``"context_window"`` (the instance does not fit the model's window
    even zero-shot).  Its prediction slot holds ``None``.
    """

    index: int
    reason: str
    detail: str = ""


class Quarantined:
    """In-flight marker for an instance the degradation ladder gave up on.

    Flows out of ``_run_batch`` in a prediction slot; ``run`` converts it
    to a ``None`` prediction plus a :class:`QuarantinedInstance` entry.
    """

    __slots__ = ("reason", "detail")

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Quarantined({self.reason!r})"


def _unit_key(seq: int, target: str | None, indices: list[int]) -> str:
    """Structural digest naming one planned batch unit in the journal.

    Binds the batch's position in the plan and the instances it covers;
    content identity is bound separately by the journal header's dataset
    digest, so key equality plus fingerprint equality means "same batch
    of the same data".
    """
    payload = {"seq": seq, "target": target, "indices": list(indices)}
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


@dataclass
class _BatchUnit:
    """One planned batch: everything needed to run it, plus its key."""

    seq: int
    key: str
    builder: PromptBuilder
    fewshot: list[Instance]
    batch: list[Instance]
    indices: list[int]
    target: str | None


@dataclass
class PipelineResult:
    """Everything one run produced.

    ``predictions`` aligns index-for-index with the instances that were
    run.  ``estimated_hours`` is the modeled wall-clock a metered API would
    have taken: the *makespan* of the run's completion calls over the
    configured worker lanes.  At ``concurrency=1`` this reduces to the
    paper's sequential sum (§4.5); ``execution`` carries the full per-lane
    scheduling report.
    """

    predictions: list[bool | str | None]
    usage: Usage
    n_requests: int
    n_format_retries: int
    n_fallbacks: int
    estimated_seconds: float
    #: instances the degradation ladder quarantined (sorted by index);
    #: their prediction slots hold ``None``.  Always empty when
    #: ``config.degradation == "off"``.
    quarantine: list[QuarantinedInstance] = field(default_factory=list)
    raw_replies: list[str] = field(default_factory=list)
    #: prompt/reply/expected-count triples, recorded when ``keep_raw`` is
    #: on; the raw material of golden snapshots and differential replay
    exchanges: list[Exchange] = field(default_factory=list)
    execution: ExecutionReport | None = None
    #: tracer + metrics of the run, present when the config enabled
    #: observability (never affects predictions or accounting)
    observation: RunObservation | None = None
    #: data-prep cache traffic and kernel timings for the run (always
    #: populated; the wall-clock fields never feed back into results)
    prep: PrepStats | None = None

    @property
    def estimated_hours(self) -> float:
        return self.estimated_seconds / 3600.0

    @property
    def total_tokens(self) -> int:
        return self.usage.total_tokens

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)

    @property
    def coverage(self) -> float:
        """Fraction of instances the run actually answered (1.0 = all)."""
        if not self.predictions:
            return 1.0
        return (len(self.predictions) - len(self.quarantine)) / len(
            self.predictions
        )


def _end_span(span: Span | None, time_s: float, **attrs: object) -> None:
    """Close an (optional) span at ``time_s``, attaching final attributes.

    Tolerates ``None`` (observability off) and clamps to the span's start
    so degraded paths that resolve "in the past" still produce a valid
    trace.
    """
    if span is None:
        return
    for key, value in attrs.items():
        span.set_attribute(key, value)
    if not span.finished:
        span.end(max(time_s, span.start_s))


#: placeholder for a prediction slot whose batch has not run yet —
#: ``None`` is a real value now (a quarantined instance), so it cannot
#: double as the "unfilled" marker.
_PENDING = object()


@dataclass
class RunStats:
    """Mutable accumulator threaded through one run's batches.

    ``last_finish_s`` is a high-water mark over the virtual finish times
    of the batches answered so far.  The serving layer resets it before
    each coalesced flush and reads it back as the flush's completion
    time; offline runs ignore it (the execution report's makespan already
    covers them).
    """

    keep_raw: bool = False
    usage: Usage = field(
        default_factory=lambda: Usage(prompt_tokens=0, completion_tokens=0)
    )
    n_requests: int = 0
    n_retries: int = 0
    n_fallbacks: int = 0
    last_finish_s: float = 0.0
    raw_replies: list[str] = field(default_factory=list)
    exchanges: list[Exchange] = field(default_factory=list)


#: historical name, kept for callers that grew up with the private one
_RunStats = RunStats


class Preprocessor:
    """Runs one configured pipeline against datasets.

    Completion calls go through a :class:`BatchExecutor` scheduling them
    over ``config.concurrency`` lanes of simulated time; pass
    ``executor_config`` to tune its fault-tolerance knobs (retry budget,
    timeout, circuit breaker, rate limit).  The executor's ``concurrency``
    and ``seed`` always follow the pipeline config.
    """

    def __init__(
        self,
        client: LLMClient,
        config: PipelineConfig | None = None,
        executor_config: ExecutorConfig | None = None,
    ):
        self._client = client
        self._config = config or PipelineConfig()
        base = executor_config or ExecutorConfig()
        self._executor_config = dataclasses.replace(
            base,
            concurrency=self._config.concurrency,
            seed=self._config.seed,
        )

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def executor_config(self) -> ExecutorConfig:
        return self._executor_config

    def answer_batch(
        self,
        builder: PromptBuilder,
        batch: list[Instance],
        fewshot: list[Instance],
        task: Task,
        stats: RunStats,
        executor: BatchExecutor,
        ready_at: float = 0.0,
        temperature: float | None = None,
        obs: RunObservation | None = None,
        parent: Span | None = None,
    ) -> list[bool | str | Quarantined]:
        """Answer one ad-hoc batch through the full degradation ladder.

        The open-batch entry point :meth:`run` cannot offer: a caller that
        assembles its own batches — the serving layer coalesces requests
        from many tenants into one — hands over a prompt builder, the
        batch, and a long-lived executor/stats pair, and gets back one
        answer per instance (a :class:`Quarantined` marker where the
        ladder gave up).  ``ready_at`` is the virtual time the batch may
        start; the finish time lands on ``stats.last_finish_s``.
        """
        if temperature is None:
            temperature = (
                self._config.temperature
                if self._config.temperature is not None
                else default_temperature_for(self._config.model)
            )
        return self._run_batch(
            builder, batch, fewshot, temperature, task,
            stats, executor, ready_at=ready_at, obs=obs, parent=parent,
        )

    def run(
        self,
        dataset: PreprocessingDataset,
        keep_raw: bool = False,
        checkpoint: "RunCheckpoint | None" = None,
    ) -> PipelineResult:
        """Run the pipeline over every instance of ``dataset``.

        With ``checkpoint`` set, the run journals every completed batch to
        ``checkpoint.path`` (fsync'd, crash-safe) and — when the journal
        already holds records from an interrupted run of the *same*
        configuration and data — resumes: journaled batches are replayed
        from disk, the executor/client/accounting state is restored, and
        only the remaining batches execute.  The resumed result (including
        metrics, spans, and the execution report) is bit-identical to an
        uninterrupted run.  A journal from a different run is refused with
        a structured context diff.
        """
        config = self._config
        instances: list[Instance] = list(dataset.instances)
        if not instances:
            raise EvaluationError(f"dataset {dataset.name!r} has no instances")

        if config.feature_selection is not None:
            instances = [
                select_features(inst, config.feature_selection)
                for inst in instances
            ]

        n_shots = config.fewshot_for(dataset.task)
        fewshot = dataset.sample_fewshot(n_shots, seed=config.seed)
        if config.feature_selection is not None:
            fewshot = [
                select_features(inst, config.feature_selection)
                for inst in fewshot
            ]

        temperature = (
            config.temperature
            if config.temperature is not None
            else default_temperature_for(config.model)
        )

        predictions: list[bool | str | None] = [_PENDING] * len(instances)
        quarantine: list[QuarantinedInstance] = []
        stats = _RunStats(keep_raw=keep_raw)
        obs = RunObservation() if config.observability else None
        run_span: Span | None = None
        cache_binder = getattr(self._client, "bind_metrics", None)
        if obs is not None:
            if callable(cache_binder):
                cache_binder(obs.metrics)
            run_span = obs.tracer.start_span(
                "pipeline.run", 0.0,
                dataset=dataset.name, model=config.model,
                concurrency=config.concurrency, n_instances=len(instances),
            )
        # Cache traffic is surfaced per run: snapshot the client's counters
        # (if it has any) so the report carries this run's delta only.
        cache_hits_before = getattr(self._client, "hits", None)
        cache_misses_before = getattr(self._client, "misses", None)
        executor = BatchExecutor(self._client, self._executor_config, obs=obs)
        # One prep cache per run: serialize/embed/cluster each instance
        # set once, shared by batching and prompt assembly.
        prep = PrepArtifacts(metrics=obs.metrics if obs is not None else None)

        # Plan every batch up front.  Batching is a pure function of the
        # dataset and config (no completion call influences it), so the
        # plan of a resumed run matches the interrupted run batch for
        # batch — which is what makes journal records addressable.
        units = self._plan_units(dataset, instances, fewshot, prep)

        session = None
        start_index = 0
        if checkpoint is not None:
            from repro.runtime.checkpoint import CheckpointSession

            session = CheckpointSession.open(
                checkpoint,
                self._run_context(dataset, instances, fewshot, keep_raw),
            )
            start_index = self._replay_journal(
                session, units, predictions, quarantine,
                stats, executor, obs, run_span, prep,
            )

        try:
            for unit in units[start_index:]:
                watermark = (
                    session.mark(stats, obs) if session is not None else None
                )
                batch_predictions = self._run_batch(
                    unit.builder, unit.batch, unit.fewshot, temperature,
                    dataset.task, stats, executor, ready_at=0.0,
                    obs=obs, parent=run_span,
                )
                unit_quarantine: list[dict] = []
                unit_predictions: list[bool | str | None] = []
                for index, prediction in zip(unit.indices, batch_predictions):
                    if isinstance(prediction, Quarantined):
                        predictions[index] = None
                        unit_predictions.append(None)
                        entry = QuarantinedInstance(
                            index=index,
                            reason=prediction.reason,
                            detail=prediction.detail,
                        )
                        quarantine.append(entry)
                        unit_quarantine.append({
                            "index": index,
                            "reason": prediction.reason,
                            "detail": prediction.detail,
                        })
                        if obs is not None:
                            obs.metrics.counter("pipeline.quarantined").inc()
                    else:
                        predictions[index] = prediction
                        unit_predictions.append(prediction)
                if session is not None:
                    session.append_batch(
                        seq=unit.seq, key=unit.key,
                        predictions=unit_predictions,
                        quarantine=unit_quarantine,
                        watermark=watermark, stats=stats,
                        executor=executor, client=self._client, obs=obs,
                    )
        finally:
            if session is not None:
                session.close()

        assert not any(p is _PENDING for p in predictions)
        quarantine.sort(key=lambda entry: entry.index)
        report = executor.report()
        if isinstance(cache_hits_before, int) and isinstance(cache_misses_before, int):
            report.n_cache_hits = self._client.hits - cache_hits_before
            report.n_cache_misses = self._client.misses - cache_misses_before
        if obs is not None:
            if report.n_cache_hits or report.n_cache_misses:
                obs.metrics.gauge("cache.hit_rate").set(report.cache_hit_rate)
            run_span.end(report.makespan_s)
            if callable(cache_binder):
                cache_binder(None)  # this run's registry must stop counting
        return PipelineResult(
            predictions=predictions,  # type: ignore[arg-type]
            usage=stats.usage,
            n_requests=stats.n_requests,
            n_format_retries=stats.n_retries,
            n_fallbacks=stats.n_fallbacks,
            estimated_seconds=report.makespan_s,
            quarantine=quarantine,
            raw_replies=stats.raw_replies,
            exchanges=stats.exchanges,
            execution=report,
            observation=obs,
            prep=prep.stats,
        )

    def _plan_units(
        self,
        dataset: PreprocessingDataset,
        instances: list[Instance],
        fewshot: list[Instance],
        prep: PrepArtifacts,
    ) -> list[_BatchUnit]:
        """Materialize the full batch plan before any completion call.

        Exactly the grouping/batching the historical per-group loop
        performed, in the same order; hoisting it ahead of execution is
        behavior-neutral because batching never looks at replies, and the
        prep caches are keyed by content (hit/miss totals are insensitive
        to when each group is first touched).
        """
        config = self._config
        units: list[_BatchUnit] = []
        for group_indices in self._group_by_target(instances):
            group = [instances[i] for i in group_indices]
            target = target_attribute_of(group[0])
            builder = PromptBuilder(
                dataset.task, config, target_attribute=target,
                artifacts=prep,
            )
            group_fewshot = self._fewshot_for_target(
                fewshot, dataset.task, target
            )
            batches = make_batches(
                group,
                batch_size=config.batch_size_for_model(),
                mode=config.batching,
                seed=config.seed,
                artifacts=prep,
            )
            for batch_positions in batches:
                indices = [group_indices[p] for p in batch_positions]
                seq = len(units)
                units.append(_BatchUnit(
                    seq=seq,
                    key=_unit_key(seq, target, indices),
                    builder=builder,
                    fewshot=group_fewshot,
                    batch=[group[p] for p in batch_positions],
                    indices=indices,
                    target=target,
                ))
        return units

    def _run_context(
        self,
        dataset: PreprocessingDataset,
        instances: list[Instance],
        fewshot: list[Instance],
        keep_raw: bool,
    ) -> dict:
        """The full identity of this run, as sealed into a journal header.

        Covers the pipeline and executor configuration, the client class,
        and a content digest over every serialized instance and few-shot
        example — so a journal can only ever resume the byte-identical
        run that wrote it.  Serialization goes through
        :func:`serialize_instance` directly (not the prep cache) so
        fingerprinting leaves the run's cache counters untouched.
        """
        digest = hashlib.blake2b(digest_size=16)
        for instance in instances:
            digest.update(serialize_instance(instance).encode("utf-8"))
            digest.update(b"\x00")
        digest.update(b"\x01")
        for example in fewshot:
            digest.update(serialize_instance(example).encode("utf-8"))
            digest.update(b"\x00")
        return {
            "pipeline_config": jsonable(self._config),
            "executor_config": jsonable(self._executor_config),
            "client": type(self._client).__name__,
            "keep_raw": keep_raw,
            "dataset": {
                "name": dataset.name,
                "task": dataset.task.name,
                "n_instances": len(instances),
                "n_fewshot": len(fewshot),
                "digest": digest.hexdigest(),
            },
        }

    def _replay_journal(
        self,
        session: object,
        units: list[_BatchUnit],
        predictions: list,
        quarantine: list[QuarantinedInstance],
        stats: "_RunStats",
        executor: BatchExecutor,
        obs: RunObservation | None,
        run_span: Span | None,
        prep: PrepArtifacts,
    ) -> int:
        """Apply journaled batches and restore run state; returns how many
        planned units were skipped.

        Per-record deltas (predictions, quarantine entries, raw exchanges,
        spans) replay in order; the cumulative state blob of the *last*
        record restores the executor (virtual clock, lanes, RNG, rate
        window), the client, the stats counters, the tracer id stream, and
        the metrics registry.  Prompt assembly re-runs for the skipped
        batches with metrics detached, so the prep caches are as warm as
        the interrupted run left them without counting anything twice.
        """
        from repro.runtime.checkpoint import restore_client_state
        from repro.runtime.journal import JournalError

        records = session.records
        if not records:
            return 0
        if len(records) > len(units):
            raise JournalError(
                f"journal holds {len(records)} batch record(s) but this "
                f"run plans only {len(units)} batch(es)",
                path=session.path,
            )
        replayed_spans: list[Span] = []
        for record, unit in zip(records, units):
            if record.key != unit.key:
                raise JournalError(
                    f"journal batch seq={record.seq} key {record.key!r} "
                    f"does not match the planned batch key {unit.key!r}",
                    path=session.path,
                )
            for index, prediction in zip(unit.indices, record.predictions):
                predictions[index] = prediction
            for entry in record.quarantine:
                quarantine.append(QuarantinedInstance(
                    index=entry["index"],
                    reason=entry["reason"],
                    detail=entry.get("detail", ""),
                ))
            if stats.keep_raw:
                for exchange in record.raw:
                    stats.raw_replies.append(exchange["reply"])
                    stats.exchanges.append(Exchange(
                        messages=tuple(
                            (role, content)
                            for role, content in exchange["messages"]
                        ),
                        reply=exchange["reply"],
                        n_expected=exchange["n_expected"],
                    ))
            if obs is not None:
                replayed_spans.extend(
                    Span.from_dict(payload) for payload in record.spans
                )
        state = records[-1].state
        executor.restore_checkpoint_state(state["executor"])
        restore_client_state(self._client, state.get("client"))
        counters = state["stats"]
        stats.usage = Usage(
            prompt_tokens=counters["prompt_tokens"],
            completion_tokens=counters["completion_tokens"],
        )
        stats.n_requests = counters["n_requests"]
        stats.n_retries = counters["n_retries"]
        stats.n_fallbacks = counters["n_fallbacks"]
        # Warm the prep caches exactly as the interrupted run did, without
        # double-counting: the journaled metrics totals already include
        # these builds, so they re-run detached and the registry is then
        # restored wholesale.
        prep.bind_metrics(None)
        for unit in units[: len(records)]:
            unit.builder.build(unit.batch, fewshot_examples=unit.fewshot)
        if obs is not None:
            obs_state = state.get("obs")
            if obs_state is not None:
                obs.tracer.restore(
                    [run_span] + replayed_spans, obs_state["next_id"]
                )
                obs.metrics.restore(obs_state["metrics"])
        prep.bind_metrics(obs.metrics if obs is not None else None)
        return len(records)

    def _run_batch(
        self,
        builder: PromptBuilder,
        batch: list[Instance],
        fewshot: list[Instance],
        temperature: float,
        task: Task,
        stats: "_RunStats",
        executor: BatchExecutor,
        ready_at: float = 0.0,
        obs: RunObservation | None = None,
        parent: Span | None = None,
    ) -> list[bool | str]:
        """Answer one batch, splitting it when the prompt cannot fit.

        Context-window overflows halve the batch recursively (what any
        production pipeline does when a model's window is tight); a single
        instance that still cannot fit becomes a fallback answer.  When
        the executor's retry budget for a call is exhausted the batch
        degrades the same way — smaller batches first, safe fallback
        answers last.  ``ready_at`` is the virtual time this batch's work
        may start (format retries depend on the reply they re-ask).

        With observability on, the batch becomes a ``pipeline.batch`` span
        whose children mark the phases — contextualize → prompt →
        complete → parse — on the virtual timeline; splits recurse into
        sibling batch spans under the same parent.
        """
        config = self._config
        fallback: bool | str = "" if task is Task.DATA_IMPUTATION else False
        batch_span: Span | None = None
        if obs is not None:
            batch_span = obs.tracer.start_span(
                "pipeline.batch", ready_at, parent=parent,
                n_instances=len(batch), task=task.name,
            )
            obs.metrics.counter("pipeline.batches").inc()
            obs.metrics.histogram(
                "pipeline.batch_size", buckets=(1, 2, 4, 8, 16, 32)
            ).observe(len(batch))
            # Contextualization and prompt assembly consume no modeled
            # latency: they mark the timeline as zero-duration phases.
            _end_span(
                obs.tracer.start_span(
                    "pipeline.contextualize", ready_at, parent=batch_span,
                    n_instances=len(batch), n_fewshot=len(fewshot),
                ),
                ready_at,
            )
        prompt = builder.build(batch, fewshot_examples=fewshot)
        request = CompletionRequest(
            messages=prompt.messages,
            model=config.model,
            temperature=temperature,
        )
        if obs is not None:
            _end_span(
                obs.tracer.start_span(
                    "pipeline.prompt", ready_at, parent=batch_span,
                    n_messages=len(request.messages),
                    prompt_tokens=request_prompt_tokens(request),
                ),
                ready_at,
            )
        attempts = 1 + config.max_format_retries
        last_text = ""
        for attempt in range(attempts):
            complete_span: Span | None = None
            if obs is not None:
                complete_span = obs.tracer.start_span(
                    "pipeline.complete", ready_at, parent=batch_span,
                    attempt=attempt,
                )
            try:
                response, ready_at = executor.call(
                    request, ready_at=ready_at, parent=complete_span
                )
            except ContextWindowExceededError:
                _end_span(complete_span, ready_at, outcome="context_window")
                if len(batch) > 1:
                    _end_span(batch_span, ready_at, outcome="split")
                    if obs is not None:
                        obs.metrics.counter("pipeline.batch_splits").inc()
                    half = len(batch) // 2
                    return self._run_batch(
                        builder, batch[:half], fewshot, temperature, task,
                        stats, executor, ready_at, obs, parent,
                    ) + self._run_batch(
                        builder, batch[half:], fewshot, temperature, task,
                        stats, executor, ready_at, obs, parent,
                    )
                if fewshot:
                    # A single instance that does not fit may still fit
                    # without the demonstration block.
                    _end_span(batch_span, ready_at, outcome="retry_zero_shot")
                    return self._run_batch(
                        builder, batch, [], temperature, task,
                        stats, executor, ready_at, obs, parent,
                    )
                if config.degradation == "ladder":
                    # Bottom of the ladder: nothing fits, nothing guessed.
                    _end_span(batch_span, ready_at, outcome="quarantined")
                    return [Quarantined(
                        "context_window",
                        detail="prompt does not fit even zero-shot",
                    )] * len(batch)
                stats.n_fallbacks += len(batch)
                _end_span(batch_span, ready_at, outcome="fallback")
                if obs is not None:
                    obs.metrics.counter("pipeline.fallbacks").inc(len(batch))
                return [fallback] * len(batch)
            except ExecutionGiveUpError as giveup:
                resume_at = max(ready_at, giveup.at)
                stats.last_finish_s = max(stats.last_finish_s, resume_at)
                _end_span(complete_span, resume_at, outcome="giveup")
                if len(batch) > 1:
                    # Degrade gracefully: a smaller prompt is likelier to
                    # get through a struggling upstream.
                    executor.record_fallback_split(2)
                    _end_span(batch_span, resume_at, outcome="split")
                    if obs is not None:
                        obs.metrics.counter("pipeline.batch_splits").inc()
                    half = len(batch) // 2
                    return self._run_batch(
                        builder, batch[:half], fewshot, temperature, task,
                        stats, executor, resume_at, obs, parent,
                    ) + self._run_batch(
                        builder, batch[half:], fewshot, temperature, task,
                        stats, executor, resume_at, obs, parent,
                    )
                if config.degradation == "ladder":
                    _end_span(batch_span, resume_at, outcome="quarantined")
                    return [Quarantined(
                        "retry_exhausted",
                        detail="completion call exhausted its retry budget",
                    )] * len(batch)
                stats.n_fallbacks += len(batch)
                _end_span(batch_span, resume_at, outcome="fallback")
                if obs is not None:
                    obs.metrics.counter("pipeline.fallbacks").inc(len(batch))
                return [fallback] * len(batch)
            _end_span(complete_span, ready_at, outcome="ok")
            stats.last_finish_s = max(stats.last_finish_s, ready_at)
            stats.n_requests += 1
            stats.usage = stats.usage + response.usage
            last_text = response.text
            if stats.keep_raw:
                stats.raw_replies.append(response.text)
                stats.exchanges.append(Exchange(
                    messages=tuple(
                        (m.role, m.content) for m in request.messages
                    ),
                    reply=response.text,
                    n_expected=len(batch),
                ))
            parse_span: Span | None = None
            if obs is not None:
                parse_span = obs.tracer.start_span(
                    "pipeline.parse", ready_at, parent=batch_span,
                    n_expected=len(batch),
                )
            try:
                answers = parse_batch_answers(response.text, task, len(batch))
            except AnswerFormatError:
                _end_span(parse_span, ready_at, outcome="format_error")
                if attempt < attempts - 1:
                    stats.n_retries += 1
                    if obs is not None:
                        obs.metrics.counter("pipeline.format_retries").inc()
            else:
                _end_span(parse_span, ready_at, outcome="ok")
                _end_span(batch_span, ready_at, outcome="ok")
                return answers
        # Retries exhausted: salvage the parseable answers leniently.
        salvaged = parse_batch_answers_lenient(last_text, task, len(batch))
        if config.degradation == "ladder":
            return self._degrade_unparsed(
                salvaged, builder, batch, fewshot, temperature, task,
                stats, executor, ready_at, obs, parent, batch_span,
            )
        # Historical semantics: fill the safe answer where none parsed.
        results: list[bool | str] = []
        n_salvage_fallbacks = 0
        for answer in salvaged:
            if answer is None:
                stats.n_fallbacks += 1
                n_salvage_fallbacks += 1
                results.append(fallback)
            else:
                results.append(answer)
        _end_span(batch_span, ready_at, outcome="salvaged",
                  n_fallbacks=n_salvage_fallbacks)
        if obs is not None and n_salvage_fallbacks:
            obs.metrics.counter("pipeline.fallbacks").inc(n_salvage_fallbacks)
        return results

    def _degrade_unparsed(
        self,
        salvaged: list,
        builder: PromptBuilder,
        batch: list[Instance],
        fewshot: list[Instance],
        temperature: float,
        task: Task,
        stats: "_RunStats",
        executor: BatchExecutor,
        ready_at: float,
        obs: RunObservation | None,
        parent: Span | None,
        batch_span: Span | None,
    ) -> list:
        """The lower rungs of the degradation ladder.

        Strict parsing and the format re-asks already failed and lenient
        salvage answered what it could; what remains is bisected into
        smaller prompts (each re-entering the full strict/re-ask/salvage
        sequence), down to a per-instance prompt.  A single instance whose
        reply still never parses is quarantined with a typed reason — the
        run completes either way.
        """
        unanswered = [
            position for position, answer in enumerate(salvaged)
            if answer is None
        ]
        if not unanswered:
            _end_span(batch_span, ready_at, outcome="salvaged", n_fallbacks=0)
            return list(salvaged)
        if len(batch) == 1:
            _end_span(batch_span, ready_at, outcome="quarantined")
            return [Quarantined(
                "malformed_reply",
                detail="reply never parsed, even per-instance",
            )]
        _end_span(batch_span, ready_at, outcome="bisect",
                  n_unanswered=len(unanswered))
        if obs is not None:
            obs.metrics.counter("pipeline.batch_bisections").inc()
        remainder = [batch[position] for position in unanswered]
        if len(remainder) == 1:
            followup = self._run_batch(
                builder, remainder, fewshot, temperature, task,
                stats, executor, ready_at, obs, parent,
            )
        else:
            half = len(remainder) // 2
            followup = self._run_batch(
                builder, remainder[:half], fewshot, temperature, task,
                stats, executor, ready_at, obs, parent,
            ) + self._run_batch(
                builder, remainder[half:], fewshot, temperature, task,
                stats, executor, ready_at, obs, parent,
            )
        results = list(salvaged)
        for position, answer in zip(unanswered, followup):
            results[position] = answer
        return results

    @staticmethod
    def _group_by_target(instances: list[Instance]) -> list[list[int]]:
        """Indices grouped by target attribute, preserving encounter order."""
        groups: dict[str | None, list[int]] = {}
        for index, instance in enumerate(instances):
            groups.setdefault(target_attribute_of(instance), []).append(index)
        return list(groups.values())

    @staticmethod
    def _fewshot_for_target(
        fewshot: list[Instance], task: Task, target: str | None
    ) -> list[Instance]:
        """Few-shot examples compatible with this prompt group.

        ED/DI prompts name one target attribute; same-target examples are
        ideal, but a useful demonstration set needs both classes (for the
        binary tasks) and a few instances — each example question names its
        own attribute anyway, so mixed-target examples remain coherent.
        """
        if target is None:
            return fewshot
        same_target = [
            ex for ex in fewshot if target_attribute_of(ex) == target
        ]
        if len(same_target) >= 3 and task is not Task.DATA_IMPUTATION:
            labels = {bool(ex.label) for ex in same_target}
            if len(labels) == 2:
                return same_target
        elif len(same_target) >= 3:
            return same_target
        return fewshot
