"""End-to-end preprocessing pipeline (Figure 1 realized).

The :class:`Preprocessor` takes a dataset and an LLM client and produces a
prediction per instance:

1. feature selection (optional),
2. few-shot example selection from the dataset's hand-labeled pool,
3. batching (random or cluster),
4. prompt assembly per batch,
5. the completion call,
6. answer parsing with format-violation retries.

ED and DI prompts name the target attribute in the zero-shot instruction,
so instances are grouped by target attribute and batched within groups.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.batching import make_batches
from repro.core.config import PipelineConfig
from repro.core.executor import BatchExecutor, ExecutionReport, ExecutorConfig
from repro.core.feature_selection import select_features
from repro.core.parsing import parse_batch_answers, parse_batch_answers_lenient
from repro.core.prep import PrepArtifacts, PrepStats
from repro.core.prompts import PromptBuilder
from repro.core.tasks import target_attribute_of
from repro.data.instances import Instance, PreprocessingDataset, Task
from repro.errors import (
    AnswerFormatError,
    ContextWindowExceededError,
    EvaluationError,
    ExecutionGiveUpError,
)
from repro.llm.accounting import request_prompt_tokens
from repro.llm.base import CompletionRequest, LLMClient, Usage
from repro.llm.profiles import get_profile
from repro.obs import RunObservation
from repro.obs.tracing import Span

#: the paper's temperature settings (Section 4.1)
DEFAULT_TEMPERATURE = {
    "gpt-3.5": 0.75,
    "gpt-4": 0.65,
    "gpt-3": 0.75,
    "vicuna-13b": 0.2,
}


def default_temperature_for(model: str) -> float:
    """The paper's sampling temperature for ``model``, validated loudly.

    The model name is resolved against the registered profiles
    (:mod:`repro.llm.profiles`), so a typo or an unregistered model raises
    :class:`~repro.errors.UnknownModelError` instead of silently running
    the whole experiment at a generic temperature.
    """
    profile = get_profile(model)
    return DEFAULT_TEMPERATURE.get(profile.name, profile.default_temperature)


@dataclass(frozen=True)
class Exchange:
    """One completed completion call, as recorded for conformance replay.

    Carries the exact prompt messages (role/content pairs), the raw model
    reply, and how many answers the parser was asked to extract — enough
    for :mod:`repro.testing.replay` to re-run the parsing stack against
    the recorded reply without touching the pipeline.
    """

    messages: tuple[tuple[str, str], ...]
    reply: str
    n_expected: int


@dataclass
class PipelineResult:
    """Everything one run produced.

    ``predictions`` aligns index-for-index with the instances that were
    run.  ``estimated_hours`` is the modeled wall-clock a metered API would
    have taken: the *makespan* of the run's completion calls over the
    configured worker lanes.  At ``concurrency=1`` this reduces to the
    paper's sequential sum (§4.5); ``execution`` carries the full per-lane
    scheduling report.
    """

    predictions: list[bool | str]
    usage: Usage
    n_requests: int
    n_format_retries: int
    n_fallbacks: int
    estimated_seconds: float
    raw_replies: list[str] = field(default_factory=list)
    #: prompt/reply/expected-count triples, recorded when ``keep_raw`` is
    #: on; the raw material of golden snapshots and differential replay
    exchanges: list[Exchange] = field(default_factory=list)
    execution: ExecutionReport | None = None
    #: tracer + metrics of the run, present when the config enabled
    #: observability (never affects predictions or accounting)
    observation: RunObservation | None = None
    #: data-prep cache traffic and kernel timings for the run (always
    #: populated; the wall-clock fields never feed back into results)
    prep: PrepStats | None = None

    @property
    def estimated_hours(self) -> float:
        return self.estimated_seconds / 3600.0

    @property
    def total_tokens(self) -> int:
        return self.usage.total_tokens


def _end_span(span: Span | None, time_s: float, **attrs: object) -> None:
    """Close an (optional) span at ``time_s``, attaching final attributes.

    Tolerates ``None`` (observability off) and clamps to the span's start
    so degraded paths that resolve "in the past" still produce a valid
    trace.
    """
    if span is None:
        return
    for key, value in attrs.items():
        span.set_attribute(key, value)
    if not span.finished:
        span.end(max(time_s, span.start_s))


@dataclass
class _RunStats:
    """Mutable accumulator threaded through one run's batches."""

    keep_raw: bool = False
    usage: Usage = field(
        default_factory=lambda: Usage(prompt_tokens=0, completion_tokens=0)
    )
    n_requests: int = 0
    n_retries: int = 0
    n_fallbacks: int = 0
    raw_replies: list[str] = field(default_factory=list)
    exchanges: list[Exchange] = field(default_factory=list)


class Preprocessor:
    """Runs one configured pipeline against datasets.

    Completion calls go through a :class:`BatchExecutor` scheduling them
    over ``config.concurrency`` lanes of simulated time; pass
    ``executor_config`` to tune its fault-tolerance knobs (retry budget,
    timeout, circuit breaker, rate limit).  The executor's ``concurrency``
    and ``seed`` always follow the pipeline config.
    """

    def __init__(
        self,
        client: LLMClient,
        config: PipelineConfig | None = None,
        executor_config: ExecutorConfig | None = None,
    ):
        self._client = client
        self._config = config or PipelineConfig()
        base = executor_config or ExecutorConfig()
        self._executor_config = dataclasses.replace(
            base,
            concurrency=self._config.concurrency,
            seed=self._config.seed,
        )

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def executor_config(self) -> ExecutorConfig:
        return self._executor_config

    def run(
        self,
        dataset: PreprocessingDataset,
        keep_raw: bool = False,
    ) -> PipelineResult:
        """Run the pipeline over every instance of ``dataset``."""
        config = self._config
        instances: list[Instance] = list(dataset.instances)
        if not instances:
            raise EvaluationError(f"dataset {dataset.name!r} has no instances")

        if config.feature_selection is not None:
            instances = [
                select_features(inst, config.feature_selection)
                for inst in instances
            ]

        n_shots = config.fewshot_for(dataset.task)
        fewshot = dataset.sample_fewshot(n_shots, seed=config.seed)
        if config.feature_selection is not None:
            fewshot = [
                select_features(inst, config.feature_selection)
                for inst in fewshot
            ]

        temperature = (
            config.temperature
            if config.temperature is not None
            else default_temperature_for(config.model)
        )

        predictions: list[bool | str | None] = [None] * len(instances)
        stats = _RunStats(keep_raw=keep_raw)
        obs = RunObservation() if config.observability else None
        run_span: Span | None = None
        cache_binder = getattr(self._client, "bind_metrics", None)
        if obs is not None:
            if callable(cache_binder):
                cache_binder(obs.metrics)
            run_span = obs.tracer.start_span(
                "pipeline.run", 0.0,
                dataset=dataset.name, model=config.model,
                concurrency=config.concurrency, n_instances=len(instances),
            )
        # Cache traffic is surfaced per run: snapshot the client's counters
        # (if it has any) so the report carries this run's delta only.
        cache_hits_before = getattr(self._client, "hits", None)
        cache_misses_before = getattr(self._client, "misses", None)
        executor = BatchExecutor(self._client, self._executor_config, obs=obs)
        # One prep cache per run: serialize/embed/cluster each instance
        # set once, shared by batching and prompt assembly.
        prep = PrepArtifacts(metrics=obs.metrics if obs is not None else None)

        for group_indices in self._group_by_target(instances):
            group = [instances[i] for i in group_indices]
            target = target_attribute_of(group[0])
            builder = PromptBuilder(
                dataset.task, config, target_attribute=target,
                artifacts=prep,
            )
            group_fewshot = self._fewshot_for_target(
                fewshot, dataset.task, target
            )
            batches = make_batches(
                group,
                batch_size=config.batch_size_for_model(),
                mode=config.batching,
                seed=config.seed,
                artifacts=prep,
            )
            for batch_positions in batches:
                batch = [group[p] for p in batch_positions]
                batch_predictions = self._run_batch(
                    builder, batch, group_fewshot, temperature,
                    dataset.task, stats, executor, ready_at=0.0,
                    obs=obs, parent=run_span,
                )
                for position, prediction in zip(batch_positions, batch_predictions):
                    predictions[group_indices[position]] = prediction

        assert all(p is not None for p in predictions)
        report = executor.report()
        if isinstance(cache_hits_before, int) and isinstance(cache_misses_before, int):
            report.n_cache_hits = self._client.hits - cache_hits_before
            report.n_cache_misses = self._client.misses - cache_misses_before
        if obs is not None:
            if report.n_cache_hits or report.n_cache_misses:
                obs.metrics.gauge("cache.hit_rate").set(report.cache_hit_rate)
            run_span.end(report.makespan_s)
            if callable(cache_binder):
                cache_binder(None)  # this run's registry must stop counting
        return PipelineResult(
            predictions=predictions,  # type: ignore[arg-type]
            usage=stats.usage,
            n_requests=stats.n_requests,
            n_format_retries=stats.n_retries,
            n_fallbacks=stats.n_fallbacks,
            estimated_seconds=report.makespan_s,
            raw_replies=stats.raw_replies,
            exchanges=stats.exchanges,
            execution=report,
            observation=obs,
            prep=prep.stats,
        )

    def _run_batch(
        self,
        builder: PromptBuilder,
        batch: list[Instance],
        fewshot: list[Instance],
        temperature: float,
        task: Task,
        stats: "_RunStats",
        executor: BatchExecutor,
        ready_at: float = 0.0,
        obs: RunObservation | None = None,
        parent: Span | None = None,
    ) -> list[bool | str]:
        """Answer one batch, splitting it when the prompt cannot fit.

        Context-window overflows halve the batch recursively (what any
        production pipeline does when a model's window is tight); a single
        instance that still cannot fit becomes a fallback answer.  When
        the executor's retry budget for a call is exhausted the batch
        degrades the same way — smaller batches first, safe fallback
        answers last.  ``ready_at`` is the virtual time this batch's work
        may start (format retries depend on the reply they re-ask).

        With observability on, the batch becomes a ``pipeline.batch`` span
        whose children mark the phases — contextualize → prompt →
        complete → parse — on the virtual timeline; splits recurse into
        sibling batch spans under the same parent.
        """
        config = self._config
        fallback: bool | str = "" if task is Task.DATA_IMPUTATION else False
        batch_span: Span | None = None
        if obs is not None:
            batch_span = obs.tracer.start_span(
                "pipeline.batch", ready_at, parent=parent,
                n_instances=len(batch), task=task.name,
            )
            obs.metrics.counter("pipeline.batches").inc()
            obs.metrics.histogram(
                "pipeline.batch_size", buckets=(1, 2, 4, 8, 16, 32)
            ).observe(len(batch))
            # Contextualization and prompt assembly consume no modeled
            # latency: they mark the timeline as zero-duration phases.
            _end_span(
                obs.tracer.start_span(
                    "pipeline.contextualize", ready_at, parent=batch_span,
                    n_instances=len(batch), n_fewshot=len(fewshot),
                ),
                ready_at,
            )
        prompt = builder.build(batch, fewshot_examples=fewshot)
        request = CompletionRequest(
            messages=prompt.messages,
            model=config.model,
            temperature=temperature,
        )
        if obs is not None:
            _end_span(
                obs.tracer.start_span(
                    "pipeline.prompt", ready_at, parent=batch_span,
                    n_messages=len(request.messages),
                    prompt_tokens=request_prompt_tokens(request),
                ),
                ready_at,
            )
        attempts = 1 + config.max_format_retries
        last_text = ""
        for attempt in range(attempts):
            complete_span: Span | None = None
            if obs is not None:
                complete_span = obs.tracer.start_span(
                    "pipeline.complete", ready_at, parent=batch_span,
                    attempt=attempt,
                )
            try:
                response, ready_at = executor.call(
                    request, ready_at=ready_at, parent=complete_span
                )
            except ContextWindowExceededError:
                _end_span(complete_span, ready_at, outcome="context_window")
                if len(batch) > 1:
                    _end_span(batch_span, ready_at, outcome="split")
                    if obs is not None:
                        obs.metrics.counter("pipeline.batch_splits").inc()
                    half = len(batch) // 2
                    return self._run_batch(
                        builder, batch[:half], fewshot, temperature, task,
                        stats, executor, ready_at, obs, parent,
                    ) + self._run_batch(
                        builder, batch[half:], fewshot, temperature, task,
                        stats, executor, ready_at, obs, parent,
                    )
                if fewshot:
                    # A single instance that does not fit may still fit
                    # without the demonstration block.
                    _end_span(batch_span, ready_at, outcome="retry_zero_shot")
                    return self._run_batch(
                        builder, batch, [], temperature, task,
                        stats, executor, ready_at, obs, parent,
                    )
                stats.n_fallbacks += len(batch)
                _end_span(batch_span, ready_at, outcome="fallback")
                if obs is not None:
                    obs.metrics.counter("pipeline.fallbacks").inc(len(batch))
                return [fallback] * len(batch)
            except ExecutionGiveUpError as giveup:
                resume_at = max(ready_at, giveup.at)
                _end_span(complete_span, resume_at, outcome="giveup")
                if len(batch) > 1:
                    # Degrade gracefully: a smaller prompt is likelier to
                    # get through a struggling upstream.
                    executor.record_fallback_split(2)
                    _end_span(batch_span, resume_at, outcome="split")
                    if obs is not None:
                        obs.metrics.counter("pipeline.batch_splits").inc()
                    half = len(batch) // 2
                    return self._run_batch(
                        builder, batch[:half], fewshot, temperature, task,
                        stats, executor, resume_at, obs, parent,
                    ) + self._run_batch(
                        builder, batch[half:], fewshot, temperature, task,
                        stats, executor, resume_at, obs, parent,
                    )
                stats.n_fallbacks += len(batch)
                _end_span(batch_span, resume_at, outcome="fallback")
                if obs is not None:
                    obs.metrics.counter("pipeline.fallbacks").inc(len(batch))
                return [fallback] * len(batch)
            _end_span(complete_span, ready_at, outcome="ok")
            stats.n_requests += 1
            stats.usage = stats.usage + response.usage
            last_text = response.text
            if stats.keep_raw:
                stats.raw_replies.append(response.text)
                stats.exchanges.append(Exchange(
                    messages=tuple(
                        (m.role, m.content) for m in request.messages
                    ),
                    reply=response.text,
                    n_expected=len(batch),
                ))
            parse_span: Span | None = None
            if obs is not None:
                parse_span = obs.tracer.start_span(
                    "pipeline.parse", ready_at, parent=batch_span,
                    n_expected=len(batch),
                )
            try:
                answers = parse_batch_answers(response.text, task, len(batch))
            except AnswerFormatError:
                _end_span(parse_span, ready_at, outcome="format_error")
                if attempt < attempts - 1:
                    stats.n_retries += 1
                    if obs is not None:
                        obs.metrics.counter("pipeline.format_retries").inc()
            else:
                _end_span(parse_span, ready_at, outcome="ok")
                _end_span(batch_span, ready_at, outcome="ok")
                return answers
        # Retries exhausted: salvage the parseable answers and fall back to
        # the safe answer only where none parsed.
        salvaged = parse_batch_answers_lenient(last_text, task, len(batch))
        results: list[bool | str] = []
        n_salvage_fallbacks = 0
        for answer in salvaged:
            if answer is None:
                stats.n_fallbacks += 1
                n_salvage_fallbacks += 1
                results.append(fallback)
            else:
                results.append(answer)
        _end_span(batch_span, ready_at, outcome="salvaged",
                  n_fallbacks=n_salvage_fallbacks)
        if obs is not None and n_salvage_fallbacks:
            obs.metrics.counter("pipeline.fallbacks").inc(n_salvage_fallbacks)
        return results

    @staticmethod
    def _group_by_target(instances: list[Instance]) -> list[list[int]]:
        """Indices grouped by target attribute, preserving encounter order."""
        groups: dict[str | None, list[int]] = {}
        for index, instance in enumerate(instances):
            groups.setdefault(target_attribute_of(instance), []).append(index)
        return list(groups.values())

    @staticmethod
    def _fewshot_for_target(
        fewshot: list[Instance], task: Task, target: str | None
    ) -> list[Instance]:
        """Few-shot examples compatible with this prompt group.

        ED/DI prompts name one target attribute; same-target examples are
        ideal, but a useful demonstration set needs both classes (for the
        binary tasks) and a few instances — each example question names its
        own attribute anyway, so mixed-target examples remain coherent.
        """
        if target is None:
            return fewshot
        same_target = [
            ex for ex in fewshot if target_attribute_of(ex) == target
        ]
        if len(same_target) >= 3 and task is not Task.DATA_IMPUTATION:
            labels = {bool(ex.label) for ex in same_target}
            if len(labels) == 2:
                return same_target
        elif len(same_target) >= 3:
            return same_target
        return fewshot
