"""Feature selection (paper Section 3.4).

When metadata is available, users select the attribute subset that is
informative for the task — e.g. for imputing a restaurant's city, keep the
phone number and street but drop the name and cuisine.  Selection is
applied to the *instance* before contextualization, so fewer tokens are
spent and noisy attributes cannot mislead the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    Instance,
    SMInstance,
)
from repro.data.records import RecordPair
from repro.errors import ConfigError


@dataclass(frozen=True)
class FeatureSelection:
    """An attribute subset to keep (order preserved from the schema).

    For ED/DI the target attribute is always retained even if absent from
    ``keep`` — the question is about it.
    """

    keep: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.keep:
            raise ConfigError("feature selection must keep at least one attribute")
        if len(set(self.keep)) != len(self.keep):
            raise ConfigError(f"duplicate attributes in selection: {self.keep}")


def select_features(instance: Instance, selection: FeatureSelection) -> Instance:
    """Project an instance onto the selected attributes.

    Returns a new instance; the input is never mutated.  SM instances pass
    through unchanged (their two fields, name and description, *are* the
    features).
    """
    if isinstance(instance, SMInstance):
        return instance
    if isinstance(instance, (EDInstance, DIInstance)):
        names = _ordered_subset(
            instance.record.schema.attribute_names,
            selection.keep,
            required=instance.target_attribute,
        )
        projected = instance.record.project(names)
        if isinstance(instance, EDInstance):
            return EDInstance(
                record=projected,
                target_attribute=instance.target_attribute,
                label=instance.label,
                clean_value=instance.clean_value,
                instance_id=instance.instance_id,
            )
        return DIInstance(
            record=projected,
            target_attribute=instance.target_attribute,
            true_value=instance.true_value,
            instance_id=instance.instance_id,
        )
    if isinstance(instance, EMInstance):
        names = _ordered_subset(
            instance.pair.left.schema.attribute_names, selection.keep
        )
        return EMInstance(
            pair=RecordPair(
                instance.pair.left.project(names),
                instance.pair.right.project(names),
            ),
            label=instance.label,
            instance_id=instance.instance_id,
        )
    raise ConfigError(
        f"cannot select features on instance type {type(instance).__name__}"
    )


def _ordered_subset(
    schema_names: tuple[str, ...],
    keep: tuple[str, ...],
    required: str | None = None,
) -> list[str]:
    keep_set = set(keep)
    unknown = keep_set - set(schema_names)
    if unknown:
        raise ConfigError(
            f"feature selection names unknown attributes: {sorted(unknown)}"
        )
    names = [n for n in schema_names if n in keep_set]
    if required is not None and required not in names:
        names.append(required)
    return names
