"""Table-level workflows: the API a downstream user actually calls.

The paper defines its tasks one data instance at a time (Section 2.1) so
prompts are easy to write; a practitioner has *tables*.  These workflows
bridge the gap:

- :func:`detect_errors` — scan chosen columns of a table, return flagged
  cells.
- :func:`impute_missing` — fill every missing cell of a column, return a
  repaired copy of the table.
- :func:`match_schemas` — compare two schemas attribute-by-attribute,
  return the correspondence matrix above a decision.
- :func:`match_entities` — block two tables, run pairwise matching on the
  candidates, return matched index pairs.

Each workflow builds task instances, runs the configured
:class:`~repro.core.pipeline.Preprocessor`, and reassembles the answers at
table granularity, carrying the usage accounting along.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.blocking import Blocker
from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineResult, Preprocessor
from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    PreprocessingDataset,
    SMInstance,
    Task,
)
from repro.data.records import AttributePair, RecordPair, Table
from repro.data.schema import Schema
from repro.errors import ConfigError, EvaluationError
from repro.llm.base import LLMClient, Usage


@dataclass
class WorkflowReport:
    """Usage accounting shared by every workflow result.

    ``prep_cache_hits``/``prep_cache_misses`` surface the shared-artifact
    cache counters from :class:`~repro.core.prep.PrepStats`, so a flow
    composing several workflows over the same records can see how much
    serialization/embedding work was reused across stages instead of the
    reuse hiding inside per-stage wall time.
    """

    usage: Usage
    n_requests: int
    estimated_seconds: float
    prep_cache_hits: int = 0
    prep_cache_misses: int = 0

    @classmethod
    def from_results(cls, results: list[PipelineResult]) -> "WorkflowReport":
        usage = Usage(prompt_tokens=0, completion_tokens=0)
        n_requests = 0
        seconds = 0.0
        hits = 0
        misses = 0
        for result in results:
            usage = usage + result.usage
            n_requests += result.n_requests
            seconds += result.estimated_seconds
            if result.prep is not None:
                hits += result.prep.total_hits
                misses += result.prep.total_misses
        return cls(usage=usage, n_requests=n_requests,
                   estimated_seconds=seconds,
                   prep_cache_hits=hits, prep_cache_misses=misses)

    def merge(self, other: "WorkflowReport") -> None:
        """Fold another report's accounting into this one, in place."""
        self.usage = self.usage + other.usage
        self.n_requests += other.n_requests
        self.estimated_seconds += other.estimated_seconds
        self.prep_cache_hits += other.prep_cache_hits
        self.prep_cache_misses += other.prep_cache_misses


@dataclass
class FlaggedCell:
    """One cell the error-detection workflow flagged."""

    row: int
    attribute: str
    value: str | None


@dataclass
class ErrorDetectionResult:
    flagged: list[FlaggedCell]
    report: WorkflowReport
    #: (row, attribute) of every cell actually posed to the model, in
    #: instance order — zips against ``result.predictions``
    positions: list[tuple[int, str]] = field(default_factory=list)
    #: cells the caller asked us to skip (e.g. upstream quarantines)
    excluded: list[tuple[int, str]] = field(default_factory=list)
    #: the underlying pipeline result (quarantine, exchanges, prep stats)
    result: PipelineResult | None = None


@dataclass
class ImputationResult:
    table: Table                     # a repaired copy
    imputed: dict[int, str]          # row index -> imputed value
    report: WorkflowReport
    #: row index of every missing cell posed, in instance order
    rows: list[int] = field(default_factory=list)
    #: rows the caller asked us to skip (e.g. upstream quarantines)
    excluded: list[int] = field(default_factory=list)
    result: PipelineResult | None = None


@dataclass
class SchemaMatchResult:
    correspondences: list[tuple[str, str]]
    report: WorkflowReport
    #: every attribute pair posed, in instance order
    pairs: list[tuple[str, str]] = field(default_factory=list)
    result: PipelineResult | None = None


@dataclass
class EntityMatchResult:
    matches: list[tuple[int, int]]   # (left row, right row)
    n_candidates: int
    reduction_ratio: float
    report: WorkflowReport
    #: candidate pairs actually posed, in instance order
    candidates: list[tuple[int, int]] = field(default_factory=list)
    #: candidate pairs dropped because a row was excluded by the caller
    excluded: list[tuple[int, int]] = field(default_factory=list)
    result: PipelineResult | None = None


def _run(
    client: LLMClient,
    config: PipelineConfig,
    task: Task,
    instances: list,
    fewshot_pool: list | None = None,
    name: str = "workflow",
    checkpoint=None,
    keep_raw: bool = False,
) -> PipelineResult:
    dataset = PreprocessingDataset(
        name=name, task=task, instances=instances,
        fewshot_pool=list(fewshot_pool or []),
    )
    return Preprocessor(client, config).run(
        dataset, keep_raw=keep_raw, checkpoint=checkpoint
    )


def detect_errors(
    client: LLMClient,
    table: Table,
    attributes: list[str] | None = None,
    config: PipelineConfig | None = None,
    fewshot: list[EDInstance] | None = None,
    exclude: set[tuple[int, str]] | None = None,
    checkpoint=None,
    keep_raw: bool = False,
) -> ErrorDetectionResult:
    """Scan ``attributes`` (default: all) of every row for erroneous cells.

    ``fewshot`` optionally supplies hand-labeled examples demonstrating the
    table's error criteria — without them the run is zero-shot, which the
    paper's ablation shows is much weaker for error detection.

    ``exclude`` lists ``(row, attribute)`` cells to skip entirely; skipped
    cells are reported back in ``excluded`` so callers (the flow engine)
    can account for them instead of losing them.
    """
    config = config or PipelineConfig()
    exclude = exclude or set()
    names = list(attributes or table.schema.attribute_names)
    for name in names:
        if name not in table.schema:
            raise ConfigError(f"table has no attribute {name!r}")
    instances: list[EDInstance] = []
    positions: list[tuple[int, str]] = []
    excluded: list[tuple[int, str]] = []
    for row, record in enumerate(table):
        for name in names:
            if record[name] is None:
                continue  # missingness is imputation's job
            if (row, name) in exclude:
                excluded.append((row, name))
                continue
            instances.append(
                EDInstance(record=record, target_attribute=name, label=False,
                           instance_id=f"ed-{row}-{name}")
            )
            positions.append((row, name))
    if not instances:
        raise EvaluationError("the table has no non-missing cells to check")
    result = _run(client, config, Task.ERROR_DETECTION, instances,
                  fewshot_pool=fewshot, name="detect_errors",
                  checkpoint=checkpoint, keep_raw=keep_raw)
    flagged = [
        FlaggedCell(row=row, attribute=name,
                    value=None if table[row][name] is None
                    else str(table[row][name]))
        for (row, name), predicted in zip(positions, result.predictions)
        if predicted
    ]
    return ErrorDetectionResult(
        flagged=flagged, report=WorkflowReport.from_results([result]),
        positions=positions, excluded=excluded, result=result,
    )


def impute_missing(
    client: LLMClient,
    table: Table,
    attribute: str,
    config: PipelineConfig | None = None,
    fewshot: list[DIInstance] | None = None,
    type_hint: str | None = None,
    exclude_rows: set[int] | None = None,
    checkpoint=None,
    keep_raw: bool = False,
) -> ImputationResult:
    """Fill every missing cell of ``attribute``; returns a repaired copy.

    Rows in ``exclude_rows`` are skipped even when missing (their records
    are untrustworthy — e.g. an upstream stage quarantined one of their
    cells) and reported back in ``excluded``.
    """
    config = config or PipelineConfig()
    exclude_rows = exclude_rows or set()
    if type_hint is not None:
        from dataclasses import replace

        config = replace(config, type_hint=type_hint)
    if attribute not in table.schema:
        raise ConfigError(f"table has no attribute {attribute!r}")
    instances: list[DIInstance] = []
    rows: list[int] = []
    excluded: list[int] = []
    for row, record in enumerate(table):
        if record[attribute] is None:
            if row in exclude_rows:
                excluded.append(row)
                continue
            instances.append(
                DIInstance(record=record, target_attribute=attribute,
                           true_value="", instance_id=f"di-{row}")
            )
            rows.append(row)
    if not instances:
        return ImputationResult(
            table=Table(table.schema, [r.copy() for r in table]),
            imputed={},
            report=WorkflowReport.from_results([]),
            rows=[], excluded=excluded,
        )
    result = _run(client, config, Task.DATA_IMPUTATION, instances,
                  fewshot_pool=fewshot, name="impute_missing",
                  checkpoint=checkpoint, keep_raw=keep_raw)
    repaired = Table(table.schema, [record.copy() for record in table])
    imputed: dict[int, str] = {}
    for row, value in zip(rows, result.predictions):
        if value:
            repaired[row][attribute] = str(value)
            imputed[row] = str(value)
    return ImputationResult(
        table=repaired, imputed=imputed,
        report=WorkflowReport.from_results([result]),
        rows=rows, excluded=excluded, result=result,
    )


@dataclass
class RepairResult:
    table: Table                                  # a repaired copy
    repairs: dict[tuple[int, str], str]           # (row, attribute) -> value
    flagged_unrepaired: list[FlaggedCell]
    report: WorkflowReport


def repair_errors(
    client: LLMClient,
    table: Table,
    attributes: list[str] | None = None,
    config: PipelineConfig | None = None,
    ed_fewshot: list[EDInstance] | None = None,
    di_fewshot: list[DIInstance] | None = None,
) -> RepairResult:
    """Detect erroneous cells, then re-infer their values.

    The detect-then-repair loop HoloClean popularized, built from the
    paper's two cleaning tasks: error detection flags cells, and each
    flagged cell is blanked and posed as a data-imputation question over
    the rest of its record.  Cells whose imputation comes back empty are
    reported as flagged-but-unrepaired rather than silently overwritten
    with a guess.
    """
    config = config or PipelineConfig()
    detection = detect_errors(client, table, attributes=attributes,
                              config=config, fewshot=ed_fewshot)
    repaired = Table(table.schema, [record.copy() for record in table])
    repairs: dict[tuple[int, str], str] = {}
    unrepaired: list[FlaggedCell] = []
    results = []
    # Pose one DI question per flagged cell, grouped per attribute so each
    # prompt's instruction names a single target (as the pipeline expects).
    by_attribute: dict[str, list[FlaggedCell]] = {}
    for cell in detection.flagged:
        by_attribute.setdefault(cell.attribute, []).append(cell)
    for attribute, cells in by_attribute.items():
        instances = [
            DIInstance(
                record=repaired[cell.row].with_missing(attribute),
                target_attribute=attribute,
                true_value="",
                instance_id=f"repair-{cell.row}-{attribute}",
            )
            for cell in cells
        ]
        result = _run(client, config, Task.DATA_IMPUTATION, instances,
                      fewshot_pool=di_fewshot, name="repair_errors")
        results.append(result)
        for cell, value in zip(cells, result.predictions):
            value = str(value).strip()
            if value and value.lower() != "unknown":
                repaired[cell.row][attribute] = value
                repairs[(cell.row, attribute)] = value
            else:
                unrepaired.append(cell)
    report = WorkflowReport.from_results(results)
    report.merge(detection.report)
    return RepairResult(
        table=repaired, repairs=repairs,
        flagged_unrepaired=unrepaired, report=report,
    )


def match_schemas(
    client: LLMClient,
    left: Schema,
    right: Schema,
    config: PipelineConfig | None = None,
    fewshot: list[SMInstance] | None = None,
    checkpoint=None,
    keep_raw: bool = False,
) -> SchemaMatchResult:
    """Compare every attribute pair of two schemas."""
    config = config or PipelineConfig()
    instances = [
        SMInstance(pair=AttributePair(a, b), label=False,
                   instance_id=f"sm-{a.name}-{b.name}")
        for a in left
        for b in right
    ]
    if not instances:
        raise EvaluationError("both schemas must have attributes")
    result = _run(client, config, Task.SCHEMA_MATCHING, instances,
                  fewshot_pool=fewshot, name="match_schemas",
                  checkpoint=checkpoint, keep_raw=keep_raw)
    correspondences = [
        (inst.pair.left.name, inst.pair.right.name)
        for inst, predicted in zip(instances, result.predictions)
        if predicted
    ]
    return SchemaMatchResult(
        correspondences=correspondences,
        report=WorkflowReport.from_results([result]),
        pairs=[(i.pair.left.name, i.pair.right.name) for i in instances],
        result=result,
    )


def match_entities(
    client: LLMClient,
    left: Table,
    right: Table,
    blocking_attribute: str | None = None,
    blocking_method: str = "token",
    config: PipelineConfig | None = None,
    fewshot: list[EMInstance] | None = None,
    exclude_left_rows: set[int] | None = None,
    exclude_right_rows: set[int] | None = None,
    checkpoint=None,
    keep_raw: bool = False,
) -> EntityMatchResult:
    """Block two tables, then match the candidate pairs with the LLM.

    ``blocking_attribute`` defaults to the first attribute (the identity
    field).  Blocking keeps the pairwise stage tractable — the classical
    two-step EM procedure from the paper's Section 2.1.

    Candidate pairs touching an excluded row on either side are dropped
    from the pairwise stage and reported back in ``excluded`` — matching
    against a record whose cells an upstream stage quarantined would
    launder untrustworthy data into the match set.
    """
    config = config or PipelineConfig()
    exclude_left_rows = exclude_left_rows or set()
    exclude_right_rows = exclude_right_rows or set()
    if left.schema.attribute_names != right.schema.attribute_names:
        raise ConfigError(
            "entity matching expects schema-aligned tables; align or "
            "project them first (see match_schemas)"
        )
    if len(left) == 0 or len(right) == 0:
        raise EvaluationError("both tables must have records")
    blocking_attribute = blocking_attribute or left.schema.attribute_names[0]
    blocking = Blocker(blocking_attribute, method=blocking_method).block(
        left, right
    )
    candidates: list[tuple[int, int]] = []
    excluded: list[tuple[int, int]] = []
    for i, j in blocking.pairs:
        if i in exclude_left_rows or j in exclude_right_rows:
            excluded.append((i, j))
        else:
            candidates.append((i, j))
    if not candidates:
        return EntityMatchResult(
            matches=[], n_candidates=0,
            reduction_ratio=blocking.reduction_ratio,
            report=WorkflowReport.from_results([]),
            candidates=[], excluded=excluded,
        )
    instances = [
        EMInstance(
            pair=RecordPair(left[i], right[j]), label=False,
            instance_id=f"em-{i}-{j}",
        )
        for i, j in candidates
    ]
    result = _run(client, config, Task.ENTITY_MATCHING, instances,
                  fewshot_pool=fewshot, name="match_entities",
                  checkpoint=checkpoint, keep_raw=keep_raw)
    matches = [
        (i, j)
        for (i, j), predicted in zip(candidates, result.predictions)
        if predicted
    ]
    return EntityMatchResult(
        matches=matches,
        n_candidates=len(candidates),
        reduction_ratio=blocking.reduction_ratio,
        report=WorkflowReport.from_results([result]),
        candidates=candidates, excluded=excluded, result=result,
    )
