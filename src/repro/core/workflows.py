"""Table-level workflows: the API a downstream user actually calls.

The paper defines its tasks one data instance at a time (Section 2.1) so
prompts are easy to write; a practitioner has *tables*.  These workflows
bridge the gap:

- :func:`detect_errors` — scan chosen columns of a table, return flagged
  cells.
- :func:`impute_missing` — fill every missing cell of a column, return a
  repaired copy of the table.
- :func:`match_schemas` — compare two schemas attribute-by-attribute,
  return the correspondence matrix above a decision.
- :func:`match_entities` — block two tables, run pairwise matching on the
  candidates, return matched index pairs.

Each workflow builds task instances, runs the configured
:class:`~repro.core.pipeline.Preprocessor`, and reassembles the answers at
table granularity, carrying the usage accounting along.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.blocking import Blocker
from repro.core.config import PipelineConfig
from repro.core.pipeline import PipelineResult, Preprocessor
from repro.data.instances import (
    DIInstance,
    EDInstance,
    EMInstance,
    PreprocessingDataset,
    SMInstance,
    Task,
)
from repro.data.records import AttributePair, RecordPair, Table
from repro.data.schema import Schema
from repro.errors import ConfigError, EvaluationError
from repro.llm.base import LLMClient, Usage


@dataclass
class WorkflowReport:
    """Usage accounting shared by every workflow result."""

    usage: Usage
    n_requests: int
    estimated_seconds: float

    @classmethod
    def from_results(cls, results: list[PipelineResult]) -> "WorkflowReport":
        usage = Usage(prompt_tokens=0, completion_tokens=0)
        n_requests = 0
        seconds = 0.0
        for result in results:
            usage = usage + result.usage
            n_requests += result.n_requests
            seconds += result.estimated_seconds
        return cls(usage=usage, n_requests=n_requests,
                   estimated_seconds=seconds)


@dataclass
class FlaggedCell:
    """One cell the error-detection workflow flagged."""

    row: int
    attribute: str
    value: str | None


@dataclass
class ErrorDetectionResult:
    flagged: list[FlaggedCell]
    report: WorkflowReport


@dataclass
class ImputationResult:
    table: Table                     # a repaired copy
    imputed: dict[int, str]          # row index -> imputed value
    report: WorkflowReport


@dataclass
class SchemaMatchResult:
    correspondences: list[tuple[str, str]]
    report: WorkflowReport


@dataclass
class EntityMatchResult:
    matches: list[tuple[int, int]]   # (left row, right row)
    n_candidates: int
    reduction_ratio: float
    report: WorkflowReport


def _run(
    client: LLMClient,
    config: PipelineConfig,
    task: Task,
    instances: list,
    fewshot_pool: list | None = None,
    name: str = "workflow",
) -> PipelineResult:
    dataset = PreprocessingDataset(
        name=name, task=task, instances=instances,
        fewshot_pool=list(fewshot_pool or []),
    )
    return Preprocessor(client, config).run(dataset)


def detect_errors(
    client: LLMClient,
    table: Table,
    attributes: list[str] | None = None,
    config: PipelineConfig | None = None,
    fewshot: list[EDInstance] | None = None,
) -> ErrorDetectionResult:
    """Scan ``attributes`` (default: all) of every row for erroneous cells.

    ``fewshot`` optionally supplies hand-labeled examples demonstrating the
    table's error criteria — without them the run is zero-shot, which the
    paper's ablation shows is much weaker for error detection.
    """
    config = config or PipelineConfig()
    names = list(attributes or table.schema.attribute_names)
    for name in names:
        if name not in table.schema:
            raise ConfigError(f"table has no attribute {name!r}")
    instances: list[EDInstance] = []
    positions: list[tuple[int, str]] = []
    for row, record in enumerate(table):
        for name in names:
            if record[name] is None:
                continue  # missingness is imputation's job
            instances.append(
                EDInstance(record=record, target_attribute=name, label=False,
                           instance_id=f"ed-{row}-{name}")
            )
            positions.append((row, name))
    if not instances:
        raise EvaluationError("the table has no non-missing cells to check")
    result = _run(client, config, Task.ERROR_DETECTION, instances,
                  fewshot_pool=fewshot, name="detect_errors")
    flagged = [
        FlaggedCell(row=row, attribute=name,
                    value=None if table[row][name] is None
                    else str(table[row][name]))
        for (row, name), predicted in zip(positions, result.predictions)
        if predicted
    ]
    return ErrorDetectionResult(
        flagged=flagged, report=WorkflowReport.from_results([result])
    )


def impute_missing(
    client: LLMClient,
    table: Table,
    attribute: str,
    config: PipelineConfig | None = None,
    fewshot: list[DIInstance] | None = None,
    type_hint: str | None = None,
) -> ImputationResult:
    """Fill every missing cell of ``attribute``; returns a repaired copy."""
    config = config or PipelineConfig()
    if type_hint is not None:
        from dataclasses import replace

        config = replace(config, type_hint=type_hint)
    if attribute not in table.schema:
        raise ConfigError(f"table has no attribute {attribute!r}")
    instances: list[DIInstance] = []
    rows: list[int] = []
    for row, record in enumerate(table):
        if record[attribute] is None:
            instances.append(
                DIInstance(record=record, target_attribute=attribute,
                           true_value="", instance_id=f"di-{row}")
            )
            rows.append(row)
    if not instances:
        return ImputationResult(
            table=Table(table.schema, [r.copy() for r in table]),
            imputed={},
            report=WorkflowReport.from_results([]),
        )
    result = _run(client, config, Task.DATA_IMPUTATION, instances,
                  fewshot_pool=fewshot, name="impute_missing")
    repaired = Table(table.schema, [record.copy() for record in table])
    imputed: dict[int, str] = {}
    for row, value in zip(rows, result.predictions):
        if value:
            repaired[row][attribute] = str(value)
            imputed[row] = str(value)
    return ImputationResult(
        table=repaired, imputed=imputed,
        report=WorkflowReport.from_results([result]),
    )


@dataclass
class RepairResult:
    table: Table                                  # a repaired copy
    repairs: dict[tuple[int, str], str]           # (row, attribute) -> value
    flagged_unrepaired: list[FlaggedCell]
    report: WorkflowReport


def repair_errors(
    client: LLMClient,
    table: Table,
    attributes: list[str] | None = None,
    config: PipelineConfig | None = None,
    ed_fewshot: list[EDInstance] | None = None,
    di_fewshot: list[DIInstance] | None = None,
) -> RepairResult:
    """Detect erroneous cells, then re-infer their values.

    The detect-then-repair loop HoloClean popularized, built from the
    paper's two cleaning tasks: error detection flags cells, and each
    flagged cell is blanked and posed as a data-imputation question over
    the rest of its record.  Cells whose imputation comes back empty are
    reported as flagged-but-unrepaired rather than silently overwritten
    with a guess.
    """
    config = config or PipelineConfig()
    detection = detect_errors(client, table, attributes=attributes,
                              config=config, fewshot=ed_fewshot)
    repaired = Table(table.schema, [record.copy() for record in table])
    repairs: dict[tuple[int, str], str] = {}
    unrepaired: list[FlaggedCell] = []
    results = []
    # Pose one DI question per flagged cell, grouped per attribute so each
    # prompt's instruction names a single target (as the pipeline expects).
    by_attribute: dict[str, list[FlaggedCell]] = {}
    for cell in detection.flagged:
        by_attribute.setdefault(cell.attribute, []).append(cell)
    for attribute, cells in by_attribute.items():
        instances = [
            DIInstance(
                record=repaired[cell.row].with_missing(attribute),
                target_attribute=attribute,
                true_value="",
                instance_id=f"repair-{cell.row}-{attribute}",
            )
            for cell in cells
        ]
        result = _run(client, config, Task.DATA_IMPUTATION, instances,
                      fewshot_pool=di_fewshot, name="repair_errors")
        results.append(result)
        for cell, value in zip(cells, result.predictions):
            value = str(value).strip()
            if value and value.lower() != "unknown":
                repaired[cell.row][attribute] = value
                repairs[(cell.row, attribute)] = value
            else:
                unrepaired.append(cell)
    report = WorkflowReport.from_results(results)
    report.usage = report.usage + detection.report.usage
    report.n_requests += detection.report.n_requests
    report.estimated_seconds += detection.report.estimated_seconds
    return RepairResult(
        table=repaired, repairs=repairs,
        flagged_unrepaired=unrepaired, report=report,
    )


def match_schemas(
    client: LLMClient,
    left: Schema,
    right: Schema,
    config: PipelineConfig | None = None,
    fewshot: list[SMInstance] | None = None,
) -> SchemaMatchResult:
    """Compare every attribute pair of two schemas."""
    config = config or PipelineConfig()
    instances = [
        SMInstance(pair=AttributePair(a, b), label=False,
                   instance_id=f"sm-{a.name}-{b.name}")
        for a in left
        for b in right
    ]
    if not instances:
        raise EvaluationError("both schemas must have attributes")
    result = _run(client, config, Task.SCHEMA_MATCHING, instances,
                  fewshot_pool=fewshot, name="match_schemas")
    correspondences = [
        (inst.pair.left.name, inst.pair.right.name)
        for inst, predicted in zip(instances, result.predictions)
        if predicted
    ]
    return SchemaMatchResult(
        correspondences=correspondences,
        report=WorkflowReport.from_results([result]),
    )


def match_entities(
    client: LLMClient,
    left: Table,
    right: Table,
    blocking_attribute: str | None = None,
    blocking_method: str = "token",
    config: PipelineConfig | None = None,
    fewshot: list[EMInstance] | None = None,
) -> EntityMatchResult:
    """Block two tables, then match the candidate pairs with the LLM.

    ``blocking_attribute`` defaults to the first attribute (the identity
    field).  Blocking keeps the pairwise stage tractable — the classical
    two-step EM procedure from the paper's Section 2.1.
    """
    config = config or PipelineConfig()
    if left.schema.attribute_names != right.schema.attribute_names:
        raise ConfigError(
            "entity matching expects schema-aligned tables; align or "
            "project them first (see match_schemas)"
        )
    if len(left) == 0 or len(right) == 0:
        raise EvaluationError("both tables must have records")
    blocking_attribute = blocking_attribute or left.schema.attribute_names[0]
    blocking = Blocker(blocking_attribute, method=blocking_method).block(
        left, right
    )
    if not blocking.pairs:
        return EntityMatchResult(
            matches=[], n_candidates=0,
            reduction_ratio=blocking.reduction_ratio,
            report=WorkflowReport.from_results([]),
        )
    instances = [
        EMInstance(
            pair=RecordPair(left[i], right[j]), label=False,
            instance_id=f"em-{i}-{j}",
        )
        for i, j in blocking.pairs
    ]
    result = _run(client, config, Task.ENTITY_MATCHING, instances,
                  fewshot_pool=fewshot, name="match_entities")
    matches = [
        (i, j)
        for (i, j), predicted in zip(blocking.pairs, result.predictions)
        if predicted
    ]
    return EntityMatchResult(
        matches=matches,
        n_candidates=len(blocking.pairs),
        reduction_ratio=blocking.reduction_ratio,
        report=WorkflowReport.from_results([result]),
    )
