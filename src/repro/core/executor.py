"""Concurrent batch executor with fault-tolerant scheduling.

The paper's cost analysis (§4.5) models completion calls as sequential, so
wall-clock grows linearly with batch count and one stalled request blocks
the run.  A production deployment issues requests over N concurrent lanes;
this module schedules the pipeline's per-batch calls across such lanes on
the simulated timeline:

- **Lanes** (:class:`~repro.llm.ratelimit.LaneClock`): each call is
  list-scheduled onto the lane that frees up earliest, so lane latencies
  overlap while the RPM/TPM budget stays global across lanes.
- **Fault tolerance**: every call gets a retry budget with exponential
  backoff plus deterministic jitter; a modeled per-call timeout converts
  latency spikes into retryable failures.
- **Circuit breaker**: repeated consecutive failures on a lane trip a
  per-lane breaker that holds the lane closed for a cooldown, shedding
  load from a misbehaving upstream instead of hammering it.
- **Graceful degradation**: when one call's retry budget is exhausted the
  executor raises :class:`~repro.errors.ExecutionGiveUpError`; the
  pipeline reacts by splitting the batch into smaller ones (recorded here
  as fallback splits) before resorting to safe fallback answers.

Determinism: calls are *issued* in submission order regardless of lane
count — only the virtual time accounting differs between concurrency
levels — so a deterministic client produces bit-identical predictions at
any concurrency, and ``concurrency=1`` reproduces the sequential model
exactly.  An :class:`ExecutionReport` summarizes the run: makespan versus
the sequential estimate, and per-lane utilization/retry/breaker counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import (
    ContextWindowExceededError,
    ExecutionGiveUpError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.accounting import request_prompt_tokens
from repro.llm.base import CompletionRequest, CompletionResponse, LLMClient
from repro.llm.ratelimit import LaneClock, RateLimit, RateLimiter
from repro.obs import RunObservation
from repro.obs.tracing import Span
from repro.resilience.aimd import AimdController
from repro.resilience.config import ResilienceConfig
from repro.resilience.signals import throttle_of


@dataclass(frozen=True)
class ExecutorConfig:
    """Scheduling and fault-tolerance knobs for one executor.

    Parameters
    ----------
    concurrency:
        Number of worker lanes (1 = the paper's sequential model).
    max_attempts:
        Total tries per completion call before giving up (1 = no retry).
    timeout_s:
        Modeled per-call timeout; a response whose latency exceeds it is
        discarded and retried, charging the timeout to the lane.  ``None``
        disables timeouts.
    base_backoff_s / backoff_multiplier / max_backoff_s:
        Exponential backoff between attempts of one call.
    jitter:
        Fraction of the backoff added as deterministic jitter (seeded),
        de-synchronizing lanes that fail together.
    breaker_threshold:
        Consecutive failures on one lane that trip its circuit breaker
        (0 disables the breaker).
    breaker_cooldown_s:
        How long a tripped lane stays closed.
    max_rate_limit_waits:
        Rate-limit stalls tolerated per call before giving up; stalls wait
        out the window and do not count toward the breaker.
    rate_limit:
        Optional global RPM/TPM budget shared by all lanes.
    seed:
        Seed for the jitter stream.
    resilience:
        Optional :class:`~repro.resilience.config.ResilienceConfig`
        enabling AIMD adaptive lane width (and carrying the hedging /
        failover tuning for a pool client).  ``None`` — the default —
        keeps the executor bit-identical to its historical behaviour.
    """

    concurrency: int = 1
    max_attempts: int = 3
    timeout_s: float | None = None
    base_backoff_s: float = 1.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 60.0
    jitter: float = 0.1
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    max_rate_limit_waits: int = 8
    rate_limit: RateLimit | None = None
    seed: int = 0
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold cannot be negative")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s cannot be negative")
        if self.max_rate_limit_waits < 0:
            raise ValueError("max_rate_limit_waits cannot be negative")


@dataclass
class LaneReport:
    """One lane's share of a run."""

    lane: int
    n_calls: int = 0
    n_retries: int = 0
    n_timeouts: int = 0
    n_rate_limit_waits: int = 0
    n_breaker_trips: int = 0
    busy_s: float = 0.0
    utilization: float = 0.0


@dataclass
class ExecutionReport:
    """Structured summary of one executor run.

    ``makespan_s`` is the virtual wall-clock of the whole run (latest lane
    finish time); ``sequential_s`` is what the same calls would have taken
    end-to-end on a single lane — their ratio is the modeled speedup.
    """

    concurrency: int
    lanes: list[LaneReport] = field(default_factory=list)
    makespan_s: float = 0.0
    sequential_s: float = 0.0
    n_calls: int = 0
    n_retries: int = 0
    n_timeouts: int = 0
    n_rate_limit_waits: int = 0
    n_breaker_trips: int = 0
    n_giveups: int = 0
    n_fallback_splits: int = 0
    #: response-cache traffic observed during the run (0/0 when the client
    #: has no cache in front of it)
    n_cache_hits: int = 0
    n_cache_misses: int = 0

    def __post_init__(self) -> None:
        # Deliberately NOT a dataclass field: circuit-breaker transition
        # counts ride along for reports and metrics without entering
        # ``dataclasses.asdict`` — run manifests (and therefore golden
        # snapshot bytes) stay unchanged for runs where nothing trips.
        self.breaker_transitions: dict[str, int] = {
            "open": 0, "half_open": 0, "close": 0,
        }

    @property
    def speedup(self) -> float:
        """Sequential estimate over makespan (1.0 when nothing overlaps)."""
        if self.makespan_s <= 0:
            return 1.0
        return self.sequential_s / self.makespan_s

    @property
    def mean_utilization(self) -> float:
        if not self.lanes:
            return 0.0
        return sum(lane.utilization for lane in self.lanes) / len(self.lanes)

    @property
    def cache_hit_rate(self) -> float:
        """Hits over total cache lookups (0.0 when no cache was observed)."""
        total = self.n_cache_hits + self.n_cache_misses
        return self.n_cache_hits / total if total else 0.0


@dataclass
class _LaneState:
    """Mutable fault bookkeeping for one lane (times live in LaneClock)."""

    consecutive_failures: int = 0
    open_until: float = 0.0


class BatchExecutor:
    """Schedules completion calls over N lanes of simulated time.

    One executor serves one pipeline run: its lane clocks and report
    accumulate across every :meth:`call`.  Calls execute in invocation
    order (Python is single-threaded; concurrency is a property of the
    *virtual* timeline), so a deterministic client yields identical
    responses at every lane count.
    """

    def __init__(
        self,
        client: LLMClient,
        config: ExecutorConfig | None = None,
        obs: RunObservation | None = None,
    ):
        self._client = client
        self._config = config or ExecutorConfig()
        self._obs = obs
        self._clock = LaneClock(self._config.concurrency)
        self._lanes = [_LaneState() for __ in range(self._config.concurrency)]
        self._limiter = (
            RateLimiter(
                self._config.rate_limit,
                metrics=obs.metrics if obs is not None else None,
            )
            if self._config.rate_limit is not None
            else None
        )
        self._rng = random.Random(self._config.seed)
        self._stats = ExecutionReport(
            concurrency=self._config.concurrency,
            lanes=[LaneReport(lane=i) for i in range(self._config.concurrency)],
        )
        resilience = self._config.resilience
        self._aimd = (
            AimdController(resilience, self._config.concurrency)
            if resilience is not None and resilience.aimd
            else None
        )
        # Clock hook: clients modeling time-dependent behaviour (scripted
        # degradation windows, failover routing) learn each attempt's
        # virtual start time through this duck-typed method.
        self._observe_time = getattr(client, "observe_time", None)
        # Breaker circuit view per lane (closed/open/half_open), tracked
        # alongside the existing trip counters to expose full open ->
        # half-open -> close transition counts.
        self._lane_circuit = ["closed"] * self._config.concurrency

    @property
    def config(self) -> ExecutorConfig:
        return self._config

    @property
    def clock(self) -> LaneClock:
        return self._clock

    def call(
        self,
        request: CompletionRequest,
        ready_at: float = 0.0,
        parent: Span | None = None,
    ) -> tuple[CompletionResponse, float]:
        """Run one completion call; return (response, virtual finish time).

        ``ready_at`` is the earliest virtual time this call may start —
        the finish time of whatever it depends on (e.g. the failed attempt
        a format retry follows).  Raises
        :class:`~repro.errors.ExecutionGiveUpError` once the retry budget
        is spent, and lets :class:`ContextWindowExceededError` propagate
        untouched (it is a prompt-size problem, not a fault).  When
        observability is on, the whole call — waits, retries, breaker
        trips — becomes one ``llm.call`` span under ``parent``.
        """
        config = self._config
        lane = self._pick_lane(ready_at)
        state = self._lanes[lane]
        report = self._stats.lanes[lane]
        start = max(self._clock.available_at(lane), ready_at, state.open_until)
        if self._lane_circuit[lane] == "open":
            # Scheduling already floors at open_until, so the first call
            # a tripped lane re-admits is its half-open recovery probe.
            self._transition(lane, "half_open")
        span: Span | None = None
        if self._obs is not None:
            span = self._obs.tracer.start_span(
                "llm.call", start, parent=parent,
                lane=lane, model=request.model,
            )
        try:
            response, finished = self._attempt_loop(
                request, lane, start, span
            )
        except ContextWindowExceededError:
            if span is not None:
                span.set_attribute("outcome", "context_window")
                span.end(start)
            raise
        except ExecutionGiveUpError as giveup:
            if span is not None:
                span.set_attribute("outcome", "giveup")
                span.end(max(giveup.at, span.start_s))
            raise
        state.consecutive_failures = 0
        if self._lane_circuit[lane] != "closed":
            self._transition(lane, "close")
        if self._aimd is not None:
            self._aimd.on_success()
        report.n_calls += 1
        self._stats.n_calls += 1
        if span is not None:
            span.set_attribute("outcome", "ok")
            span.set_attribute("prompt_tokens", response.usage.prompt_tokens)
            span.set_attribute(
                "completion_tokens", response.usage.completion_tokens
            )
            span.set_attribute("latency_s", response.latency_s)
            span.end(finished)
            metrics = self._obs.metrics
            metrics.counter("executor.calls").inc()
            metrics.counter("llm.prompt_tokens").inc(
                response.usage.prompt_tokens
            )
            metrics.counter("llm.completion_tokens").inc(
                response.usage.completion_tokens
            )
            metrics.histogram("llm.call_latency_s").observe(response.latency_s)
        return response, finished

    def _attempt_loop(
        self,
        request: CompletionRequest,
        lane: int,
        start: float,
        span: Span | None,
    ) -> tuple[CompletionResponse, float]:
        """The retry loop of one call (shared bookkeeping stays in call)."""
        config = self._config
        report = self._stats.lanes[lane]
        backoff = config.base_backoff_s
        attempts = 0
        rate_limit_waits = 0
        last_reason = "no attempt made"
        while True:
            if self._limiter is not None:
                try:
                    self._limiter.check(
                        request_prompt_tokens(request),
                        now=start,
                        floor=min(self._clock.min_available, start),
                    )
                except RateLimitError as exc:
                    rate_limit_waits += 1
                    report.n_rate_limit_waits += 1
                    self._stats.n_rate_limit_waits += 1
                    self._count("executor.rate_limit_waits")
                    self._event(span, "throttle.wait", start,
                                retry_after=exc.retry_after, source="local")
                    if rate_limit_waits > config.max_rate_limit_waits:
                        self._give_up(lane, start, exc_attempts=attempts or 1,
                                      reason=f"rate limited: {exc}")
                    # Stalls wait out the window (idle, not busy) and do
                    # not count as failures toward the circuit breaker.
                    start += max(exc.retry_after, self._jittered(backoff))
                    backoff = self._next_backoff(backoff)
                    continue
            attempts += 1
            if self._observe_time is not None:
                self._observe_time(start)
            try:
                response = self._client.complete(request)
            except ContextWindowExceededError:
                raise
            except RateLimitError as exc:
                # An upstream 429 (the provider's limiter, not ours).
                if self._aimd is not None:
                    self._aimd.on_throttle()
                rate_limit_waits += 1
                report.n_rate_limit_waits += 1
                self._stats.n_rate_limit_waits += 1
                self._count("executor.rate_limit_waits")
                self._event(span, "throttle.wait", start,
                            retry_after=exc.retry_after, source="upstream")
                attempts -= 1  # a stall, not a failed attempt
                if rate_limit_waits > config.max_rate_limit_waits:
                    self._give_up(lane, start, exc_attempts=max(attempts, 1),
                                  reason=f"rate limited upstream: {exc}")
                start += max(exc.retry_after, self._jittered(backoff))
                backoff = self._next_backoff(backoff)
                continue
            except TransientLLMError as exc:
                # An ``overloaded`` rejection carries a throttle signal:
                # the upstream is pushing back, not merely flaking.
                if self._aimd is not None and throttle_of(exc) is not None:
                    self._aimd.on_throttle()
                start = self._clock.occupy(lane, start, exc.latency_s)
                last_reason = str(exc)
                start, backoff = self._after_failure(
                    lane, start, backoff, attempts, last_reason, span
                )
                continue
            latency = response.latency_s
            if config.timeout_s is not None and latency > config.timeout_s:
                # The caller would have hung up at the deadline: charge the
                # timeout (not the full spike) and retry the call.
                start = self._clock.occupy(lane, start, config.timeout_s)
                report.n_timeouts += 1
                self._stats.n_timeouts += 1
                self._count("executor.timeouts")
                self._event(span, "timeout", start,
                            timeout_s=config.timeout_s, latency_s=latency)
                last_reason = (
                    f"timed out after {config.timeout_s:.1f}s "
                    f"(modeled latency {latency:.1f}s)"
                )
                start, backoff = self._after_failure(
                    lane, start, backoff, attempts, last_reason, span
                )
                continue
            if span is not None:
                span.set_attribute("attempts", attempts)
            return response, self._clock.occupy(lane, start, latency)

    def report(self) -> ExecutionReport:
        """Snapshot the run's counters with final time accounting."""
        stats = self._stats
        stats.makespan_s = self._clock.makespan
        stats.sequential_s = sum(
            self._clock.busy_seconds(i) for i in range(self._clock.n_lanes)
        )
        for lane_report in stats.lanes:
            lane_report.busy_s = self._clock.busy_seconds(lane_report.lane)
            lane_report.utilization = self._clock.utilization(lane_report.lane)
        if self._obs is not None:
            metrics = self._obs.metrics
            metrics.gauge("executor.makespan_s").set(stats.makespan_s)
            metrics.gauge("executor.sequential_s").set(stats.sequential_s)
            for lane_report in stats.lanes:
                metrics.gauge(
                    f"executor.lane{lane_report.lane}.busy_s"
                ).set(lane_report.busy_s)
            if self._aimd is not None:
                metrics.gauge("executor.aimd_width").set(self._aimd.width)
        return stats

    def record_fallback_split(self, n_subbatches: int) -> None:
        """Note that a given-up batch degraded into smaller sub-batches."""
        self._stats.n_fallback_splits += n_subbatches
        self._count("executor.fallback_splits", n_subbatches)

    def checkpoint_state(self) -> dict:
        """Every piece of mutable executor state, as plain JSON-ready data.

        Captured into the run journal after each completed batch; restoring
        it into a freshly constructed executor (same config) makes the
        resumed run's scheduling — lane picks, backoff jitter, breaker
        windows, rate-limit windows — continue bit-identically to the
        interrupted one.  Derived time accounting (makespan, utilization)
        is *not* stored: :meth:`report` recomputes it from the clock.
        """
        version, internal, gauss = self._rng.getstate()
        return {
            "clock": self._clock.checkpoint_state(),
            "lanes": [
                {
                    "consecutive_failures": state.consecutive_failures,
                    "open_until": state.open_until,
                }
                for state in self._lanes
            ],
            "limiter": (
                self._limiter.checkpoint_state()
                if self._limiter is not None
                else None
            ),
            "rng": {"version": version, "internal": list(internal),
                    "gauss": gauss},
            "report": {
                "n_calls": self._stats.n_calls,
                "n_retries": self._stats.n_retries,
                "n_timeouts": self._stats.n_timeouts,
                "n_rate_limit_waits": self._stats.n_rate_limit_waits,
                "n_breaker_trips": self._stats.n_breaker_trips,
                "n_giveups": self._stats.n_giveups,
                "n_fallback_splits": self._stats.n_fallback_splits,
                "n_cache_hits": self._stats.n_cache_hits,
                "n_cache_misses": self._stats.n_cache_misses,
                "lanes": [
                    {
                        "n_calls": lane.n_calls,
                        "n_retries": lane.n_retries,
                        "n_timeouts": lane.n_timeouts,
                        "n_rate_limit_waits": lane.n_rate_limit_waits,
                        "n_breaker_trips": lane.n_breaker_trips,
                    }
                    for lane in self._stats.lanes
                ],
            },
            "aimd": (
                self._aimd.checkpoint_state()
                if self._aimd is not None
                else None
            ),
            "circuit": {
                "lanes": list(self._lane_circuit),
                "transitions": dict(self._stats.breaker_transitions),
            },
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore state captured by :meth:`checkpoint_state`."""
        self._clock.restore_checkpoint_state(state["clock"])
        lanes = state["lanes"]
        if len(lanes) != len(self._lanes):
            raise ValueError(
                f"checkpoint has {len(lanes)} lane(s), executor has "
                f"{len(self._lanes)}"
            )
        for lane_state, stored in zip(self._lanes, lanes):
            lane_state.consecutive_failures = int(stored["consecutive_failures"])
            lane_state.open_until = float(stored["open_until"])
        if state.get("limiter") is not None and self._limiter is not None:
            self._limiter.restore_checkpoint_state(state["limiter"])
        rng = state["rng"]
        self._rng.setstate(
            (rng["version"], tuple(rng["internal"]), rng["gauss"])
        )
        report = state["report"]
        self._stats.n_calls = int(report["n_calls"])
        self._stats.n_retries = int(report["n_retries"])
        self._stats.n_timeouts = int(report["n_timeouts"])
        self._stats.n_rate_limit_waits = int(report["n_rate_limit_waits"])
        self._stats.n_breaker_trips = int(report["n_breaker_trips"])
        self._stats.n_giveups = int(report["n_giveups"])
        self._stats.n_fallback_splits = int(report["n_fallback_splits"])
        self._stats.n_cache_hits = int(report["n_cache_hits"])
        self._stats.n_cache_misses = int(report["n_cache_misses"])
        for lane_report, stored in zip(self._stats.lanes, report["lanes"]):
            lane_report.n_calls = int(stored["n_calls"])
            lane_report.n_retries = int(stored["n_retries"])
            lane_report.n_timeouts = int(stored["n_timeouts"])
            lane_report.n_rate_limit_waits = int(stored["n_rate_limit_waits"])
            lane_report.n_breaker_trips = int(stored["n_breaker_trips"])
        if state.get("aimd") is not None and self._aimd is not None:
            self._aimd.restore_checkpoint_state(state["aimd"])
        circuit = state.get("circuit")
        if circuit is not None:
            self._lane_circuit = [str(value) for value in circuit["lanes"]]
            self._stats.breaker_transitions = {
                key: int(value)
                for key, value in circuit["transitions"].items()
            }

    def _pick_lane(self, ready_at: float) -> int:
        # AIMD narrows the *usable* lane count: lanes beyond the current
        # width are floored at infinity so the scheduler never picks
        # them.  Lane 0 is always usable (width >= 1).
        width = (
            self._aimd.width if self._aimd is not None else len(self._lanes)
        )
        floors = [
            max(state.open_until, ready_at) if index < width else float("inf")
            for index, state in enumerate(self._lanes)
        ]
        return self._clock.earliest_lane(not_before=floors)

    def _transition(self, lane: int, to: str) -> None:
        """Book one breaker circuit transition (accounting only —
        scheduling stays entirely on ``open_until`` floors)."""
        self._lane_circuit[lane] = "closed" if to == "close" else to
        self._stats.breaker_transitions[to] += 1
        self._count(f"executor.breaker.{to}")

    def _after_failure(
        self,
        lane: int,
        start: float,
        backoff: float,
        attempts: int,
        reason: str,
        span: Span | None = None,
    ) -> tuple[float, float]:
        """Book one failed attempt; return (next start time, next backoff)."""
        config = self._config
        state = self._lanes[lane]
        report = self._stats.lanes[lane]
        state.consecutive_failures += 1
        if (
            config.breaker_threshold
            and state.consecutive_failures >= config.breaker_threshold
        ):
            state.open_until = start + config.breaker_cooldown_s
            state.consecutive_failures = 0
            report.n_breaker_trips += 1
            self._stats.n_breaker_trips += 1
            self._count("executor.breaker_trips")
            self._transition(lane, "open")
            self._event(span, "breaker.trip", start,
                        lane=lane, open_until=state.open_until)
        if attempts >= config.max_attempts:
            self._give_up(lane, start, exc_attempts=attempts, reason=reason)
        report.n_retries += 1
        self._stats.n_retries += 1
        self._count("executor.retries")
        self._event(span, "retry", start, attempt=attempts, reason=reason)
        next_start = max(start + self._jittered(backoff), state.open_until)
        return next_start, self._next_backoff(backoff)

    def _give_up(self, lane: int, at: float, exc_attempts: int, reason: str):
        self._clock.idle_until(lane, at)
        self._stats.n_giveups += 1
        self._count("executor.giveups")
        raise ExecutionGiveUpError(exc_attempts, reason, at=at)

    def _count(self, name: str, amount: float = 1.0) -> None:
        """Bump an observability counter (no-op when observability is off)."""
        if self._obs is not None:
            self._obs.metrics.counter(name).inc(amount)

    @staticmethod
    def _event(span: Span | None, name: str, time_s: float, **attrs) -> None:
        """Attach a point event to the call span when tracing is on."""
        if span is not None:
            span.add_event(name, time_s, **attrs)

    def _jittered(self, backoff: float) -> float:
        return backoff * (1.0 + self._config.jitter * self._rng.random())

    def _next_backoff(self, backoff: float) -> float:
        return min(
            backoff * self._config.backoff_multiplier,
            self._config.max_backoff_s,
        )
