"""The paper's contribution: the LLM-based data preprocessing framework.

Mirrors Figure 1: prompts are assembled from a role instruction, a
zero-shot task specification (with optional chain-of-thought reasoning), an
optional few-shot conversation, and a batch of contextualized data
instances; answers come back in an instructed format and are parsed into
task predictions.
"""

from repro.core.config import PipelineConfig
from repro.core.contextualize import serialize_instance, serialize_record
from repro.core.dryrun import CostEstimate, compare_batch_sizes, estimate_cost
from repro.core.executor import (
    BatchExecutor,
    ExecutionReport,
    ExecutorConfig,
    LaneReport,
)
from repro.core.feature_selection import FeatureSelection, select_features
from repro.core.pipeline import (
    Exchange,
    PipelineResult,
    Preprocessor,
    default_temperature_for,
)
from repro.core.prep import PrepArtifacts, PrepStats
from repro.core.prompts import PromptBuilder
from repro.core.batching import batch_homogeneity, make_batches
from repro.core.workflows import (
    detect_errors,
    impute_missing,
    match_entities,
    match_schemas,
    repair_errors,
)

__all__ = [
    "PipelineConfig",
    "Preprocessor",
    "PipelineResult",
    "Exchange",
    "PromptBuilder",
    "BatchExecutor",
    "ExecutorConfig",
    "ExecutionReport",
    "LaneReport",
    "default_temperature_for",
    "serialize_record",
    "serialize_instance",
    "FeatureSelection",
    "select_features",
    "make_batches",
    "batch_homogeneity",
    "PrepArtifacts",
    "PrepStats",
    "CostEstimate",
    "estimate_cost",
    "compare_batch_sizes",
    "detect_errors",
    "impute_missing",
    "match_schemas",
    "match_entities",
    "repair_errors",
]
