"""Pipeline configuration.

One dataclass drives every ablation in the paper's Table 2: each prompt
component (few-shot examples, batch prompting, zero-shot reasoning) can be
switched independently; Table 1's "best setting" is the default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.feature_selection import FeatureSelection
from repro.data.instances import Task
from repro.errors import ConfigError

#: the paper's few-shot counts: 3 for SM, 10 elsewhere (Section 4.1)
DEFAULT_FEWSHOT = {
    Task.ERROR_DETECTION: 10,
    Task.DATA_IMPUTATION: 10,
    Task.SCHEMA_MATCHING: 3,
    Task.ENTITY_MATCHING: 10,
}

#: the paper's batch-size ranges per model (Section 4.1); we use the upper
#: end, which Table 3 shows is also the cheapest.
DEFAULT_BATCH_SIZE = {
    "gpt-3.5": 15,
    "gpt-4": 12,
    "gpt-3": 15,
    "vicuna-13b": 2,
}


@dataclass(frozen=True)
class PipelineConfig:
    """Settings for one preprocessing run.

    Parameters
    ----------
    model:
        Model profile name (``gpt-3.5``, ``gpt-4``, ``gpt-3``,
        ``vicuna-13b``).
    fewshot:
        Number of few-shot examples; ``None`` selects the paper's default
        for the task (3 for SM, 10 otherwise); 0 disables few-shot.
    batch_size:
        Instances per prompt; ``None`` selects the model's default; 1
        disables batch prompting.
    batching:
        ``"random"`` or ``"cluster"``.
    reasoning:
        Zero-shot chain-of-thought reasoning (ZS-R): answer in two lines,
        reason first.
    feature_selection:
        Optional attribute subset to keep (Section 3.4).
    type_hint:
        Optional DI data-type hint appended to the zero-shot prompt, e.g.
        'The "hoursperweek" attribute can be a range of integers.'
    temperature:
        Sampling temperature; ``None`` selects the paper's per-model value
        (0.75 / 0.65 / 0.2).
    seed:
        Seed for batching shuffles and few-shot sampling.
    max_format_retries:
        How many times a batch is re-asked when the answer does not parse.
    concurrency:
        Worker lanes for the batch executor; 1 reproduces the paper's
        sequential cost model, N overlaps request latency across N lanes
        (time is modeled as makespan instead of a sum).
    observability:
        Attach a tracer and metrics registry (:mod:`repro.obs`) to the
        run: spans per batch phase and completion call on the simulated
        clock, counters/histograms for requests, retries, cache hits and
        tokens, all surfaced through ``PipelineResult.observation``.
        Off by default; the disabled path does no observability work at
        all, and enabling it never changes predictions.
    degradation:
        What happens when a batch's reply never parses (or a call's retry
        budget runs out).  ``"off"`` (default) keeps the historical
        semantics: salvage leniently and fill the safe fallback answer.
        ``"ladder"`` walks the failure-degradation ladder instead —
        strict parse, format re-asks, lenient salvage, bisection of the
        unanswered remainder, a per-instance prompt, and finally
        *quarantine* with a typed reason — so the run always completes
        with partial results and an honest coverage figure rather than
        silently guessing.
    """

    model: str = "gpt-3.5"
    fewshot: int | None = None
    batch_size: int | None = None
    batching: str = "random"
    reasoning: bool = True
    feature_selection: FeatureSelection | None = None
    type_hint: str | None = None
    temperature: float | None = None
    seed: int = 0
    max_format_retries: int = 1
    concurrency: int = 1
    observability: bool = False
    degradation: str = "off"

    def __post_init__(self) -> None:
        if self.degradation not in ("off", "ladder"):
            raise ConfigError(
                f"unknown degradation mode {self.degradation!r}; "
                f"expected 'off' or 'ladder'"
            )
        if self.fewshot is not None and self.fewshot < 0:
            raise ConfigError(f"fewshot must be >= 0, got {self.fewshot}")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.batching not in ("random", "cluster"):
            raise ConfigError(f"unknown batching mode {self.batching!r}")
        if self.temperature is not None and not 0.0 <= self.temperature <= 2.0:
            raise ConfigError(
                f"temperature must be in [0, 2], got {self.temperature}"
            )
        if self.max_format_retries < 0:
            raise ConfigError("max_format_retries must be >= 0")
        if self.concurrency < 1:
            raise ConfigError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )

    def fewshot_for(self, task: Task) -> int:
        """Effective few-shot count for ``task``."""
        if self.fewshot is not None:
            return self.fewshot
        return DEFAULT_FEWSHOT[task]

    def batch_size_for_model(self) -> int:
        """Effective batch size (1 = no batch prompting)."""
        if self.batch_size is not None:
            return self.batch_size
        return DEFAULT_BATCH_SIZE.get(self.model, 1)

    def with_components(
        self,
        fewshot: bool | None = None,
        batching: bool | None = None,
        reasoning: bool | None = None,
    ) -> "PipelineConfig":
        """Ablation helper: switch whole components on/off (Table 2).

        ``fewshot=False`` sets 0 examples; ``batching=False`` forces batch
        size 1; passing ``None`` leaves a component unchanged.
        """
        updates: dict = {}
        if fewshot is not None:
            updates["fewshot"] = None if fewshot else 0
        if batching is not None:
            updates["batch_size"] = None if batching else 1
        if reasoning is not None:
            updates["reasoning"] = reasoning
        return replace(self, **updates)


#: Table 2's six ablation rows, in paper order.
ABLATION_ROWS: tuple[tuple[str, dict], ...] = (
    ("ZS-T", {"fewshot": 0, "batch_size": 1, "reasoning": False}),
    ("ZS-T+B", {"fewshot": 0, "batch_size": None, "reasoning": False}),
    ("ZS-T+B+ZS-R", {"fewshot": 0, "batch_size": None, "reasoning": True}),
    ("ZS-T+FS", {"fewshot": None, "batch_size": 1, "reasoning": False}),
    ("ZS-T+FS+B", {"fewshot": None, "batch_size": None, "reasoning": False}),
    ("ZS-T+FS+B+ZS-R", {"fewshot": None, "batch_size": None, "reasoning": True}),
)


def ablation_config(row: str, model: str = "gpt-3.5", seed: int = 0) -> PipelineConfig:
    """The :class:`PipelineConfig` for one Table 2 row label."""
    for label, kwargs in ABLATION_ROWS:
        if label == row:
            return PipelineConfig(model=model, seed=seed, **kwargs)
    labels = ", ".join(label for label, __ in ABLATION_ROWS)
    raise ConfigError(f"unknown ablation row {row!r}; expected one of: {labels}")
