"""Prompt assembly (paper Section 3, Figure 1).

Builds the chat transcript::

    system:    You are a database engineer.
               [zero-shot task specification]
               [DI type hint / ED target confirmation]
               [answer-format instruction]
    user:      Question 1..k        (few-shot questions)
    assistant: Answer 1..k          (few-shot answers, with reasons)
    user:      Question 1..b        (the batch to answer)

Few-shot turns are omitted when ``fewshot == 0``; the batch is a single
question when batch prompting is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.core.fewshot import render_examples
from repro.core.prep import PrepArtifacts
from repro.core.tasks import (
    ED_CONFIRM_TARGET,
    ROLE_INSTRUCTION,
    answer_format_instruction,
    question_text,
    target_attribute_of,
    task_text,
)
from repro.data.instances import Instance, Task
from repro.errors import PromptError
from repro.llm.base import ChatMessage


@dataclass(frozen=True)
class BuiltPrompt:
    """A ready-to-send prompt plus what the parser needs to read the reply."""

    messages: tuple[ChatMessage, ...]
    expected_answers: int
    reasoning: bool


class PromptBuilder:
    """Assembles prompts for one (task, target attribute) combination.

    One builder serves a whole dataset run: the zero-shot components are
    fixed; only the batch block varies per call.  With ``artifacts`` the
    question block reuses the run's memoized instance serializations —
    context-window splits re-ask the same instances, which would otherwise
    re-serialize them per attempt.
    """

    def __init__(self, task: Task, config: PipelineConfig,
                 target_attribute: str | None = None,
                 artifacts: PrepArtifacts | None = None):
        self._task = task
        self._config = config
        self._target_attribute = target_attribute
        self._artifacts = artifacts
        self._system_text = self._build_system_text()

    def _build_system_text(self) -> str:
        text = task_text(self._task, self._target_attribute)
        lines = [ROLE_INSTRUCTION, text.instruction]
        if self._task is Task.ERROR_DETECTION and self._config.reasoning:
            # Section 3.1: stop the model flagging errors in *other* attributes.
            lines.append(ED_CONFIRM_TARGET)
        if self._task is Task.DATA_IMPUTATION and self._config.type_hint:
            lines.append(self._config.type_hint)
        lines.append(
            answer_format_instruction(
                self._task, self._config.reasoning, self._target_attribute
            )
        )
        return "\n".join(lines)

    @property
    def system_text(self) -> str:
        return self._system_text

    def build(
        self,
        batch: list[Instance],
        fewshot_examples: list[Instance] | None = None,
    ) -> BuiltPrompt:
        """Build the prompt for one batch of instances."""
        if not batch:
            raise PromptError("cannot build a prompt for an empty batch")
        for instance in batch:
            if instance.task is not self._task:
                raise PromptError(
                    f"instance task {instance.task} does not match builder "
                    f"task {self._task}"
                )
            if (
                self._target_attribute is not None
                and target_attribute_of(instance) != self._target_attribute
            ):
                raise PromptError(
                    f"instance targets {target_attribute_of(instance)!r} but "
                    f"builder targets {self._target_attribute!r}"
                )
        messages: list[ChatMessage] = [
            ChatMessage(role="system", content=self._system_text)
        ]
        if fewshot_examples:
            user_text, assistant_text = render_examples(
                fewshot_examples, reasoning=self._config.reasoning
            )
            messages.append(ChatMessage(role="user", content=user_text))
            messages.append(ChatMessage(role="assistant", content=assistant_text))
        text_of = self._artifacts.text_of if self._artifacts else None
        questions = "\n".join(
            question_text(
                instance, number,
                serialized=text_of(instance) if text_of else None,
            )
            for number, instance in enumerate(batch, start=1)
        )
        messages.append(ChatMessage(role="user", content=questions))
        return BuiltPrompt(
            messages=tuple(messages),
            expected_answers=len(batch),
            reasoning=self._config.reasoning,
        )
