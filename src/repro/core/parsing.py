"""Answer parsing: from model text back to task predictions.

The answer contract (Section 3.1) is ``Answer k:`` blocks — two lines
(reason, then bare answer) with reasoning on, one line otherwise.  Real
models violate contracts, so the parser is deliberately tolerant: it
anchors on ``Answer k`` markers, falls back to order when numbers are
missing, and normalizes binary answers from free text.  A reply that still
cannot be aligned raises :class:`AnswerFormatError`, which the pipeline
converts into a retry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.data.instances import Task
from repro.errors import AnswerFormatError

_ANSWER_RE = re.compile(r"^\s*answer\s*(\d+)\s*[:.]?\s*(.*)$", re.IGNORECASE)
_YES_RE = re.compile(r"\b(yes|match|matched|same|true|erroneous|error)\b", re.IGNORECASE)
_NO_RE = re.compile(r"\b(no|not|different|false|clean|mismatch)\b", re.IGNORECASE)

#: quote pairs stripped from answer values when they wrap the whole value;
#: real models emit curly/angled unicode quotes as readily as ASCII ones
_QUOTE_PAIRS = {'"': '"', "'": "'", "“": "”", "‘": "’",
                "«": "»", "‹": "›"}
#: sentence-terminal punctuation dropped from the end of an answer value
_TERMINAL_PUNCTUATION = ".。．"
#: the full strip set used before the yes/no fast path
_BINARY_STRIP = ".\"'" + "".join(_QUOTE_PAIRS) + "".join(_QUOTE_PAIRS.values()) \
    + _TERMINAL_PUNCTUATION


@dataclass(frozen=True)
class ParsedAnswer:
    """One answer block: the free-text reason (if any) plus the answer line."""

    reason: str
    answer: str


def split_answer_blocks(text: str, expected: int) -> list[ParsedAnswer]:
    """Split a model reply into ``expected`` answer blocks.

    Anchors on ``Answer k:`` lines.  Within a block, the *last* non-empty
    line is the answer (per the two-line contract) and everything before it
    is the reason.  If the block has a single line, that line is the answer
    and the reason is empty.
    """
    if not text.strip():
        raise AnswerFormatError("empty model reply", raw_text=text)
    lines = text.splitlines()
    starts: list[tuple[int, int, str]] = []  # (line index, number, rest)
    for i, line in enumerate(lines):
        match = _ANSWER_RE.match(line)
        if match:
            starts.append((i, int(match.group(1)), match.group(2)))
    if not starts:
        if expected == 1:
            # Single-question replies often skip the marker entirely.
            non_empty = [l.strip() for l in lines if l.strip()]
            if not non_empty:
                raise AnswerFormatError("no answer lines found", raw_text=text)
            reason = " ".join(non_empty[:-1])
            return [ParsedAnswer(reason=reason, answer=non_empty[-1])]
        raise AnswerFormatError(
            f"expected {expected} 'Answer k:' blocks, found none", raw_text=text
        )

    blocks: list[ParsedAnswer] = []
    for position, (start, __, rest) in enumerate(starts):
        end = starts[position + 1][0] if position + 1 < len(starts) else len(lines)
        body = [rest.strip()] if rest.strip() else []
        body.extend(l.strip() for l in lines[start + 1 : end] if l.strip())
        if not body:
            raise AnswerFormatError(
                f"answer block {position + 1} is empty", raw_text=text
            )
        if len(body) == 1:
            blocks.append(ParsedAnswer(reason="", answer=body[0]))
        else:
            blocks.append(
                ParsedAnswer(reason=" ".join(body[:-1]), answer=body[-1])
            )
    if len(blocks) != expected:
        raise AnswerFormatError(
            f"expected {expected} answers, parsed {len(blocks)}", raw_text=text
        )
    return blocks


def normalize_binary(answer: str) -> bool:
    """Map a free-text answer line to yes(True)/no(False).

    Checks for a leading yes/no first (the instructed format), then falls
    back to keyword scanning so replies like "They are the same entity."
    still parse.  Raises :class:`AnswerFormatError` when neither polarity
    is recognizable.
    """
    stripped = answer.strip().strip(_BINARY_STRIP).lower()
    if stripped.startswith("yes"):
        return True
    if stripped.startswith("no"):
        return False
    # "not the same" must win over the "same" keyword.
    if _NO_RE.search(answer):
        return False
    if _YES_RE.search(answer):
        return True
    raise AnswerFormatError(
        f"cannot read yes/no from answer {answer!r}", raw_text=answer
    )


def normalize_value(answer: str) -> str:
    """Clean a DI answer line: strip quotes, trailing periods, label echoes."""
    value = answer.strip()
    # Drop "The city is" style echoes.
    lowered = value.lower()
    for prefix in ("the answer is", "answer:", "value:"):
        if lowered.startswith(prefix):
            value = value[len(prefix):].strip()
            lowered = value.lower()
    # Unwrap quotes and terminal punctuation to a fixpoint, so '"tokyo."',
    # '“tokyo”', and '"."' all reduce cleanly ('"."' to empty, which is a
    # format error rather than a punctuation-only "value").
    while True:
        before = value
        value = value.strip()
        if value and value[-1] in _TERMINAL_PUNCTUATION:
            value = value[:-1]
        if len(value) >= 2 and _QUOTE_PAIRS.get(value[0]) == value[-1]:
            value = value[1:-1]
        if value == before:
            break
    if not value:
        raise AnswerFormatError("empty imputation answer", raw_text=answer)
    return value


def parse_batch_answers(
    text: str, task: Task, expected: int
) -> list[bool | str]:
    """Parse a full model reply into per-instance predictions."""
    blocks = split_answer_blocks(text, expected)
    predictions: list[bool | str] = []
    for block in blocks:
        if task is Task.DATA_IMPUTATION:
            predictions.append(normalize_value(block.answer))
        else:
            predictions.append(normalize_binary(block.answer))
    return predictions


def parse_batch_answers_lenient(
    text: str, task: Task, expected: int
) -> list[bool | str | None]:
    """Salvage what can be salvaged from a malformed reply.

    Aligns answer blocks by their stated numbers (1-based); positions with
    no parseable answer come back as ``None``.  Never raises — this is the
    last resort after retries, so partial batches are not thrown away.
    """
    predictions: list[bool | str | None] = [None] * expected
    lines = text.splitlines()
    current: int | None = None
    buffer: list[str] = []

    def flush() -> None:
        if current is None or not buffer or not 1 <= current <= expected:
            return
        # Garbage lines may have been appended after the true answer line
        # (e.g. an off-contract ramble for the *next* question); take the
        # last line that parses.
        for answer in reversed(buffer):
            try:
                if task is Task.DATA_IMPUTATION:
                    predictions[current - 1] = normalize_value(answer)
                else:
                    predictions[current - 1] = normalize_binary(answer)
                return
            except AnswerFormatError:
                continue

    for line in lines:
        match = _ANSWER_RE.match(line)
        if match:
            flush()
            current = int(match.group(1))
            rest = match.group(2).strip()
            buffer = [rest] if rest else []
        elif line.strip():
            buffer.append(line.strip())
    flush()
    return predictions
