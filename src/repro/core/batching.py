"""Batch prompting (paper Section 3.5).

Multiple data instances are presented in one prompt and answered together,
amortizing the instruction tokens.  Two modes:

- **random batching** — instances shuffled, then chunked;
- **cluster batching** — instances clustered by k-means over their text
  embeddings (the paper uses Sentence-BERT; we use the hashing embedder),
  then random batching *within* each cluster, which yields homogeneous
  batches the model can answer more consistently.

Both entry points accept a shared :class:`~repro.core.prep.PrepArtifacts`
so the serialize → embed → cluster chain runs at most once per instance
set: ``make_batches`` followed by ``batch_homogeneity`` over the same
artifacts recomputes nothing.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.instances import Instance
from repro.core.prep import PrepArtifacts
from repro.errors import ConfigError
from repro.text.embeddings import HashingEmbedder


def make_batches(
    instances: Sequence[Instance],
    batch_size: int,
    mode: str = "random",
    seed: int = 0,
    n_clusters: int | None = None,
    embedder: HashingEmbedder | None = None,
    artifacts: PrepArtifacts | None = None,
) -> list[list[int]]:
    """Partition instance *indices* into batches.

    Returns index batches (not instances) so callers can align predictions
    back to the original order.  Every index appears in exactly one batch;
    batches have at most ``batch_size`` elements.

    Parameters
    ----------
    mode:
        ``"random"`` or ``"cluster"``.
    n_clusters:
        Cluster count for cluster mode; defaults to a heuristic of roughly
        eight batches per cluster, at least 2.
    artifacts:
        Shared prep cache; pass the same object to every call that works
        on the same instances (including :func:`batch_homogeneity`) and
        texts/embeddings/labels are computed once.  When omitted, a
        private one is created from ``embedder``.
    """
    if batch_size <= 0:
        raise ConfigError(f"batch_size must be positive, got {batch_size}")
    if mode not in ("random", "cluster"):
        raise ConfigError(f"unknown batching mode {mode!r}")
    n = len(instances)
    if n == 0:
        return []
    rng = random.Random(seed)

    if mode == "random" or n <= batch_size:
        indices = list(range(n))
        rng.shuffle(indices)
        return _chunk(indices, batch_size)

    artifacts = artifacts or PrepArtifacts(embedder=embedder)
    if n_clusters is None:
        n_clusters = max(2, min(16, n // (batch_size * 8) + 2))
    batches: list[list[int]] = []
    for cluster in artifacts.cluster_members(instances, n_clusters, seed):
        members = list(cluster)
        rng.shuffle(members)
        batches.extend(_chunk(members, batch_size))
    return batches


def _chunk(indices: list[int], size: int) -> list[list[int]]:
    return [indices[i : i + size] for i in range(0, len(indices), size)]


def batch_homogeneity(
    instances: Sequence[Instance],
    batches: list[list[int]],
    embedder: HashingEmbedder | None = None,
    artifacts: PrepArtifacts | None = None,
) -> float:
    """Mean within-batch pairwise embedding similarity (diagnostic).

    Cluster batching should score strictly higher than random batching on
    the same instances — the property its accuracy benefit rests on.
    Pass the ``artifacts`` used by :func:`make_batches` to score against
    the already-computed embedding matrix instead of re-embedding.
    """
    from repro.text.embeddings import average_pairwise_similarity

    artifacts = artifacts or PrepArtifacts(embedder=embedder)
    matrix = artifacts.matrix(instances)
    scores = [
        average_pairwise_similarity(matrix[batch])
        for batch in batches
        if len(batch) >= 2
    ]
    if not scores:
        return 1.0
    return sum(scores) / len(scores)
