"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an integration boundary while
still discriminating on the specific failure when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class RecordError(ReproError):
    """A record does not conform to its schema."""


class DatasetError(ReproError):
    """A dataset cannot be generated, loaded, or validated."""


class UnknownDatasetError(DatasetError):
    """A dataset name is not present in the registry."""

    def __init__(self, name: str, available: list[str]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown dataset {name!r}; available: {', '.join(sorted(available))}"
        )


class PromptError(ReproError):
    """A prompt could not be assembled from the given configuration."""


class AnswerFormatError(ReproError):
    """An LLM answer does not follow the instructed answer format."""

    def __init__(self, message: str, raw_text: str = ""):
        self.raw_text = raw_text
        super().__init__(message)


class LLMError(ReproError):
    """Base class for failures raised by an LLM client."""


class ContextWindowExceededError(LLMError):
    """The prompt does not fit in the model's context window."""

    def __init__(self, model: str, prompt_tokens: int, context_window: int):
        self.model = model
        self.prompt_tokens = prompt_tokens
        self.context_window = context_window
        super().__init__(
            f"prompt of {prompt_tokens} tokens exceeds the {context_window}-token "
            f"context window of {model}"
        )


class RateLimitError(LLMError):
    """The (simulated) API rejected a request due to rate limiting."""

    def __init__(self, retry_after: float):
        self.retry_after = retry_after
        super().__init__(f"rate limit exceeded; retry after {retry_after:.2f}s")


class TransientLLMError(LLMError):
    """A retryable upstream failure (5xx, dropped connection, glitch).

    ``latency_s`` is the modeled wall-clock burned before the failure
    surfaced, charged to the lane that made the attempt.
    """

    def __init__(self, message: str = "transient upstream failure",
                 latency_s: float = 0.0):
        self.latency_s = latency_s
        super().__init__(message)


class ExecutionGiveUpError(LLMError):
    """The executor exhausted its retry budget for one completion call.

    Callers degrade gracefully: the pipeline splits the batch into smaller
    ones before falling back to safe answers.
    """

    def __init__(self, attempts: int, reason: str, at: float = 0.0):
        self.attempts = attempts
        self.reason = reason
        #: virtual time of the abandonment; recovery work starts after it
        self.at = at
        super().__init__(
            f"completion call abandoned after {attempts} attempt(s): {reason}"
        )


class ModelNotApplicableError(LLMError):
    """The model cannot return reasonable answers for this task/dataset.

    Mirrors the paper's "N/A" cells: e.g. Vicuna-13B on most datasets.
    """

    def __init__(self, model: str, reason: str):
        self.model = model
        self.reason = reason
        super().__init__(f"{model} is not applicable: {reason}")


class UnknownModelError(LLMError):
    """A model name has no registered profile."""

    def __init__(self, name: str, available: list[str]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown model {name!r}; available: {', '.join(sorted(available))}"
        )


class InjectedCrashError(ReproError):
    """A chaos-injected process kill (never raised outside failure drills).

    Deliberately *not* an :class:`LLMError` subclass the executor retries:
    a crash tears the whole process down, so the exception must propagate
    through every layer untouched, leaving only the journal behind.
    ``site`` names the injection point (``mid_batch``, ``pre_journal``,
    ``mid_journal``).
    """

    def __init__(self, site: str, detail: str = ""):
        self.site = site
        self.detail = detail
        message = f"injected crash at {site}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class ShardError(ReproError):
    """A sharded run was planned, executed, or merged inconsistently
    (overlapping shard deltas, a payload from a foreign plan, an
    unmergeable metrics snapshot)."""


class ConfigError(ReproError):
    """A pipeline configuration is inconsistent."""


class EvaluationError(ReproError):
    """An experiment harness failure (mismatched predictions, bad metric input)."""


class ServingError(ReproError):
    """The serving layer was configured or driven inconsistently
    (non-monotonic trace, unknown tenant, malformed policy)."""
