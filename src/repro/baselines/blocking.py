"""Blocking: candidate generation for entity matching.

The EM procedure is divided into blocking and in-block pairwise matching
(paper Section 2.1).  This module implements the three classical blocking
families — attribute equivalence, hash (Soundex) keys, and similarity
(token-overlap) blocking — over two tables, producing candidate pairs with
the standard quality measures (pair completeness / reduction ratio).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.data.records import Record, Table
from repro.errors import ConfigError
from repro.text.normalize import normalize_text
from repro.text.phonetic import soundex


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs plus the bookkeeping for quality measures."""

    pairs: tuple[tuple[int, int], ...]
    n_left: int
    n_right: int

    @property
    def reduction_ratio(self) -> float:
        """1 - candidates / (full cross product)."""
        total = self.n_left * self.n_right
        if total == 0:
            return 0.0
        return 1.0 - len(self.pairs) / total

    def pair_completeness(
        self, true_matches: Iterable[tuple[int, int]]
    ) -> float:
        """Fraction of true matches surviving blocking."""
        truth = set(true_matches)
        if not truth:
            return 1.0
        kept = truth & set(self.pairs)
        return len(kept) / len(truth)


class Blocker:
    """Key-based blocker over one attribute of both tables.

    Parameters
    ----------
    attribute:
        The attribute blocking keys are derived from.
    method:
        ``"equality"`` (normalized value), ``"soundex"`` (phonetic code of
        the first token), or ``"token"`` (every token is a key — similarity
        blocking via shared tokens).
    """

    _METHODS = ("equality", "soundex", "token")

    def __init__(self, attribute: str, method: str = "token"):
        if method not in self._METHODS:
            raise ConfigError(
                f"unknown blocking method {method!r}; expected {self._METHODS}"
            )
        self._attribute = attribute
        self._method = method

    def _keys(self, record: Record) -> list[str]:
        value = record[self._attribute]
        if value is None:
            return []
        text = normalize_text(str(value))
        if not text:
            return []
        if self._method == "equality":
            return [text]
        if self._method == "soundex":
            return [soundex(text.split()[0])]
        return text.split()

    def block(self, left: Table, right: Table) -> BlockingResult:
        """Generate candidate pairs of (left index, right index)."""
        index: dict[str, list[int]] = defaultdict(list)
        for j, record in enumerate(right):
            for key in self._keys(record):
                index[key].append(j)
        pairs: set[tuple[int, int]] = set()
        for i, record in enumerate(left):
            for key in self._keys(record):
                for j in index.get(key, ()):
                    pairs.add((i, j))
        return BlockingResult(
            pairs=tuple(sorted(pairs)), n_left=len(left), n_right=len(right)
        )
