"""Classical baselines the paper compares against.

Each module reimplements the *mechanism class* of the referenced system at
laptop scale (the paper quotes their numbers from Narayan et al. [16]):

- :mod:`holoclean` — denial-constraint error detection with probabilistic
  repair (Rekatsinas et al., PVLDB'17).
- :mod:`holodetect` — few-shot, augmentation-based ML error detection
  (Heidari et al., SIGMOD'19).
- :mod:`imp` — semantics-capturing imputation via retrieval over column
  contexts (Mei et al., ICDE'21).
- :mod:`smat` — attention-style schema matching over (name, description)
  pairs (Zhang et al., ADBIS'21).
- :mod:`magellan` — feature-engineering entity matching with a trained
  classifier (Konda et al., PVLDB'16).
- :mod:`ditto` — pre-trained-LM-style entity matching: serialized record
  pairs scored by dense similarity + a learned head (Li et al., PVLDB'20).
- :mod:`blocking` — the candidate-generation step of the EM stack.

All baselines share the protocol: ``fit(train_instances)`` then
``predict(instances)``, mirroring how they were trained on labeled data in
the original evaluation.
"""

from repro.baselines.blocking import Blocker, BlockingResult
from repro.baselines.holoclean import HoloCleanDetector
from repro.baselines.holodetect import HoloDetectDetector
from repro.baselines.imp import IMPImputer
from repro.baselines.smat import SMATMatcher
from repro.baselines.magellan import MagellanMatcher
from repro.baselines.ditto import DittoMatcher

__all__ = [
    "Blocker",
    "BlockingResult",
    "HoloCleanDetector",
    "HoloDetectDetector",
    "IMPImputer",
    "SMATMatcher",
    "MagellanMatcher",
    "DittoMatcher",
]
